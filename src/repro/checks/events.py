"""The normalized check-event vocabulary.

Every substrate — the discrete-event kernel, the live asyncio runtime,
and offline trace/wire-log replay — describes a run to the checkers in
exactly these terms.  The vocabulary is deliberately tiny and versioned
(:data:`CHECK_EVENT_VERSION`): a checker written against it runs
identically online in the kernel, online over live sockets, and offline
over any recorded artifact, which is the whole point of the
:mod:`repro.checks` subsystem.

Two kinds of members:

* **Serializable events** — phase, doorway, suspicion, crash (derived
  from :mod:`repro.trace.events` records) and send/deliver/drop (derived
  from wire-log records).  These are what ``repro check`` replays.
* **:class:`ProbeEvent`** — an *online-only* member carrying live local
  state views (the diner objects themselves, duck-typed).  State-based
  checkers (fork uniqueness, the diner-local invariants) consume it when
  a substrate can offer it and report ``skip`` when one cannot (offline
  replay of a recorded trace has no state to probe).

Message events carry the per-directed-channel sequence number when the
substrate knows it (the wire codec always does; the kernel adapter
assigns them at send), which is what makes the FIFO/no-loss property
checkable from the stream alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

ProcessId = int

#: Version of the vocabulary below.  Bump when events gain/lose fields
#: or semantics; verdicts record the version they were produced under.
CHECK_EVENT_VERSION = 2


@dataclass(frozen=True)
class PhaseEvent:
    """A diner moved between thinking / hungry / eating."""

    time: float
    pid: ProcessId
    old_phase: str
    new_phase: str


@dataclass(frozen=True)
class DoorwayEvent:
    """A diner entered (``inside=True``) or exited the asynchronous doorway."""

    time: float
    pid: ProcessId
    inside: bool


@dataclass(frozen=True)
class SuspicionEvent:
    """A detector module's output on one neighbor flipped."""

    time: float
    observer: ProcessId
    suspect: ProcessId
    suspected: bool


@dataclass(frozen=True)
class CrashEvent:
    """A process crashed."""

    time: float
    pid: ProcessId


@dataclass(frozen=True)
class MembershipEvent:
    """One membership delta applied: the conflict topology changed.

    ``epoch`` is the monotone counter *after* the delta.  ``edges``
    carries a ``join``'s initial neighbor pids; the edge verbs put the
    peer there.  Checkers whose bookkeeping is keyed to a link's
    incarnation (Lemma 2.2's outstanding-ping table) consume this to
    retire state the teardown already retired on the wire — exactly what
    the online adapters do through ``note_rejoin``/``note_edge_reset``,
    now visible to offline replay too.
    """

    time: float
    epoch: int
    verb: str
    pid: ProcessId
    edges: tuple = ()


@dataclass(frozen=True)
class SendEvent:
    """A message entered the directed channel ``src -> dst``.

    ``type`` is the message class name (``"Fork"``, ``"Ping"``, …),
    ``layer`` its protocol layer (``"dining"`` or ``"detector"``), and
    ``seq`` the per-directed-channel sequence number when known.
    """

    time: float
    src: ProcessId
    dst: ProcessId
    type: str
    layer: str
    seq: Optional[int] = None


@dataclass(frozen=True)
class DeliverEvent:
    """A message left the channel and was handed to the destination."""

    time: float
    src: ProcessId
    dst: ProcessId
    type: str
    layer: str
    seq: Optional[int] = None


@dataclass(frozen=True)
class DropEvent:
    """A message was discarded (crashed destination or severed link)."""

    time: float
    src: ProcessId
    dst: ProcessId
    type: str
    layer: str
    seq: Optional[int] = None


class ProbeEvent:
    """Online-only: a snapshot opportunity over live local state.

    ``states`` maps pid to a duck-typed state view exposing at least
    ``crashed``; the full diner surface (``holds_fork(n)``,
    ``holds_token(n)``, ``is_eating``, ``is_hungry``, ``inside``,
    ``phase``, ``_links_in_order()``) unlocks the state-based checkers.
    Adapters may reuse one mutable instance per run — checkers read it
    synchronously inside :meth:`~repro.checks.suite.CheckSuite.observe`
    and never retain it.

    ``edges`` and ``pairs`` optionally restrict the probe to the slice of
    state an adapter knows could have changed: ``edges`` limits fork/token
    uniqueness to those undirected edges, ``pairs`` limits the diner-local
    invariants to ``(pid, neighbor)`` link checks (``neighbor=None`` means
    the whole diner).  ``None`` (the default) means a full scan — what a
    substrate without change tracking feeds.
    """

    __slots__ = ("time", "states", "edges", "pairs")

    def __init__(
        self,
        time: float,
        states: Mapping[ProcessId, object],
        edges=None,
        pairs=None,
    ) -> None:
        self.time = time
        self.states = states
        self.edges = edges
        self.pairs = pairs


#: Serializable message-event kinds, keyed the way wire logs spell them.
WIRE_EVENT_TYPES = {"send": SendEvent, "deliver": DeliverEvent, "drop": DropEvent}

#: Every serializable member of the vocabulary.
SERIALIZABLE_EVENT_TYPES = (
    PhaseEvent,
    DoorwayEvent,
    SuspicionEvent,
    CrashEvent,
    MembershipEvent,
    SendEvent,
    DeliverEvent,
    DropEvent,
)
