"""Expected property-status maps: FAIL as a correct answer.

The bake-off runs classical schedulers that are *supposed* to fail some
properties — Ricart–Agrawala is supposed to starve when a neighbor
crashes; that ``progress: fail`` is the result being reproduced, not a
broken run.  An :class:`ExpectedStatuses` records, per algorithm × cell,
what the verdict pipeline is expected to say, and turns the comparative
table into a regression oracle: a run is green iff every *pinned*
property matches its recorded expectation, whatever color it is.

Maps are deliberately **partial**.  A property absent from the map is
not judged against an expectation at all — the right stance for
statuses that are timing- or seed-dependent (bakery's channel bound
depends on contention; Lehmann–Rabin's single-run progress is a coin
flip and is only judged over seed ensembles, outside this module).

This module follows the package's layering rule: it knows verdict
vocabulary only, no substrates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Tuple

from repro.checks.verdict import STATUS_ORDER, Verdict

#: Statuses an expectation may pin.  ``skip``/``info`` are legal verdict
#: statuses but pinning them is almost always a bug in the expectation,
#: so :class:`ExpectedStatuses` rejects anything outside this pair.
PINNABLE = ("pass", "fail")


@dataclass(frozen=True)
class Mismatch:
    """One pinned property whose actual status disagrees."""

    prop: str
    expected: str
    actual: str  # "absent" when the verdict lacks the property entirely

    def describe(self) -> str:
        return f"{self.prop}: expected {self.expected}, got {self.actual}"


@dataclass(frozen=True)
class ExpectedStatuses:
    """A partial map of property name → expected status.

    ``statuses`` pins properties; everything else is unconstrained.
    ``require_present`` (default True) makes a pinned property that the
    verdict does not carry at all a mismatch — catching the silent
    failure mode where a suite stops judging a property and the oracle
    would otherwise go vacuously green.
    """

    statuses: Mapping[str, str] = field(default_factory=dict)
    require_present: bool = True

    def __post_init__(self) -> None:
        for prop, status in self.statuses.items():
            if status not in PINNABLE:
                raise ValueError(
                    f"expectation for {prop!r} pins {status!r}; "
                    f"only {PINNABLE} can be pinned"
                )

    def mismatches(self, actual: Mapping[str, str]) -> List[Mismatch]:
        """Every pinned property whose actual status disagrees.

        ``actual`` is a status map as :meth:`Verdict.statuses` returns;
        an empty list means the run matches this expectation.
        """
        found: List[Mismatch] = []
        for prop in sorted(self.statuses):
            expected = self.statuses[prop]
            got = actual.get(prop)
            if got is None:
                if self.require_present:
                    found.append(Mismatch(prop=prop, expected=expected, actual="absent"))
            elif got != expected:
                found.append(Mismatch(prop=prop, expected=expected, actual=got))
        return found

    def matches(self, actual: Mapping[str, str]) -> bool:
        return not self.mismatches(actual)

    def check_verdict(self, verdict: Verdict) -> List[Mismatch]:
        return self.mismatches(verdict.statuses())

    def as_dict(self) -> Dict[str, str]:
        return dict(sorted(self.statuses.items()))


def describe_mismatches(mismatches: List[Mismatch]) -> str:
    """One human line summarizing a mismatch list ('' when empty)."""
    return "; ".join(m.describe() for m in mismatches)


def worst_surprise(mismatches: List[Mismatch]) -> Tuple[int, str]:
    """Rank a mismatch list for sorting reports: higher = worse.

    An unexpected *fail* (expected pass, got fail) outranks an
    unexpected *pass* (expected fail, got pass — the algorithm is
    "better" than recorded, which usually means the cell stopped
    exercising the weakness), which outranks an absent property.
    """
    if not mismatches:
        return (0, "")
    rank = 0
    headline = ""
    for m in mismatches:
        if m.actual == "absent":
            score = 1
        elif m.expected == "fail":  # got pass (or other): lost the weakness
            score = 2
        else:  # expected pass, got something worse
            score = 2 + STATUS_ORDER.get(m.actual, 1)
        if score > rank:
            rank, headline = score, m.describe()
    return (rank, headline)
