"""The :class:`Checker` protocol.

A checker consumes normalized check events (:mod:`repro.checks.events`)
and produces one :class:`~repro.checks.verdict.PropertyVerdict`.  The
contract:

* ``interests`` — the event classes the checker wants; the suite builds
  a type-dispatch table from it so uninterested checkers cost nothing on
  the hot path.
* ``observe(event, index) -> violations or None`` — called for each
  interesting event with its 0-based stream ordinal.  Violations
  returned here are *immediate* (safety bugs caught in the act); the
  suite records them and strict adapters may raise on them.
* ``finalize() -> PropertyVerdict`` — end-of-stream judgement.  Eventual
  properties (◇WX, wait-freedom, ◇2-BW) report here because their
  pass/fail depends on settle/patience windows known only at the end.

Checkers that saw no relevant events report status ``skip``.
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Type

from repro.checks.verdict import PASS, SKIP, PropertyVerdict, Violation


class Checker:
    """Base class for canonical property checkers."""

    #: Property name; keys the suite's verdict.
    name: str = "?"
    #: Event classes this checker observes.
    interests: Tuple[Type, ...] = ()

    def __init__(self) -> None:
        self.observed = 0

    def observe(self, event, index: int) -> Optional[List[Violation]]:
        raise NotImplementedError

    def finalize(self) -> PropertyVerdict:
        raise NotImplementedError

    # Helpers ---------------------------------------------------------

    def _status(self, violations: List[Violation]) -> str:
        if not self.observed:
            return SKIP
        return PASS if not violations else "fail"

    def _verdict(self, violations: List[Violation], **counters) -> PropertyVerdict:
        return PropertyVerdict(
            prop=self.name,
            status=self._status(violations),
            violations=list(violations),
            counters={k: float(v) for k, v in counters.items()},
        )
