"""Dynamic-topology checker variants (epoched membership).

When the conflict graph changes under a run (processes join, leave,
rejoin; edges appear and disappear — see
:mod:`repro.graphs.membership`), several of the static properties stop
being well-posed as stated: "no two neighbors eat together" presumes
*neighbors* is a constant relation, "every correct diner eats" presumes
*correct* means "never crashed", and a channel-bound witness is only
actionable if it names which topology epoch it was observed in.

This module holds the dynamic refinements, composed by
``standard_suite(..., dynamic=True, membership=timeline)``:

* :class:`EdgeScopedExclusionChecker` (property ``edge-exclusion``) —
  mutual exclusion judged *per edge-existence interval*: an overlap of
  two eating sessions counts only while the edge actually exists, and,
  like ◇WX, only windows extending past ``settle`` are violations.
  Witnesses carry the epoch the overlap was observed in.
* :class:`ResidencyProgressChecker` — wait-freedom with rebirth: a
  leave is recorded as a crash on the trace, but a process that rejoins
  (emits phase events after its crash record) is readmitted to the
  correct set instead of being excluded forever.
* :class:`ResidencyQuiescenceChecker` — quiescence with rebirth: sends
  to a *rejoined* process are ordinary traffic again, not post-crash
  sends; stale crash records replayed after the rebirth are ignored.
* :class:`EpochChannelBoundChecker` — the Section 7 channel bound with
  epoch-stamped witnesses (counting is inherited unchanged, so the
  kernel adapter's shared-occupancy fast path keeps working).

Everything here consumes the same normalized event vocabulary as
:mod:`repro.checks.properties`; topology knowledge arrives as plain
data — an ``intervals`` mapping and an ``epoch_at`` callable, typically
``TopologyTimeline.edge_intervals()`` / ``.epoch_at`` — so this module
still imports no substrate.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Callable, Dict, List, Optional, Tuple

from repro.checks.base import Checker
from repro.checks.events import CrashEvent, PhaseEvent, ProcessId
from repro.checks.properties import (
    EATING,
    ChannelBoundChecker,
    Edge,
    ProgressChecker,
    QuiescenceChecker,
)
from repro.checks.verdict import MAX_WITNESSES, PropertyVerdict, Violation

EDGE_EXCLUSION = "edge-exclusion"

#: One existence interval: ``(start, end)`` with ``end=None`` for "still
#: exists at the horizon".
Interval = Tuple[float, Optional[float]]


class EdgeScopedExclusionChecker(Checker):
    """Mutual exclusion scoped to edge-existence intervals.

    The dynamic generalization of Theorem 1's ◇WX: for every conflict
    edge and every interval during which that edge exists, no two
    endpoints eat simultaneously — once the system has settled.  Overlap
    windows are accumulated online exactly like
    :class:`~repro.checks.properties.WxSafetyChecker`; at ``finalize``
    each window is intersected with the edge's existence intervals and
    judged a violation iff the intersection extends past ``settle``.

    Rebirth-aware: a crash (which is how a *leave* appears on the
    trace) stops the pid's eating window, but later phase events from
    the same pid (a rejoin) resume normal tracking.
    """

    name = EDGE_EXCLUSION
    interests = (PhaseEvent, CrashEvent)

    def __init__(
        self,
        intervals: Dict[Edge, List[Interval]],
        *,
        settle: Optional[float] = None,
        epoch_at: Optional[Callable[[float], int]] = None,
    ) -> None:
        super().__init__()
        self.settle = settle
        self._epoch_at = epoch_at
        self._intervals: Dict[Edge, List[Interval]] = {
            (min(a, b), max(a, b)): list(spans)
            for (a, b), spans in intervals.items()
        }
        self._neighbors: Dict[ProcessId, List[ProcessId]] = defaultdict(list)
        for a, b in self._intervals:
            self._neighbors[a].append(b)
            self._neighbors[b].append(a)
        self._eating: Dict[ProcessId, float] = {}
        self._crashed: set = set()
        self._open: Dict[Edge, Tuple[float, int]] = {}
        self._windows: List[Tuple[Edge, float, float, int]] = []
        self.horizon: Optional[float] = None

    def observe(self, event, index: int) -> Optional[List[Violation]]:
        self.observed += 1
        if type(event) is CrashEvent:
            self._crashed.add(event.pid)
            self._stop_eating(event.pid, event.time)
            return None
        pid = event.pid
        if pid in self._crashed:
            # Phase activity after a crash record: the pid rejoined.
            self._crashed.discard(pid)
        if event.new_phase == EATING:
            self._eating[pid] = event.time
            for other in self._neighbors.get(pid, ()):
                if other in self._eating:
                    edge = (pid, other) if pid <= other else (other, pid)
                    self._open[edge] = (event.time, index)
        elif event.old_phase == EATING:
            self._stop_eating(pid, event.time)
        return None

    def _stop_eating(self, pid: ProcessId, time: float) -> None:
        self._eating.pop(pid, None)
        for edge in [e for e in self._open if pid in e]:
            start, index = self._open.pop(edge)
            self._windows.append((edge, start, time, index))

    def _scoped(
        self, edge: Edge, start: float, end: float
    ) -> List[Tuple[float, float]]:
        """The sub-windows of ``[start, end)`` during which ``edge`` exists."""
        horizon = self.horizon if self.horizon is not None else math.inf
        scoped: List[Tuple[float, float]] = []
        for span_start, span_end in self._intervals.get(edge, ()):
            hi = horizon if span_end is None else span_end
            lo = max(start, span_start)
            cut = min(end, hi)
            if cut > lo:
                scoped.append((lo, cut))
        return scoped

    def finalize(self) -> PropertyVerdict:
        horizon = self.horizon if self.horizon is not None else math.inf
        windows = list(self._windows)
        windows += [
            (edge, start, horizon, index)
            for edge, (start, index) in self._open.items()
        ]
        windows.sort(key=lambda w: w[1])
        settle = self.settle
        scoped_total = 0
        late: List[Tuple[Edge, float, float, int]] = []
        for edge, start, end, index in windows:
            for lo, hi in self._scoped(edge, start, end):
                scoped_total += 1
                if settle is not None and hi > settle:
                    late.append((edge, lo, hi, index))
        violations = []
        for edge, lo, hi, index in late[:MAX_WITNESSES]:
            epoch = self._epoch_at(lo) if self._epoch_at is not None else None
            detail = (
                f"endpoints {edge[0]} and {edge[1]} ate simultaneously during "
                f"[{lo:g}, {hi:g}) while edge ({edge[0]},{edge[1]}) existed"
            )
            if epoch is not None:
                detail += f" [epoch {epoch}]"
            if settle is not None:
                detail += f", past settle={settle:g}"
            violations.append(
                Violation(
                    prop=self.name,
                    time=lo,
                    detail=detail,
                    subject=edge,
                    event_index=index,
                )
            )
        verdict = self._verdict(
            violations,
            overlap_windows_total=len(windows),
            scoped_windows_total=scoped_total,
            late_windows_total=len(late),
        )
        if late:
            verdict.counters["last_overlap_end"] = max(w[2] for w in late)
        if settle is not None:
            verdict.details["settle"] = settle
        if late and self._epoch_at is not None:
            verdict.details["witness_epochs"] = sorted(
                {self._epoch_at(w[1]) for w in late[:MAX_WITNESSES]}
            )
        return verdict


class ResidencyProgressChecker(ProgressChecker):
    """Wait-freedom with rebirth: rejoined processes are judged again.

    A leave appears on the trace as a crash, which the base checker
    treats as permanent exclusion.  Any later phase event from the same
    pid is evidence of a rejoin, so the pid is readmitted — its new
    hungry sessions are judged under the same patience window as
    everyone else's.
    """

    def observe(self, event, index: int) -> Optional[List[Violation]]:
        if type(event) is PhaseEvent and event.pid in self._crashed:
            self._crashed.discard(event.pid)
        return super().observe(event, index)


class ResidencyQuiescenceChecker(QuiescenceChecker):
    """Quiescence with rebirth: a rejoined destination is alive again.

    ``note_rebirth`` clears the destination's crash instant, so sends to
    the fresh incarnation are ordinary traffic.  Crash records replayed
    out-of-band *after* the rebirth (the kernel adapter's deferred
    eventual replay re-walks the whole trace) are ignored when they
    predate the latest rebirth.
    """

    def __init__(self, **kwargs) -> None:
        super().__init__(**kwargs)
        self._reborn: Dict[ProcessId, float] = {}

    def note_rebirth(self, pid: ProcessId, time: float) -> None:
        self._reborn[pid] = time
        self._crash_times[pid] = None

    def note_crash(self, pid: ProcessId, time: float) -> None:
        if time < self._reborn.get(pid, -math.inf):
            return
        if self._crash_times.get(pid) is None:
            self._crash_times[pid] = time


class EpochChannelBoundChecker(ChannelBoundChecker):
    """The Section 7 channel bound with epoch-stamped witnesses.

    Counting (shared occupancy, layer filter, bound guard) is inherited
    unchanged — the kernel adapter's inline fast path feeds the same
    ``occupancy`` object and calls ``record_level`` only on exceedance —
    but every witness names the topology epoch it was observed in.
    """

    def __init__(
        self,
        bound: int = 4,
        layer: Optional[str] = "dining",
        *,
        epoch_at: Optional[Callable[[float], int]] = None,
    ) -> None:
        super().__init__(bound=bound, layer=layer)
        self._epoch_at = epoch_at

    def record_level(
        self,
        src: ProcessId,
        dst: ProcessId,
        level: int,
        time: float,
        message_type: str,
        *,
        index: Optional[int] = None,
    ) -> Violation:
        violation = super().record_level(
            src, dst, level, time, message_type, index=index
        )
        if self._epoch_at is None:
            return violation
        import dataclasses

        stamped = dataclasses.replace(
            violation, detail=f"{violation.detail} [epoch {self._epoch_at(time)}]"
        )
        self._violations[-1] = stamped
        return stamped


__all__ = [
    "EDGE_EXCLUSION",
    "EdgeScopedExclusionChecker",
    "EpochChannelBoundChecker",
    "ResidencyProgressChecker",
    "ResidencyQuiescenceChecker",
]
