"""CheckSuite: compose checkers, feed one event stream, emit one Verdict."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Type

from repro.checks.base import Checker
from repro.checks.properties import (
    ChannelBoundChecker,
    DinerLocalChecker,
    FifoChecker,
    ForkUniquenessChecker,
    OvertakingChecker,
    PendingPingChecker,
    ProgressChecker,
    QuiescenceChecker,
    WxSafetyChecker,
)
from repro.checks.verdict import Verdict, Violation

Edge = Tuple[int, int]


@dataclass
class CheckConfig:
    """Shared knobs of a standard suite.

    ``None`` for a window parameter (``settle``, ``patience``,
    ``overtaking_after``, ``quiescence_grace``) means the corresponding
    eventual property is reported *informationally* — counters and
    witnesses but never a ``fail`` — because judging an eventual claim
    needs a concrete cutoff.  Substrates that know their convergence
    window (the cluster, ``repro check`` invocations, experiments) set
    them explicitly.
    """

    channel_bound: int = 4
    layer: Optional[str] = "dining"
    settle: Optional[float] = None
    patience: Optional[float] = None
    overtaking_bound: int = 2
    overtaking_after: Optional[float] = None
    quiescence_grace: Optional[float] = None
    correct: Optional[Sequence[int]] = None
    crash_time_of: Optional[Callable[[int], Optional[float]]] = None


class CheckSuite:
    """Drives a set of checkers over one normalized event stream.

    ``observe`` dispatches each event only to the checkers whose
    ``interests`` cover its type; violations a checker reports from
    ``observe`` are forwarded to ``on_violation`` (strict adapters raise
    there).  ``finalize(horizon=...)`` collects every checker's
    :class:`~repro.checks.verdict.PropertyVerdict` into a single
    :class:`~repro.checks.verdict.Verdict`.
    """

    def __init__(
        self,
        checkers: Sequence[Checker],
        *,
        on_violation: Optional[Callable[[Violation], None]] = None,
    ) -> None:
        self.checkers: Tuple[Checker, ...] = tuple(checkers)
        self.on_violation = on_violation
        self.events_observed = 0
        self.last_event_time: Optional[float] = None
        self.violations: List[Violation] = []
        self._finalizers: List[Callable[[], None]] = []
        self._dispatch: Dict[Type, List[Checker]] = {}
        for checker in self.checkers:
            for event_type in checker.interests:
                self._dispatch.setdefault(event_type, []).append(checker)

    def add_finalizer(self, hook: Callable[[], None]) -> None:
        """Run ``hook()`` at the start of every :meth:`finalize`.

        Batching adapters use this to flush deferred counters (idempotent
        hooks only: ``finalize`` may be called more than once per run).
        """
        self._finalizers.append(hook)

    def checker(self, name: str) -> Checker:
        for checker in self.checkers:
            if checker.name == name:
                return checker
        raise KeyError(name)

    def observe(self, event) -> List[Violation]:
        """Feed one event; returns (and records) immediate violations."""
        index = self.events_observed
        self.events_observed += 1
        time = event.time
        if self.last_event_time is None or time > self.last_event_time:
            self.last_event_time = time
        found: List[Violation] = []
        for checker in self._dispatch.get(type(event), ()):
            reported = checker.observe(event, index)
            if reported:
                found.extend(reported)
        if found:
            self.violations.extend(found)
            if self.on_violation is not None:
                for violation in found:
                    self.on_violation(violation)
        return found

    def feed(self, events: Iterable) -> "CheckSuite":
        for event in events:
            self.observe(event)
        return self

    def finalize(self, horizon: Optional[float] = None) -> Verdict:
        """Judge the stream up to ``horizon`` (default: last event time)."""
        for hook in self._finalizers:
            hook()
        if horizon is None:
            horizon = self.last_event_time
        for checker in self.checkers:
            if hasattr(checker, "horizon"):
                checker.horizon = horizon
        return Verdict(
            properties={c.name: c.finalize() for c in self.checkers},
            events_observed=self.events_observed,
            horizon=horizon,
        )


def standard_suite(
    edges: Sequence[Edge],
    config: Optional[CheckConfig] = None,
    *,
    state_probes: bool = True,
    diner_locals: bool = True,
    on_violation: Optional[Callable[[Violation], None]] = None,
) -> CheckSuite:
    """The full paper-property suite over a conflict graph's edge set.

    ``state_probes=False`` omits the state-based checkers (fork
    uniqueness, diner-local invariants) for substrates that cannot probe
    live state — offline replay reports them ``skip`` either way, so the
    flag is purely a construction convenience.  ``diner_locals=False``
    additionally omits the Algorithm-1-specific local invariants for
    tables running baseline diners that lack the probed fields.
    """
    config = config or CheckConfig()
    edges = tuple(sorted(tuple(sorted(edge)) for edge in edges))
    checkers: List[Checker] = []
    if state_probes:
        checkers.append(ForkUniquenessChecker(edges))
        if diner_locals:
            checkers.append(DinerLocalChecker())
    checkers.append(
        ChannelBoundChecker(bound=config.channel_bound, layer=config.layer)
    )
    checkers.append(FifoChecker())
    checkers.append(WxSafetyChecker(edges, settle=config.settle))
    checkers.append(
        ProgressChecker(patience=config.patience, correct=config.correct)
    )
    checkers.append(
        OvertakingChecker(
            edges, bound=config.overtaking_bound, after=config.overtaking_after
        )
    )
    checkers.append(
        QuiescenceChecker(
            layer=config.layer,
            grace=config.quiescence_grace,
            crash_time_of=config.crash_time_of,
        )
    )
    if diner_locals:
        checkers.append(PendingPingChecker())
    return CheckSuite(checkers, on_violation=on_violation)
