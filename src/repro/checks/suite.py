"""CheckSuite: compose checkers, feed one event stream, emit one Verdict."""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Type

from repro.checks.base import Checker
from repro.checks.dynamic import (
    EdgeScopedExclusionChecker,
    EpochChannelBoundChecker,
    ResidencyProgressChecker,
    ResidencyQuiescenceChecker,
)
from repro.checks.properties import (
    ChannelBoundChecker,
    DinerLocalChecker,
    FifoChecker,
    ForkUniquenessChecker,
    OvertakingChecker,
    PendingPingChecker,
    ProgressChecker,
    QuiescenceChecker,
    WxSafetyChecker,
)
from repro.checks.verdict import Verdict, Violation

Edge = Tuple[int, int]


@dataclass
class CheckConfig:
    """Shared knobs of a standard suite.

    ``None`` for a window parameter (``settle``, ``patience``,
    ``overtaking_after``, ``quiescence_grace``) means the corresponding
    eventual property is reported *informationally* — counters and
    witnesses but never a ``fail`` — because judging an eventual claim
    needs a concrete cutoff.  Substrates that know their convergence
    window (the cluster, ``repro check`` invocations, experiments) set
    them explicitly.
    """

    channel_bound: int = 4
    layer: Optional[str] = "dining"
    settle: Optional[float] = None
    patience: Optional[float] = None
    overtaking_bound: int = 2
    overtaking_after: Optional[float] = None
    quiescence_grace: Optional[float] = None
    correct: Optional[Sequence[int]] = None
    crash_time_of: Optional[Callable[[int], Optional[float]]] = None
    #: Attribute wall-clock per property (see CheckSuite ``profile``).
    profile: bool = False


class CheckSuite:
    """Drives a set of checkers over one normalized event stream.

    ``observe`` dispatches each event only to the checkers whose
    ``interests`` cover its type; violations a checker reports from
    ``observe`` are forwarded to ``on_violation`` (strict adapters raise
    there).  ``finalize(horizon=...)`` collects every checker's
    :class:`~repro.checks.verdict.PropertyVerdict` into a single
    :class:`~repro.checks.verdict.Verdict`.
    """

    def __init__(
        self,
        checkers: Sequence[Checker],
        *,
        on_violation: Optional[Callable[[Violation], None]] = None,
        profile: bool = False,
    ) -> None:
        self.checkers: Tuple[Checker, ...] = tuple(checkers)
        self.on_violation = on_violation
        self.events_observed = 0
        self.last_event_time: Optional[float] = None
        self.violations: List[Violation] = []
        self._finalizers: List[Callable[[], None]] = []
        self._dispatch: Dict[Type, List[Checker]] = {}
        for checker in self.checkers:
            for event_type in checker.interests:
                self._dispatch.setdefault(event_type, []).append(checker)
        # Per-property wall-clock attribution (the ROADMAP "checks under
        # 10%" work needs to know *which* checker to optimize).  Off by
        # default: the profiled dispatch table is a parallel structure,
        # so the unprofiled observe loop is untouched.
        self._profile_cells: Optional[Dict[str, List[float]]] = None
        self._profiled_dispatch: Dict[Type, List[Tuple[Checker, List[float]]]] = {}
        if profile:
            self._profile_cells = {c.name: [0.0, 0.0] for c in self.checkers}
            self._profiled_dispatch = {
                event_type: [(c, self._profile_cells[c.name]) for c in checkers_]
                for event_type, checkers_ in self._dispatch.items()
            }

    def add_finalizer(self, hook: Callable[[], None]) -> None:
        """Run ``hook()`` at the start of every :meth:`finalize`.

        Batching adapters use this to flush deferred counters (idempotent
        hooks only: ``finalize`` may be called more than once per run).
        """
        self._finalizers.append(hook)

    def checker(self, name: str) -> Checker:
        for checker in self.checkers:
            if checker.name == name:
                return checker
        raise KeyError(name)

    def observe(self, event) -> List[Violation]:
        """Feed one event; returns (and records) immediate violations."""
        index = self.events_observed
        self.events_observed += 1
        time = event.time
        if self.last_event_time is None or time > self.last_event_time:
            self.last_event_time = time
        found: List[Violation] = []
        if self._profile_cells is None:
            for checker in self._dispatch.get(type(event), ()):
                reported = checker.observe(event, index)
                if reported:
                    found.extend(reported)
        else:
            for checker, cell in self._profiled_dispatch.get(type(event), ()):
                started = perf_counter()
                reported = checker.observe(event, index)
                cell[0] += perf_counter() - started
                cell[1] += 1.0
                if reported:
                    found.extend(reported)
        if found:
            self.violations.extend(found)
            if self.on_violation is not None:
                for violation in found:
                    self.on_violation(violation)
        return found

    def feed(self, events: Iterable) -> "CheckSuite":
        for event in events:
            self.observe(event)
        return self

    @property
    def profiling(self) -> bool:
        """Whether per-property wall-clock attribution is on."""
        return self._profile_cells is not None

    def profile_add(self, name: str, seconds: float, events: int = 0) -> None:
        """Attribute adapter-side work that bypasses ``observe``.

        Batching adapters (the kernel's) judge some properties inline and
        settle in bulk; this lets them charge that wall-clock to a named
        account so the attribution still sums to what checking truly
        cost.  No-op when profiling is off.
        """
        cells = self._profile_cells
        if cells is None:
            return
        cell = cells.get(name)
        if cell is None:
            cell = cells[name] = [0.0, 0.0]
        cell[0] += seconds
        cell[1] += events

    def profile_totals(self) -> Dict[str, Tuple[float, int]]:
        """Per-property ``(wall_seconds, observe_calls)`` attribution.

        Empty unless the suite was built with ``profile=True``.  Covers
        the dispatched ``observe`` calls plus each checker's ``finalize``
        (batching adapters that bypass ``observe`` attribute their replay
        there, so the totals still name the right checker to optimize).
        """
        if self._profile_cells is None:
            return {}
        return {
            name: (cell[0], int(cell[1]))
            for name, cell in self._profile_cells.items()
            if cell[0] or cell[1]
        }

    def finalize(self, horizon: Optional[float] = None) -> Verdict:
        """Judge the stream up to ``horizon`` (default: last event time)."""
        for hook in self._finalizers:
            hook()
        if horizon is None:
            horizon = self.last_event_time
        for checker in self.checkers:
            if hasattr(checker, "horizon"):
                checker.horizon = horizon
        properties = {}
        cells = self._profile_cells
        for checker in self.checkers:
            if cells is None:
                properties[checker.name] = checker.finalize()
            else:
                cell = cells[checker.name]
                started = perf_counter()
                properties[checker.name] = checker.finalize()
                cell[0] += perf_counter() - started
        return Verdict(
            properties=properties,
            events_observed=self.events_observed,
            horizon=horizon,
        )


def standard_suite(
    edges: Sequence[Edge],
    config: Optional[CheckConfig] = None,
    *,
    state_probes: bool = True,
    diner_locals: bool = True,
    on_violation: Optional[Callable[[Violation], None]] = None,
    profile: bool = False,
    dynamic: bool = False,
    membership=None,
) -> CheckSuite:
    """The full paper-property suite over a conflict graph's edge set.

    ``state_probes=False`` omits the state-based checkers (fork
    uniqueness, diner-local invariants) for substrates that cannot probe
    live state — offline replay reports them ``skip`` either way, so the
    flag is purely a construction convenience.  ``diner_locals=False``
    additionally omits the Algorithm-1-specific local invariants for
    tables running baseline diners that lack the probed fields.

    ``dynamic=True`` composes the epoched-membership variants instead
    (see :mod:`repro.checks.dynamic`): ``edges`` must then be the *union*
    edge set (every edge that ever exists) and ``membership`` a
    :class:`~repro.graphs.membership.TopologyTimeline` (duck-typed:
    ``edge_intervals()``, ``epoch_at``, ``final()``).  ◇WX splits into
    edge-scoped exclusion over all union edges plus the classic checker
    over the edges that exist throughout the run; overtaking is judged
    on the final topology; progress and quiescence become
    rebirth-aware.
    """
    config = config or CheckConfig()
    edges = tuple(sorted(tuple(sorted(edge)) for edge in edges))
    if dynamic and membership is None:
        raise ValueError("dynamic suite requires a membership timeline")
    checkers: List[Checker] = []
    if state_probes:
        checkers.append(ForkUniquenessChecker(edges))
        if diner_locals:
            checkers.append(DinerLocalChecker())
    if dynamic:
        intervals = membership.edge_intervals()
        epoch_at = membership.epoch_at
        stable = tuple(
            edge for edge in edges if intervals.get(edge) == [(0.0, None)]
        )
        final_edges = tuple(sorted(membership.final().graph.edges))
        checkers.append(
            EpochChannelBoundChecker(
                bound=config.channel_bound, layer=config.layer, epoch_at=epoch_at
            )
        )
        checkers.append(FifoChecker())
        checkers.append(
            EdgeScopedExclusionChecker(
                intervals, settle=config.settle, epoch_at=epoch_at
            )
        )
        checkers.append(WxSafetyChecker(stable, settle=config.settle))
        checkers.append(
            ResidencyProgressChecker(
                patience=config.patience, correct=config.correct
            )
        )
        checkers.append(
            OvertakingChecker(
                final_edges,
                bound=config.overtaking_bound,
                after=config.overtaking_after,
            )
        )
        checkers.append(
            ResidencyQuiescenceChecker(
                layer=config.layer,
                grace=config.quiescence_grace,
                crash_time_of=config.crash_time_of,
            )
        )
    else:
        checkers.append(
            ChannelBoundChecker(bound=config.channel_bound, layer=config.layer)
        )
        checkers.append(FifoChecker())
        checkers.append(WxSafetyChecker(edges, settle=config.settle))
        checkers.append(
            ProgressChecker(patience=config.patience, correct=config.correct)
        )
        checkers.append(
            OvertakingChecker(
                edges, bound=config.overtaking_bound, after=config.overtaking_after
            )
        )
        checkers.append(
            QuiescenceChecker(
                layer=config.layer,
                grace=config.quiescence_grace,
                crash_time_of=config.crash_time_of,
            )
        )
    if diner_locals:
        checkers.append(PendingPingChecker())
    return CheckSuite(
        checkers, on_violation=on_violation, profile=profile or config.profile
    )
