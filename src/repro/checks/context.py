"""Ambient verdict collection.

Scenario run functions build their :class:`~repro.core.table.DiningTable`
objects deep inside library code, so — exactly like ambient metrics
collection (:mod:`repro.obs.context`) — the scenario runner attaches
check suites ambiently: ``with collecting_checks() as collector: …``
makes every table constructed inside the block register its suite, and
``collector.verdict()`` merges their finalized verdicts afterwards.

The stack is per-process module state; simulations are single-threaded
and process-pool workers open their own block inside the worker.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Iterator, List, Optional, Tuple

from repro.checks.suite import CheckSuite
from repro.checks.verdict import Verdict


class CheckCollector:
    """Accumulates the suites of every table built inside one block."""

    def __init__(self) -> None:
        self._entries: List[Tuple[CheckSuite, Callable[[], Optional[float]]]] = []

    def register(
        self, suite: CheckSuite, horizon_of: Callable[[], Optional[float]]
    ) -> None:
        """Adopt one suite; ``horizon_of`` is read lazily at verdict time
        (typically the owning simulator's clock)."""
        self._entries.append((suite, horizon_of))

    @property
    def suites(self) -> List[CheckSuite]:
        return [suite for suite, _ in self._entries]

    def verdict(self) -> Verdict:
        """Finalize every registered suite and merge the results."""
        return Verdict.merge(
            suite.finalize(horizon_of()) for suite, horizon_of in self._entries
        )


_STACK: List[CheckCollector] = []


def active_collector() -> Optional[CheckCollector]:
    """The innermost collector, or None when check collection is off."""
    return _STACK[-1] if _STACK else None


@contextmanager
def collecting_checks(
    collector: Optional[CheckCollector] = None,
) -> Iterator[CheckCollector]:
    """Collect check verdicts from every table built inside the block."""
    own = collector if collector is not None else CheckCollector()
    _STACK.append(own)
    try:
        yield own
    finally:
        _STACK.pop()
