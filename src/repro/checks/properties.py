"""Canonical checkers — exactly one implementation per paper property.

Each checker consumes the normalized event vocabulary of
:mod:`repro.checks.events` and knows nothing about simulators, sockets,
or trace recorders, so the same code judges kernel runs, live hosts,
merged clusters, and offline replays.  ``docs/CHECKS.md`` maps each
class to its theorem/section in the paper.

Safety checkers (fork uniqueness, channel bound, FIFO, diner-local
invariants, pending-ping) report violations from ``observe`` the moment
they happen — strict adapters raise on those.  Eventual properties
(◇WX safety, wait-freedom, ◇2-BW overtaking, quiescence) accumulate and
judge at ``finalize``, because their pass/fail depends on settle /
patience / grace windows only known once the run's horizon is.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from collections import defaultdict
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.checks.base import Checker
from repro.checks.events import (
    CrashEvent,
    DeliverEvent,
    DropEvent,
    MembershipEvent,
    PhaseEvent,
    ProbeEvent,
    ProcessId,
    SendEvent,
)
from repro.checks.verdict import MAX_WITNESSES, SKIP, PropertyVerdict, Violation

EATING = "eating"
HUNGRY = "hungry"

Edge = Tuple[ProcessId, ProcessId]

FORK_UNIQUENESS = "fork-uniqueness"
DINER_LOCAL = "diner-local"
CHANNEL_BOUND = "channel-bound"
FIFO = "fifo"
WX_SAFETY = "wx-safety"
PROGRESS = "progress"
OVERTAKING = "overtaking"
QUIESCENCE = "quiescence"
PENDING_PING = "pending-ping"


def _edge(a: ProcessId, b: ProcessId) -> Edge:
    return (a, b) if a <= b else (b, a)


# ----------------------------------------------------------------------
# State probes (Lemma 1.2 and the local invariants behind Lemma 2)
# ----------------------------------------------------------------------
def probe_violations(
    edges: Sequence[Edge],
    states,
    *,
    time: float = 0.0,
    exclusion: bool = False,
) -> List[Violation]:
    """Pure per-state check over duck-typed diner views.

    The single source of truth for fork/token uniqueness, shared by the
    online :class:`ForkUniquenessChecker` and the bounded model checker
    in :mod:`repro.verify.explore` (which additionally enables the
    ``exclusion`` clause to treat WX as a perpetual state property).
    Crashed endpoints are skipped: their frozen state is unobservable.
    """
    violations: List[Violation] = []
    for a, b in edges:
        diner_a = states.get(a)
        diner_b = states.get(b)
        if diner_a is None or diner_b is None:
            continue
        if diner_a.crashed or diner_b.crashed:
            continue
        if diner_a.holds_fork(b) and diner_b.holds_fork(a):
            violations.append(
                Violation(
                    prop=FORK_UNIQUENESS,
                    time=time,
                    detail=f"t={time}: both {a} and {b} hold the fork for edge ({a},{b})",
                    subject=(a, b),
                )
            )
        if diner_a.holds_token(b) and diner_b.holds_token(a):
            violations.append(
                Violation(
                    prop=FORK_UNIQUENESS,
                    time=time,
                    detail=f"t={time}: both {a} and {b} hold the token for edge ({a},{b})",
                    subject=(a, b),
                )
            )
        if exclusion and diner_a.is_eating and diner_b.is_eating:
            violations.append(
                Violation(
                    prop=WX_SAFETY,
                    time=time,
                    detail=f"t={time}: neighbors {a} and {b} are eating simultaneously",
                    subject=(a, b),
                )
            )
    return violations


def _diner_local_into(
    violations: List[Violation], pid: ProcessId, diner, links, time: float
) -> None:
    """Check one diner's local invariants over ``links`` into ``violations``."""
    if diner.is_eating and not diner.inside:
        violations.append(
            Violation(
                prop=DINER_LOCAL,
                time=time,
                detail=f"t={time}: diner {pid} is eating outside the doorway",
                subject=(pid,),
            )
        )
    hungry_outside = diner.is_hungry and not diner.inside
    for neighbor, link in links:
        if link.ack and not hungry_outside:
            violations.append(
                Violation(
                    prop=DINER_LOCAL,
                    time=time,
                    detail=(
                        f"t={time}: diner {pid} holds a doorway ack for {neighbor} "
                        f"while {diner.phase}/"
                        f"{'inside' if diner.inside else 'outside'}"
                    ),
                    subject=(pid, neighbor),
                )
            )
        if link.replied and not hungry_outside:
            violations.append(
                Violation(
                    prop=DINER_LOCAL,
                    time=time,
                    detail=(
                        f"t={time}: diner {pid} has replied[{neighbor}] set "
                        f"while {diner.phase}/"
                        f"{'inside' if diner.inside else 'outside'}"
                    ),
                    subject=(pid, neighbor),
                )
            )


def diner_local_violations(states, *, time: float = 0.0, pairs=None) -> List[Violation]:
    """The proof-level local invariants of Algorithm 1, per live diner.

    * eating ⇒ inside the doorway (Actions 9/10 keep the phases nested);
    * a held doorway ack ⇒ hungry ∧ outside (Actions 4/5);
    * ``replied`` set ⇒ hungry ∧ outside (the one-ack throttle's reset).

    ``pairs=None`` scans every live diner and every link.  A ``pairs``
    iterable of ``(pid, neighbor)`` restricts the scan to those links
    (``neighbor=None`` re-checks all of ``pid``'s links) — the adapters'
    change-tracking fast path.  Restricted entries read ``diner.links``,
    so duck-typed state views only need that mapping when restricted.
    """
    violations: List[Violation] = []
    if pairs is None:
        for pid, diner in states.items():
            if diner.crashed:
                continue
            _diner_local_into(violations, pid, diner, diner._links_in_order(), time)
        return violations
    for pid, neighbor in pairs:
        diner = states.get(pid)
        if diner is None or diner.crashed:
            continue
        if neighbor is None:
            links = diner._links_in_order()
        else:
            link = diner.links.get(neighbor)
            links = () if link is None else ((neighbor, link),)
        _diner_local_into(violations, pid, diner, links, time)
    return violations


class ForkUniquenessChecker(Checker):
    """Lemma 1.2: per edge, at most one endpoint holds the fork (token).

    Consumes :class:`ProbeEvent` — a state-based safety property that
    only an online substrate can feed; offline replays report ``skip``.
    """

    name = FORK_UNIQUENESS
    interests = (ProbeEvent,)

    def __init__(self, edges: Sequence[Edge]) -> None:
        super().__init__()
        self._edges = tuple(edges)
        self._violations: List[Violation] = []

    def observe(self, event: ProbeEvent, index: int) -> Optional[List[Violation]]:
        edges = event.edges
        return self.record_probe(
            event.states, self._edges if edges is None else edges, event.time
        )

    def record_probe(self, states, edges, time: float) -> Optional[List[Violation]]:
        """Allocation-free entry point for change-tracking adapters.

        The loop below is a guard, not a second implementation: it
        evaluates exactly the predicates of :func:`probe_violations` to
        decide whether an edge *can* violate, and delegates to that one
        function (restricted to the edge) to construct the violations.
        The clean path — the overwhelming majority of probes — finishes
        without allocating anything.
        """
        self.observed += 1
        found: Optional[List[Violation]] = None
        get = states.get
        for a, b in edges:
            diner_a = get(a)
            diner_b = get(b)
            if (
                diner_a is None
                or diner_b is None
                or diner_a.crashed
                or diner_b.crashed
            ):
                continue
            if (diner_a.holds_fork(b) and diner_b.holds_fork(a)) or (
                diner_a.holds_token(b) and diner_b.holds_token(a)
            ):
                if found is None:
                    found = []
                found.extend(probe_violations(((a, b),), states, time=time))
        if found:
            self._violations.extend(found)
            return found
        return None

    def finalize(self) -> PropertyVerdict:
        return self._verdict(
            self._violations[:MAX_WITNESSES],
            probes_total=self.observed,
            violations_total=len(self._violations),
        )


class DinerLocalChecker(Checker):
    """The diner-local invariants behind Lemmas 2.x (state-based)."""

    name = DINER_LOCAL
    interests = (ProbeEvent,)

    def __init__(self) -> None:
        super().__init__()
        self._violations: List[Violation] = []

    def observe(self, event: ProbeEvent, index: int) -> Optional[List[Violation]]:
        return self.record_probe(event.states, event.time, event.pairs)

    def record_probe(self, states, time: float, pairs=None) -> Optional[List[Violation]]:
        """Allocation-free entry point for change-tracking adapters.

        With ``pairs`` the loop first evaluates the invariant predicates
        (the same ones :func:`_diner_local_into` reports on) as a cheap
        guard, and only enters the reporting helper when a predicate is
        actually violated — the clean path reads a handful of attributes
        and allocates nothing.
        """
        self.observed += 1
        if pairs is None:
            found = diner_local_violations(states, time=time)
            if found:
                self._violations.extend(found)
                return found
            return None
        found: Optional[List[Violation]] = None
        get = states.get
        for pid, neighbor in pairs:
            diner = get(pid)
            if diner is None or diner.crashed:
                continue
            inside = diner.inside
            if neighbor is None:
                # Whole-diner re-check (phase or doorway transition).
                if diner.is_eating and not inside:
                    bad = True
                elif diner.is_hungry and not inside:
                    bad = False  # flags are allowed while hungry/outside
                else:
                    bad = False
                    for link in diner.links.values():
                        if link.ack or link.replied:
                            bad = True
                            break
                if bad:
                    if found is None:
                        found = []
                    _diner_local_into(
                        found, pid, diner, diner._links_in_order(), time
                    )
                continue
            link = diner.links.get(neighbor)
            if link is None:
                continue
            if (diner.is_eating and not inside) or (
                (link.ack or link.replied)
                and not (diner.is_hungry and not inside)
            ):
                if found is None:
                    found = []
                _diner_local_into(found, pid, diner, ((neighbor, link),), time)
        if found:
            self._violations.extend(found)
            return found
        return None

    def finalize(self) -> PropertyVerdict:
        return self._verdict(
            self._violations[:MAX_WITNESSES],
            probes_total=self.observed,
            violations_total=len(self._violations),
        )


# ----------------------------------------------------------------------
# Channel properties (Section 7 and the channel assumption itself)
# ----------------------------------------------------------------------
class ChannelOccupancy:
    """Per-undirected-edge in-transit occupancy — the one implementation.

    Both the online :class:`~repro.sim.monitors.ChannelOccupancyMonitor`
    and :class:`ChannelBoundChecker` delegate here, so "how occupancy is
    counted" exists exactly once.  A departure on an edge whose count is
    already zero is ignored: that only happens on partially observed
    streams (a single live host seeing inbound traffic whose sends were
    logged by a peer), where the message demonstrably never contributed
    to this observer's occupancy.
    """

    def __init__(self, layer: Optional[str] = None) -> None:
        self._layer = layer
        self.current: Dict[Edge, int] = defaultdict(int)
        self.peak: Dict[Edge, int] = defaultdict(int)
        self.peak_time: Dict[Edge, float] = {}

    def _counts(self, layer: str) -> bool:
        return self._layer is None or layer == self._layer

    def record_send(self, src: ProcessId, dst: ProcessId, layer: str, time: float) -> Optional[int]:
        """Count one send; returns the new occupancy (None if filtered)."""
        # Hot path (once per checked-layer send): conditions and the
        # edge normalization stay inline, each dict is touched once.
        checked = self._layer
        if checked is not None and layer != checked:
            return None
        edge = (src, dst) if src <= dst else (dst, src)
        current = self.current
        level = current[edge] + 1
        current[edge] = level
        peak = self.peak
        if level > peak[edge]:
            peak[edge] = level
            self.peak_time[edge] = time
        return level

    def record_departure(self, src: ProcessId, dst: ProcessId, layer: str) -> None:
        checked = self._layer
        if checked is not None and layer != checked:
            return
        edge = (src, dst) if src <= dst else (dst, src)
        current = self.current
        level = current[edge]
        if level > 0:
            current[edge] = level - 1

    @property
    def max_occupancy(self) -> int:
        return max(self.peak.values(), default=0)

    def edges_exceeding(self, bound: int) -> List[Edge]:
        return sorted(edge for edge, peak in self.peak.items() if peak > bound)


class ChannelBoundChecker(Checker):
    """Section 7: at most ``bound`` (= 4) dining messages per edge."""

    name = CHANNEL_BOUND
    interests = (SendEvent, DeliverEvent, DropEvent)

    def __init__(self, bound: int = 4, layer: Optional[str] = "dining") -> None:
        super().__init__()
        self.bound = int(bound)
        self.layer = layer
        self.occupancy = ChannelOccupancy(layer=layer)
        self._violations: List[Violation] = []

    def observe(self, event, index: int) -> Optional[List[Violation]]:
        if type(event) is SendEvent:
            violation = self.record_send(
                event.src, event.dst, event.layer, event.time, event.type, index=index
            )
            return [violation] if violation is not None else None
        self.record_departure(event.src, event.dst, event.layer)
        return None

    def record_send(
        self,
        src: ProcessId,
        dst: ProcessId,
        layer: str,
        time: float,
        message_type: str,
        *,
        index: Optional[int] = None,
    ) -> Optional[Violation]:
        """Allocation-free entry point for change-tracking adapters."""
        self.observed += 1
        level = self.occupancy.record_send(src, dst, layer, time)
        if level is not None and level > self.bound:
            return self.record_level(src, dst, level, time, message_type, index=index)
        return None

    def record_level(
        self,
        src: ProcessId,
        dst: ProcessId,
        level: int,
        time: float,
        message_type: str,
        *,
        index: Optional[int] = None,
    ) -> Violation:
        """Judge an occupancy level already counted through a shared
        :class:`ChannelOccupancy` (adapters that feed the one occupancy
        instance directly call this only when ``level`` exceeds the
        bound)."""
        violation = Violation(
            prop=self.name,
            time=time,
            detail=(
                f"t={time}: {level} {self.layer or 'total'} messages in "
                f"transit on edge {_edge(src, dst)}, bound is "
                f"{self.bound} (latest: {message_type} {src}->{dst})"
            ),
            subject=_edge(src, dst),
            event_index=index,
        )
        self._violations.append(violation)
        return violation

    def record_departure(self, src: ProcessId, dst: ProcessId, layer: str) -> None:
        self.observed += 1
        self.occupancy.record_departure(src, dst, layer)

    def finalize(self) -> PropertyVerdict:
        verdict = self._verdict(
            self._violations[:MAX_WITNESSES],
            max_in_transit=self.occupancy.max_occupancy,
            exceedances_total=len(self._violations),
        )
        verdict.details["edge_peaks"] = {
            f"{a}-{b}": peak for (a, b), peak in sorted(self.occupancy.peak.items())
        }
        return verdict


class FifoChecker(Checker):
    """The channel assumption: per directed channel, sequence numbers are
    delivered (or dropped) contiguously from 1 — any gap is a loss, any
    step backwards a reordering or duplicate.

    Events without a sequence number are counted but not judged; every
    substrate in this repo stamps them (the wire codec carries them in
    frames, the kernel adapter assigns them at send).
    """

    name = FIFO
    interests = (SendEvent, DeliverEvent, DropEvent)

    def __init__(self) -> None:
        super().__init__()
        self._expected: Dict[Tuple[ProcessId, ProcessId], int] = {}
        self._violations: List[Violation] = []
        self.unsequenced = 0
        self.consumed = 0

    def observe(self, event, index: int) -> Optional[List[Violation]]:
        if type(event) is SendEvent:
            self.observed += 1
            return None
        violation = self.record_consume(
            event.src, event.dst, event.seq, event.time, index=index
        )
        return [violation] if violation is not None else None

    def record_consume(
        self,
        src: ProcessId,
        dst: ProcessId,
        seq: Optional[int],
        time: float,
        *,
        index: Optional[int] = None,
    ) -> Optional[Violation]:
        """Allocation-free entry point for change-tracking adapters."""
        self.observed += 1
        if seq is None:
            self.unsequenced += 1
            return None
        channel = (src, dst)
        expected = self._expected.get(channel, 0) + 1
        self.consumed += 1
        if seq != expected:
            shape = "lost or reordered" if seq > expected else "reordered or duplicated"
            violation = Violation(
                prop=self.name,
                time=time,
                detail=(
                    f"t={time}: channel {src}->{dst} consumed "
                    f"seq {seq}, expected {expected} ({shape})"
                ),
                subject=channel,
                event_index=index,
            )
            self._violations.append(violation)
            # Resync so one loss doesn't cascade into a violation per
            # subsequent delivery.
            self._expected[channel] = max(seq, expected)
            return violation
        self._expected[channel] = seq
        return None

    def finalize(self) -> PropertyVerdict:
        if self.observed and not self.consumed:
            # Sends only (e.g. a send-side wire log with no deliveries
            # observed): nothing was judged.
            return PropertyVerdict(prop=self.name, status=SKIP)
        return self._verdict(
            self._violations[:MAX_WITNESSES],
            consumed_total=self.consumed,
            unsequenced_total=self.unsequenced,
            violations_total=len(self._violations),
        )


class PendingPingChecker(Checker):
    """Lemma 2.2 on the wire: one outstanding ping per ordered pair."""

    name = PENDING_PING
    interests = (SendEvent, DeliverEvent, MembershipEvent)

    def __init__(self) -> None:
        super().__init__()
        self._outstanding: Dict[Tuple[ProcessId, ProcessId], int] = {}
        self._violations: List[Violation] = []
        self.pings_total = 0

    def observe(self, event, index: int) -> Optional[List[Violation]]:
        if type(event) is MembershipEvent:
            self.note_membership(event.verb, event.pid, event.edges)
            return None
        if type(event) is SendEvent:
            if event.type == "Ping":
                violation = self.record_ping_send(
                    event.src, event.dst, event.time, index=index
                )
                return [violation] if violation is not None else None
            self.observed += 1
            return None
        if event.type == "Ack":
            self.record_ack_arrival(event.src, event.dst)
            return None
        self.observed += 1
        return None

    def record_ping_send(
        self,
        src: ProcessId,
        dst: ProcessId,
        time: float,
        *,
        index: Optional[int] = None,
    ) -> Optional[Violation]:
        """Allocation-free entry point for change-tracking adapters."""
        self.observed += 1
        self.pings_total += 1
        pair = (src, dst)
        count = self._outstanding.get(pair, 0) + 1
        self._outstanding[pair] = count
        if count > 1:
            violation = Violation(
                prop=self.name,
                time=time,
                detail=(
                    f"t={time}: second concurrent ping "
                    f"{src}->{dst} (Lemma 2.2)"
                ),
                subject=pair,
                event_index=index,
            )
            self._violations.append(violation)
            return violation
        return None

    def record_ack_arrival(self, src: ProcessId, dst: ProcessId) -> None:
        """An ack from ``src`` arrived at ``dst``: retire ``(dst, src)``."""
        self.observed += 1
        pair = (dst, src)
        if self._outstanding.get(pair, 0) > 0:
            self._outstanding[pair] -= 1

    def note_membership(self, verb: str, pid: ProcessId, edges: tuple) -> None:
        """A delta rebuilt links hygienically: retire their old pings.

        A join or rejoin of ``pid`` tears down and rebuilds every link
        touching it; ``add_edge`` rebuilds the one link to its peer.  A
        ping outstanding from the link's earlier incarnation was retired
        by that teardown (its ack can never arrive — the channel is
        fenced), so it must not make the fresh link's first ping look
        like a Lemma 2.2 duplicate.  This is the offline-replay twin of
        the online adapters' ``note_rejoin``/``note_edge_reset``; a
        ``leave`` deliberately clears nothing — traffic still aimed at a
        departed pid is exactly what the checker exists to count.
        """
        self.observed += 1
        if verb in ("join", "rejoin"):
            stale = [pair for pair in self._outstanding if pid in pair]
        elif verb == "add_edge" and edges:
            stale = [
                pair
                for peer in edges
                for pair in ((pid, peer), (peer, pid))
                if pair in self._outstanding
            ]
        else:
            return
        for pair in stale:
            del self._outstanding[pair]

    def finalize(self) -> PropertyVerdict:
        return self._verdict(
            self._violations[:MAX_WITNESSES],
            pings_total=self.pings_total,
            violations_total=len(self._violations),
        )


# ----------------------------------------------------------------------
# Eventual properties (Theorems 1–3 and Section 7 quiescence)
# ----------------------------------------------------------------------
class WxSafetyChecker(Checker):
    """Theorem 1 (◇WX): eventually no two live neighbors eat together.

    Every overlapping-eating window is recorded; at ``finalize`` a window
    is a violation iff it extends past ``settle`` (with ``settle=None``
    the property is reported informationally: finitely many early
    overlaps never refute an eventual property on their own).
    """

    name = WX_SAFETY
    interests = (PhaseEvent, CrashEvent)

    def __init__(self, edges: Sequence[Edge], *, settle: Optional[float] = None) -> None:
        super().__init__()
        self.settle = settle
        self._neighbors: Dict[ProcessId, List[ProcessId]] = defaultdict(list)
        for a, b in edges:
            self._neighbors[a].append(b)
            self._neighbors[b].append(a)
        self._eating: Dict[ProcessId, float] = {}
        self._crashed: set = set()
        # edge -> start of the currently open overlap window
        self._open: Dict[Edge, Tuple[float, int]] = {}
        # closed windows: (edge, start, end, event_index at open)
        self._windows: List[Tuple[Edge, float, float, int]] = []
        self.horizon: Optional[float] = None

    def observe(self, event, index: int) -> Optional[List[Violation]]:
        self.observed += 1
        if type(event) is CrashEvent:
            self._crashed.add(event.pid)
            self._stop_eating(event.pid, event.time)
            return None
        if event.new_phase == EATING and event.pid not in self._crashed:
            self._eating[event.pid] = event.time
            for other in self._neighbors.get(event.pid, ()):
                if other in self._eating:
                    self._open[_edge(event.pid, other)] = (event.time, index)
        elif event.old_phase == EATING:
            self._stop_eating(event.pid, event.time)
        return None

    def _stop_eating(self, pid: ProcessId, time: float) -> None:
        self._eating.pop(pid, None)
        for edge in [e for e in self._open if pid in e]:
            start, index = self._open.pop(edge)
            self._windows.append((edge, start, time, index))

    def finalize(self) -> PropertyVerdict:
        horizon = self.horizon if self.horizon is not None else math.inf
        windows = list(self._windows)
        windows += [
            (edge, start, horizon, index) for edge, (start, index) in self._open.items()
        ]
        windows.sort(key=lambda w: w[1])
        settle = self.settle
        late = (
            [w for w in windows if w[2] > settle] if settle is not None else []
        )
        violations = [
            Violation(
                prop=self.name,
                time=start,
                detail=(
                    f"neighbors {edge[0]} and {edge[1]} ate simultaneously during "
                    f"[{start:g}, {end:g})"
                    + (f", past settle={settle:g}" if settle is not None else "")
                ),
                subject=edge,
                event_index=index,
            )
            for edge, start, end, index in late[:MAX_WITNESSES]
        ]
        verdict = self._verdict(
            violations,
            overlap_windows_total=len(windows),
            late_windows_total=len(late),
        )
        if windows:
            verdict.counters["last_overlap_end"] = max(w[2] for w in windows)
        if settle is not None:
            verdict.details["settle"] = settle
        return verdict


class ProgressChecker(Checker):
    """Theorem 2 (wait-freedom): every correct hungry diner eventually eats.

    A correct process whose final hungry session is still unserved at the
    horizon — and began at least ``patience`` before it — is starving.
    With ``patience=None`` the judgement is informational (open sessions
    are merely counted): a finite prefix cannot refute wait-freedom.
    """

    name = PROGRESS
    interests = (PhaseEvent, CrashEvent)

    def __init__(
        self,
        *,
        patience: Optional[float] = None,
        correct: Optional[Sequence[ProcessId]] = None,
    ) -> None:
        super().__init__()
        self.patience = patience
        self.correct = set(correct) if correct is not None else None
        self.horizon: Optional[float] = None
        self._crashed: set = set()
        self._seen: set = set()
        # pid -> (session start, event index); present while hungry-unserved
        self._hungry_since: Dict[ProcessId, Tuple[float, int]] = {}
        self.sessions_served = 0

    def observe(self, event, index: int) -> Optional[List[Violation]]:
        self.observed += 1
        if type(event) is CrashEvent:
            self._crashed.add(event.pid)
            self._hungry_since.pop(event.pid, None)
            return None
        self._seen.add(event.pid)
        if event.new_phase == HUNGRY:
            self._hungry_since[event.pid] = (event.time, index)
        elif event.old_phase == HUNGRY:
            if event.new_phase == EATING:
                self.sessions_served += 1
            self._hungry_since.pop(event.pid, None)
        return None

    def finalize(self) -> PropertyVerdict:
        horizon = self.horizon
        correct = (self.correct if self.correct is not None else self._seen) - self._crashed
        waiting = {
            pid: since
            for pid, since in self._hungry_since.items()
            if pid in correct
        }
        violations: List[Violation] = []
        if self.patience is not None and horizon is not None and math.isfinite(horizon):
            for pid in sorted(waiting):
                start, index = waiting[pid]
                if start <= horizon - self.patience:
                    violations.append(
                        Violation(
                            prop=self.name,
                            time=start,
                            detail=(
                                f"correct diner {pid} hungry since t={start:g}, "
                                f"unserved at horizon {horizon:g} "
                                f"(patience {self.patience:g})"
                            ),
                            subject=(pid,),
                            event_index=index,
                        )
                    )
        verdict = self._verdict(
            violations[:MAX_WITNESSES],
            sessions_served_total=self.sessions_served,
            waiting_at_horizon=len(waiting),
            starving_total=len(violations),
        )
        verdict.details["starving"] = [v.subject[0] for v in violations]
        return verdict


class OvertakingChecker(Checker):
    """Theorem 3 (◇2-BW): per hungry session started after convergence,
    no neighbor begins eating more than ``bound`` (= 2) times.

    Sessions and eat-starts are accumulated online; the ``after`` cutoff
    is applied at ``finalize`` (``after=None`` reports the observed
    maximum informationally, since pre-convergence sessions are exempt).
    """

    name = OVERTAKING
    interests = (PhaseEvent, CrashEvent)

    def __init__(
        self,
        edges: Sequence[Edge],
        *,
        bound: int = 2,
        after: Optional[float] = None,
    ) -> None:
        super().__init__()
        self.bound = int(bound)
        self.after = after
        self._neighbors: Dict[ProcessId, List[ProcessId]] = defaultdict(list)
        for a, b in edges:
            self._neighbors[a].append(b)
            self._neighbors[b].append(a)
        self._eat_starts: Dict[ProcessId, List[float]] = defaultdict(list)
        self._sessions: Dict[ProcessId, List[Tuple[float, float, int]]] = defaultdict(list)
        self._hungry_since: Dict[ProcessId, Tuple[float, int]] = {}
        self.horizon: Optional[float] = None

    def observe(self, event, index: int) -> Optional[List[Violation]]:
        self.observed += 1
        if type(event) is CrashEvent:
            self._close_session(event.pid, event.time)
            return None
        if event.new_phase == HUNGRY:
            self._hungry_since[event.pid] = (event.time, index)
        elif event.old_phase == HUNGRY:
            self._close_session(event.pid, event.time)
        if event.new_phase == EATING:
            self._eat_starts[event.pid].append(event.time)
        return None

    def _close_session(self, pid: ProcessId, end: float) -> None:
        since = self._hungry_since.pop(pid, None)
        if since is not None:
            self._sessions[pid].append((since[0], end, since[1]))

    def finalize(self) -> PropertyVerdict:
        horizon = self.horizon if self.horizon is not None else math.inf
        sessions_by_pid: Dict[ProcessId, List[Tuple[float, float, int]]] = {
            pid: list(sessions) for pid, sessions in self._sessions.items()
        }
        for pid, (start, index) in self._hungry_since.items():
            sessions_by_pid.setdefault(pid, []).append((start, horizon, index))

        after = self.after
        max_all = 0
        violations: List[Violation] = []
        sessions_judged = 0
        for j, sessions in sessions_by_pid.items():
            neighbors = self._neighbors.get(j, ())
            for start, end, index in sessions:
                judged = after is None or start >= after
                if judged:
                    sessions_judged += 1
                for i in neighbors:
                    starts = self._eat_starts.get(i)
                    if not starts:
                        continue
                    # Eat starts arrive in time order, so count by bisection.
                    count = bisect_left(starts, end) - bisect_left(starts, start)
                    if count > max_all:
                        max_all = count
                    if judged and after is not None and count > self.bound:
                        violations.append(
                            Violation(
                                prop=self.name,
                                time=start,
                                detail=(
                                    f"{i} overtook hungry neighbor {j} {count}x during "
                                    f"session [{start:g}, {end:g}) (bound {self.bound})"
                                ),
                                subject=(i, j),
                                event_index=index,
                            )
                        )
        verdict = self._verdict(
            violations[:MAX_WITNESSES],
            max_overtaking=max_all,
            sessions_judged=sessions_judged,
            violations_total=len(violations),
        )
        if after is not None:
            verdict.details["after"] = after
        return verdict


#: Cache sentinel: "this pid's crash time has not been resolved yet"
#: (distinct from ``None`` = "known to never crash").
_UNKNOWN = object()


@dataclass(frozen=True)
class PostCrashSend:
    """One message sent to an already-crashed destination."""

    src: ProcessId
    dst: ProcessId
    time: float
    message_type: str
    layer: str


class QuiescenceChecker(Checker):
    """Section 7 quiescence: correct processes eventually stop messaging
    crashed neighbors.

    Crash instants are learned from :class:`CrashEvent`s and, online,
    from an optional ``crash_time_of`` oracle (the kernel's crash plan).
    Every post-crash send is recorded; with a ``grace`` window, a
    config-layer send more than ``grace`` after the destination's crash
    is a violation.  ``grace=None`` reports informationally.
    """

    name = QUIESCENCE
    interests = (SendEvent, CrashEvent)

    def __init__(
        self,
        *,
        layer: Optional[str] = "dining",
        grace: Optional[float] = None,
        crash_time_of: Optional[Callable[[ProcessId], Optional[float]]] = None,
    ) -> None:
        super().__init__()
        self.layer = layer
        self.grace = grace
        self._crash_time_of = crash_time_of
        self._crash_times: Dict[ProcessId, Optional[float]] = {}
        self.post_crash_sends: List[PostCrashSend] = []
        self._violations: List[Violation] = []

    def _crash_time(self, pid: ProcessId) -> Optional[float]:
        # The cache holds explicit ``None`` for processes known never to
        # crash, so the oracle is consulted at most once per destination.
        known = self._crash_times.get(pid, _UNKNOWN)
        if known is _UNKNOWN:
            oracle = self._crash_time_of
            known = oracle(pid) if oracle is not None else None
            self._crash_times[pid] = known
        return known

    def note_crash(self, pid: ProcessId, time: float) -> None:
        """Learn a crash instant out-of-band (idempotent).

        Adapters that defer their :class:`CrashEvent` stream to a
        finalize-time replay call this when the crash actually happens,
        so post-crash sends are still recognised online.
        """
        if self._crash_times.get(pid) is None:
            self._crash_times[pid] = time

    def observe(self, event, index: int) -> Optional[List[Violation]]:
        if type(event) is CrashEvent:
            self.observed += 1
            self.note_crash(event.pid, event.time)
            return None
        violation = self.record_send(
            event.src, event.dst, event.time, event.type, event.layer, index=index
        )
        return [violation] if violation is not None else None

    def record_send(
        self,
        src: ProcessId,
        dst: ProcessId,
        time: float,
        message_type: str,
        layer: str,
        *,
        index: Optional[int] = None,
    ) -> Optional[Violation]:
        """Allocation-free entry point for always-on monitors."""
        self.observed += 1
        crash_time = self._crash_time(dst)
        if crash_time is None or time < crash_time:
            return None
        self.post_crash_sends.append(
            PostCrashSend(src, dst, time, message_type, layer)
        )
        if (
            self.grace is not None
            and (self.layer is None or layer == self.layer)
            and time > crash_time + self.grace
        ):
            violation = Violation(
                prop=self.name,
                time=time,
                detail=(
                    f"t={time}: {message_type} {src}->{dst} sent "
                    f"{time - crash_time:g} after {dst} crashed "
                    f"(grace {self.grace:g})"
                ),
                subject=(src, dst),
                event_index=index,
            )
            self._violations.append(violation)
            return violation
        return None

    def sends_to(
        self, dst: ProcessId, *, layer: Optional[str] = None
    ) -> List[PostCrashSend]:
        return [
            record
            for record in self.post_crash_sends
            if record.dst == dst and (layer is None or record.layer == layer)
        ]

    def last_send_time(
        self, dst: ProcessId, *, layer: Optional[str] = None
    ) -> Optional[float]:
        times = [record.time for record in self.sends_to(dst, layer=layer)]
        return max(times) if times else None

    def finalize(self) -> PropertyVerdict:
        in_layer = [
            r
            for r in self.post_crash_sends
            if self.layer is None or r.layer == self.layer
        ]
        verdict = self._verdict(
            self._violations[:MAX_WITNESSES],
            post_crash_sends_total=len(in_layer),
            violations_total=len(self._violations),
        )
        if in_layer:
            verdict.counters["last_post_crash_send"] = max(r.time for r in in_layer)
        if self.grace is not None:
            verdict.details["grace"] = self.grace
        return verdict


__all__ = [
    "CHANNEL_BOUND",
    "DINER_LOCAL",
    "FIFO",
    "FORK_UNIQUENESS",
    "OVERTAKING",
    "PENDING_PING",
    "PROGRESS",
    "QUIESCENCE",
    "WX_SAFETY",
    "ChannelBoundChecker",
    "ChannelOccupancy",
    "DinerLocalChecker",
    "FifoChecker",
    "ForkUniquenessChecker",
    "OvertakingChecker",
    "PendingPingChecker",
    "PostCrashSend",
    "ProgressChecker",
    "QuiescenceChecker",
    "WxSafetyChecker",
    "diner_local_violations",
    "probe_violations",
]
