"""Substrate-agnostic property checking with a single Verdict pipeline.

One canonical implementation per paper property, consuming a normalized
check-event stream (:mod:`repro.checks.events`), composed by
:class:`CheckSuite` into a single typed :class:`Verdict`.  The kernel,
the live asyncio host, the cluster merge, and offline ``repro check``
replay all drive this same code — see ``docs/CHECKS.md`` for the
property ↔ theorem map.

This package deliberately imports neither :mod:`repro.sim` nor
:mod:`repro.net` (enforced by the layering test); substrate adapters
live with their substrates (:mod:`repro.sim.checks`,
:mod:`repro.net.host`).
"""

from repro.checks.base import Checker
from repro.checks.context import (
    CheckCollector,
    active_collector,
    collecting_checks,
)
from repro.checks.dynamic import (
    EDGE_EXCLUSION,
    EdgeScopedExclusionChecker,
    EpochChannelBoundChecker,
    ResidencyProgressChecker,
    ResidencyQuiescenceChecker,
)
from repro.checks.expectations import (
    ExpectedStatuses,
    Mismatch,
    describe_mismatches,
    worst_surprise,
)
from repro.checks.events import (
    CHECK_EVENT_VERSION,
    CrashEvent,
    DeliverEvent,
    DoorwayEvent,
    DropEvent,
    MembershipEvent,
    PhaseEvent,
    ProbeEvent,
    SendEvent,
    SuspicionEvent,
)
from repro.checks.properties import (
    CHANNEL_BOUND,
    DINER_LOCAL,
    FIFO,
    FORK_UNIQUENESS,
    OVERTAKING,
    PENDING_PING,
    PROGRESS,
    QUIESCENCE,
    WX_SAFETY,
    ChannelBoundChecker,
    ChannelOccupancy,
    DinerLocalChecker,
    FifoChecker,
    ForkUniquenessChecker,
    OvertakingChecker,
    PendingPingChecker,
    PostCrashSend,
    ProgressChecker,
    QuiescenceChecker,
    WxSafetyChecker,
    diner_local_violations,
    probe_violations,
)
from repro.checks.stream import (
    event_from_trace_record,
    event_from_wire,
    events_from_trace,
    events_from_wire,
    load_events_lines,
    load_events_path,
    merge_events,
    replay,
)
from repro.checks.suite import CheckConfig, CheckSuite, standard_suite
from repro.checks.verdict import (
    FAIL,
    PASS,
    SKIP,
    STATUS_ORDER,
    PropertyVerdict,
    Verdict,
    Violation,
    annotate_violations,
    worst_status,
)

__all__ = [
    "CHANNEL_BOUND",
    "CHECK_EVENT_VERSION",
    "DINER_LOCAL",
    "EDGE_EXCLUSION",
    "FAIL",
    "FIFO",
    "FORK_UNIQUENESS",
    "OVERTAKING",
    "PASS",
    "PENDING_PING",
    "PROGRESS",
    "QUIESCENCE",
    "SKIP",
    "STATUS_ORDER",
    "WX_SAFETY",
    "ChannelBoundChecker",
    "ChannelOccupancy",
    "CheckCollector",
    "CheckConfig",
    "CheckSuite",
    "Checker",
    "CrashEvent",
    "DeliverEvent",
    "DinerLocalChecker",
    "DoorwayEvent",
    "DropEvent",
    "EdgeScopedExclusionChecker",
    "EpochChannelBoundChecker",
    "ExpectedStatuses",
    "FifoChecker",
    "ForkUniquenessChecker",
    "MembershipEvent",
    "Mismatch",
    "OvertakingChecker",
    "PendingPingChecker",
    "PhaseEvent",
    "PostCrashSend",
    "ProbeEvent",
    "ProgressChecker",
    "PropertyVerdict",
    "QuiescenceChecker",
    "ResidencyProgressChecker",
    "ResidencyQuiescenceChecker",
    "SendEvent",
    "SuspicionEvent",
    "Verdict",
    "Violation",
    "WxSafetyChecker",
    "active_collector",
    "annotate_violations",
    "collecting_checks",
    "describe_mismatches",
    "diner_local_violations",
    "event_from_trace_record",
    "event_from_wire",
    "events_from_trace",
    "events_from_wire",
    "load_events_lines",
    "load_events_path",
    "merge_events",
    "probe_violations",
    "replay",
    "standard_suite",
    "worst_status",
    "worst_surprise",
]
