"""Adapters from recorded artifacts to the normalized check-event stream.

A run leaves two kinds of artifacts: the trace (typed records of
:mod:`repro.trace.events`, one JSONL object per line with a ``kind``
tag) and, for live runs, the wire log (one JSON object per transport
event).  Both speak distinguishable ``kind`` vocabularies, so
:func:`load_events_path` accepts either file — or a mix — and
``repro check`` can replay any combination of them through the full
suite.  :func:`merge_events` reproduces the cluster's merge order
(time-sorted, sends before the departures they race with), which is what
turns the old merged-staircase reconstruction into a plain check-event
adapter.
"""

from __future__ import annotations

import json
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.checks.events import (
    CrashEvent,
    DoorwayEvent,
    MembershipEvent,
    PhaseEvent,
    SendEvent,
    SuspicionEvent,
    WIRE_EVENT_TYPES,
)
from repro.checks.suite import CheckConfig, CheckSuite, standard_suite
from repro.checks.verdict import Verdict
from repro.errors import ConfigurationError
from repro.trace.events import (
    Crash,
    DoorwayChange,
    MembershipChange,
    PhaseChange,
    SuspicionChange,
)
from repro.trace.serialize import record_from_dict

Edge = Tuple[int, int]

#: ``kind`` values of trace-record JSONL lines that map to check events.
_TRACE_KINDS = {"phase", "doorway", "suspicion", "crash", "membership"}
#: ``kind`` values carried by trace records with no checkable content.
_IGNORED_TRACE_KINDS = {"protocol_step", "transient_fault"}


def event_from_trace_record(record) -> Optional[object]:
    """One trace record as a check event (None for non-checkable kinds)."""
    cls = type(record)
    if cls is PhaseChange:
        return PhaseEvent(record.time, record.pid, record.old_phase, record.new_phase)
    if cls is Crash:
        return CrashEvent(record.time, record.pid)
    if cls is DoorwayChange:
        return DoorwayEvent(record.time, record.pid, record.inside)
    if cls is SuspicionChange:
        return SuspicionEvent(
            record.time, record.observer, record.suspect, record.suspected
        )
    if cls is MembershipChange:
        return MembershipEvent(
            record.time, record.epoch, record.verb, record.pid, tuple(record.edges)
        )
    return None


def events_from_trace(records: Iterable) -> List[object]:
    """Check events for every checkable record, in trace order."""
    events = []
    for record in records:
        event = event_from_trace_record(record)
        if event is not None:
            events.append(event)
    return events


def event_from_wire(record) -> object:
    """One wire-log entry (dict or any object with the wire fields)."""
    get = record.get if isinstance(record, dict) else lambda k, d=None: getattr(record, k, d)
    kind = get("kind")
    cls = WIRE_EVENT_TYPES.get(kind)
    if cls is None:
        raise ConfigurationError(f"unknown wire event kind {kind!r}")
    return cls(
        time=get("time"),
        src=get("src"),
        dst=get("dst"),
        type=get("type"),
        layer=get("layer"),
        seq=get("seq"),
    )


def events_from_wire(records: Iterable) -> List[object]:
    return [event_from_wire(record) for record in records]


def _order_key(event) -> Tuple[float, int, int]:
    seq = getattr(event, "seq", None)
    if type(event) is MembershipEvent:
        # A delta applies at the instant boundary: the sends it enables
        # (the fresh incarnation's first pings land at the same stamp)
        # happen after it, so its link resets must replay first.
        rank = -1
    elif type(event) is SendEvent:
        rank = 0
    else:
        rank = 1
    return (event.time, rank, seq if seq is not None else -1)


def merge_events(*streams: Iterable) -> List[object]:
    """Merge event streams into one time-ordered stream.

    Sends sort before same-instant departures (a message is in transit
    for the instant it spends on a zero-latency local edge), then by
    sequence number — the exact order the cluster's occupancy
    reconstruction used, now shared by every offline consumer.
    """
    merged: List[object] = []
    for stream in streams:
        merged.extend(stream)
    merged.sort(key=_order_key)
    return merged


def load_events_lines(lines: Iterable[str]) -> List[object]:
    """Parse JSONL lines holding trace records and/or wire-log entries."""
    events: List[object] = []
    for line_number, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            data = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"line {line_number}: invalid JSON ({exc})"
            ) from None
        kind = data.get("kind")
        if kind in WIRE_EVENT_TYPES:
            events.append(event_from_wire(data))
        elif kind in _TRACE_KINDS:
            event = event_from_trace_record(record_from_dict(data))
            if event is not None:
                events.append(event)
        elif kind in _IGNORED_TRACE_KINDS:
            continue
        else:
            raise ConfigurationError(
                f"line {line_number}: unknown event kind {kind!r}"
            )
    return events


def load_events_path(path: str) -> List[object]:
    """Load one JSONL artifact (trace, wire log, or a mix of lines)."""
    with open(path, "r", encoding="utf-8") as stream:
        return load_events_lines(stream)


def replay(
    edges: Sequence[Edge],
    events: Iterable,
    config: Optional[CheckConfig] = None,
    *,
    horizon: Optional[float] = None,
    suite: Optional[CheckSuite] = None,
) -> Verdict:
    """Run a recorded event stream through the full suite offline.

    State-based properties (fork uniqueness, diner-local invariants)
    have nothing to probe offline and come back ``skip``.
    """
    if suite is None:
        suite = standard_suite(edges, config)
    suite.feed(events)
    return suite.finalize(horizon)
