"""Typed check outcomes: :class:`Violation`, :class:`PropertyVerdict`,
and the composite :class:`Verdict` every substrate emits.

A verdict is deliberately JSON-round-trippable (``to_json`` /
``from_json``) so the live cluster can persist per-host verdicts, the
scenario cache can store per-seed verdicts next to rows and metrics, and
``repro check`` can re-emit them for CI gates — all without inventing
per-layer result dicts.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.checks.events import CHECK_EVENT_VERSION

#: Per-property statuses.  ``skip`` means the stream carried no evidence
#: either way (e.g. replaying a trace with no wire log leaves the
#: channel-bound checker with nothing to observe).
PASS = "pass"
FAIL = "fail"
SKIP = "skip"

#: How many violation witnesses a property keeps; beyond this only the
#: counters grow.  Keeps verdicts bounded on pathological runs.
MAX_WITNESSES = 100

#: The status lattice the merge algebra joins over: ``skip`` (no
#: evidence) < ``pass`` (evidence, no violation) < ``fail``.  Merging
#: takes the join, so merged statuses are monotone in their inputs.
STATUS_ORDER = {SKIP: 0, PASS: 1, FAIL: 2}


def worst_status(statuses: Iterable[str]) -> str:
    """The join (max) of statuses under :data:`STATUS_ORDER`.

    Empty input joins to ``skip``, the lattice bottom — the status of a
    property no stream carried evidence for.
    """
    worst = SKIP
    for status in statuses:
        if STATUS_ORDER[status] > STATUS_ORDER[worst]:
            worst = status
    return worst


@dataclass(frozen=True)
class Violation:
    """One concrete counterexample to a property.

    ``subject`` names the culprit — an edge tuple ``(a, b)``, a process
    id ``(pid,)``, or an ordered channel pair — and ``event_index`` is
    the 0-based ordinal of the witnessing event in the observed stream.
    ``trace_id``/``span_id`` point at the request span of the violating
    diner when the run was traced (see :mod:`repro.obs.tracing` and
    :func:`annotate_violations`), so a FAIL names one traceable request
    instead of just an instant.
    """

    prop: str
    time: float
    detail: str
    subject: Tuple = ()
    event_index: Optional[int] = None
    trace_id: Optional[int] = None
    span_id: Optional[int] = None

    def to_json(self) -> dict:
        data = {
            "prop": self.prop,
            "time": self.time,
            "detail": self.detail,
            "subject": list(self.subject),
            "event_index": self.event_index,
        }
        if self.trace_id is not None:
            data["trace_id"] = self.trace_id
            data["span_id"] = self.span_id
        return data

    @classmethod
    def from_json(cls, data: Mapping) -> "Violation":
        return cls(
            prop=data["prop"],
            time=data["time"],
            detail=data["detail"],
            subject=tuple(data.get("subject", ())),
            event_index=data.get("event_index"),
            trace_id=data.get("trace_id"),
            span_id=data.get("span_id"),
        )


def annotate_violations(verdict: "Verdict", spans: Iterable) -> "Verdict":
    """Point each witness at the request span it happened inside.

    ``spans`` is any span list (duck-typed: ``name``, ``pid``,
    ``trace_id``, ``span_id``, ``start``, ``end``) — typically the output
    of :func:`repro.obs.tracing.spans_from_events` or a host's span log.
    For each violation whose subject names one or more pids, the
    enclosing ``request`` span of those pids at the violation instant is
    looked up; when several subjects have one (an exclusion edge has
    two eaters), the latest-starting request wins — the second eater is
    the intrusion the witness describes.  Violations with no covering
    request are left untouched.  Returns a new :class:`Verdict`.
    """
    by_pid: Dict[int, List] = {}
    for span in spans:
        if span.name == "request":
            by_pid.setdefault(span.pid, []).append(span)
    for requests in by_pid.values():
        requests.sort(key=lambda s: s.start)

    def covering(pid, time: float):
        best = None
        for span in by_pid.get(pid, ()):
            if span.start > time:
                break
            if span.end is None or time <= span.end:
                best = span
        return best

    properties: Dict[str, PropertyVerdict] = {}
    for name, prop in verdict.properties.items():
        violations = []
        for violation in prop.violations:
            if violation.trace_id is None:
                candidates = [
                    span
                    for span in (
                        covering(pid, violation.time)
                        for pid in violation.subject
                        if isinstance(pid, int)
                    )
                    if span is not None
                ]
                if candidates:
                    winner = max(candidates, key=lambda s: s.start)
                    violation = replace(
                        violation, trace_id=winner.trace_id, span_id=winner.span_id
                    )
            violations.append(violation)
        properties[name] = replace(prop, violations=violations)
    return replace(verdict, properties=properties)


def _merge_counter(name: str, values: Sequence[float]) -> float:
    if name.startswith("max_") or name.startswith("last_") or name.startswith("peak_"):
        return max(values)
    return sum(values)


@dataclass
class PropertyVerdict:
    """Outcome of one checker over one (or several merged) streams."""

    prop: str
    status: str
    violations: List[Violation] = field(default_factory=list)
    counters: Dict[str, float] = field(default_factory=dict)
    details: Dict[str, object] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.status != FAIL

    @property
    def first_violation(self) -> Optional[Violation]:
        return self.violations[0] if self.violations else None

    def to_json(self) -> dict:
        return {
            "prop": self.prop,
            "status": self.status,
            "violations": [v.to_json() for v in self.violations],
            "counters": dict(self.counters),
            "details": dict(self.details),
        }

    @classmethod
    def from_json(cls, data: Mapping) -> "PropertyVerdict":
        return cls(
            prop=data["prop"],
            status=data["status"],
            violations=[Violation.from_json(v) for v in data.get("violations", [])],
            counters=dict(data.get("counters", {})),
            details=dict(data.get("details", {})),
        )

    @classmethod
    def merge(cls, verdicts: Sequence["PropertyVerdict"]) -> "PropertyVerdict":
        """Combine the same property's verdicts from several streams.

        ``fail`` dominates ``pass`` dominates ``skip``; counters sum
        (``max_*`` / ``peak_*`` / ``last_*`` take the max); witnesses
        concatenate up to :data:`MAX_WITNESSES`.
        """
        live = [v for v in verdicts if v.status != SKIP]
        if not live:
            return cls(prop=verdicts[0].prop, status=SKIP)
        status = FAIL if any(v.status == FAIL for v in live) else PASS
        violations: List[Violation] = []
        for v in live:
            violations.extend(v.violations)
        counters: Dict[str, float] = {}
        names = {name for v in live for name in v.counters}
        for name in sorted(names):
            counters[name] = _merge_counter(
                name, [v.counters[name] for v in live if name in v.counters]
            )
        details: Dict[str, object] = {}
        for v in live:
            details.update(v.details)
        return cls(
            prop=verdicts[0].prop,
            status=status,
            violations=violations[:MAX_WITNESSES],
            counters=counters,
            details=details,
        )


@dataclass
class Verdict:
    """The single composite result type of the checks subsystem.

    ``properties`` maps property name to its :class:`PropertyVerdict`;
    ``events_observed`` counts every event the suite saw (probes
    included, online) and ``horizon`` is the time the stream was judged
    up to.
    """

    properties: Dict[str, PropertyVerdict]
    events_observed: int = 0
    horizon: Optional[float] = None
    version: int = CHECK_EVENT_VERSION

    @property
    def ok(self) -> bool:
        return all(p.ok for p in self.properties.values())

    @property
    def failed(self) -> List[str]:
        return [name for name, p in self.properties.items() if not p.ok]

    def all_violations(self) -> List[Violation]:
        out: List[Violation] = []
        for prop in self.properties.values():
            out.extend(prop.violations)
        return out

    def property(self, name: str) -> PropertyVerdict:
        return self.properties[name]

    def statuses(self) -> Dict[str, str]:
        return {name: p.status for name, p in self.properties.items()}

    def with_property(self, prop: PropertyVerdict) -> "Verdict":
        properties = dict(self.properties)
        properties[prop.prop] = prop
        return replace(self, properties=properties)

    def describe(self) -> str:
        """Uniform human rendering, used by every CLI surface."""
        lines = [f"checks: {'PASS' if self.ok else 'FAIL'}"]
        lines.append(
            f"  events observed: {self.events_observed}"
            + (f", horizon: {self.horizon:g}" if self.horizon is not None else "")
        )
        for name in sorted(self.properties):
            prop = self.properties[name]
            line = f"  [{prop.status:>4}] {name}"
            interesting = {
                k: v for k, v in prop.counters.items() if v or k.endswith("_total")
            }
            if interesting:
                rendered = ", ".join(
                    f"{k}={v:g}" for k, v in sorted(interesting.items())
                )
                line += f"  ({rendered})"
            lines.append(line)
            witness = prop.first_violation
            if witness is not None:
                where = f" @event {witness.event_index}" if witness.event_index is not None else ""
                if witness.trace_id is not None:
                    where += f" trace={witness.trace_id:#x}/{witness.span_id}"
                lines.append(
                    f"         first violation t={witness.time:g}"
                    f" subject={witness.subject}{where}: {witness.detail}"
                )
        return "\n".join(lines)

    def to_json(self) -> dict:
        return {
            "version": self.version,
            "ok": self.ok,
            "events_observed": self.events_observed,
            "horizon": self.horizon,
            "properties": {
                name: prop.to_json() for name, prop in sorted(self.properties.items())
            },
        }

    @classmethod
    def from_json(cls, data: Mapping) -> "Verdict":
        return cls(
            properties={
                name: PropertyVerdict.from_json(prop)
                for name, prop in data.get("properties", {}).items()
            },
            events_observed=data.get("events_observed", 0),
            horizon=data.get("horizon"),
            version=data.get("version", CHECK_EVENT_VERSION),
        )

    @classmethod
    def merge(cls, verdicts: Iterable["Verdict"]) -> "Verdict":
        """Merge verdicts from several streams (hosts, seeds, tables).

        Property-wise :meth:`PropertyVerdict.merge`; the union of
        property names is kept so a property skipped by one stream but
        judged by another keeps the judgement.
        """
        verdicts = list(verdicts)
        if not verdicts:
            return cls(properties={})
        names: List[str] = []
        for v in verdicts:
            for name in v.properties:
                if name not in names:
                    names.append(name)
        merged = {
            name: PropertyVerdict.merge(
                [v.properties[name] for v in verdicts if name in v.properties]
            )
            for name in names
        }
        horizons = [v.horizon for v in verdicts if v.horizon is not None]
        return cls(
            properties=merged,
            events_observed=sum(v.events_observed for v in verdicts),
            horizon=max(horizons) if horizons else None,
            version=max(v.version for v in verdicts),
        )
