"""Online invariant checkers.

These run *during* a simulation (as kernel step listeners or network
monitors) and raise the moment an invariant breaks, with the virtual time
and the witnesses in the message.  They give the test suite teeth: a
regression that duplicates a fork or overflows a channel fails at the
first bad state instead of producing a subtly wrong trace.

* :class:`ForkUniquenessChecker` — Lemma 1.2: between each pair of
  neighbors the fork is unique; both endpoints believing they hold it is
  the canonical violation.  (Both *not* holding it is legal: the fork is
  in transit.)  Same for the token.
* :class:`ChannelBoundChecker` — Section 7: at most ``bound`` (= 4)
  dining-layer messages in transit per edge.
* :class:`FifoChecker` — the channel assumption itself: per directed
  channel, deliveries happen in send order.
"""

from __future__ import annotations

import itertools
from typing import Dict, Optional, Sequence, Tuple

from repro.errors import (
    ChannelCapacityError,
    FifoViolationError,
    ForkDuplicationError,
    InvariantViolation,
)
from repro.sim.monitors import ChannelOccupancyMonitor, message_layer
from repro.sim.network import NetworkMonitor
from repro.sim.time import Instant

ProcessId = int


class ForkUniquenessChecker:
    """Verifies fork (and token) uniqueness across every edge.

    ``diners`` maps pid to any object exposing ``holds_fork(neighbor)`` and
    ``holds_token(neighbor)`` plus a ``crashed`` flag — the dining actors
    do.  Attach via ``sim.add_step_listener(checker.check)``; every
    processed event re-checks all edges.  Crashed endpoints are skipped:
    their frozen local state is unobservable to the system.
    """

    def __init__(self, diners: Dict[ProcessId, object], edges: Sequence[Tuple[ProcessId, ProcessId]]) -> None:
        self._diners = diners
        self._edges = tuple(edges)
        self.checks_performed = 0

    def check(self, now: Instant) -> None:
        self.checks_performed += 1
        for a, b in self._edges:
            diner_a = self._diners[a]
            diner_b = self._diners[b]
            if diner_a.crashed or diner_b.crashed:
                continue
            if diner_a.holds_fork(b) and diner_b.holds_fork(a):
                raise ForkDuplicationError(
                    f"t={now}: both {a} and {b} hold the fork for edge ({a},{b})"
                )
            if diner_a.holds_token(b) and diner_b.holds_token(a):
                raise ForkDuplicationError(
                    f"t={now}: both {a} and {b} hold the token for edge ({a},{b})"
                )


class ChannelBoundChecker(ChannelOccupancyMonitor):
    """Raises when any edge carries more than ``bound`` messages of a layer.

    Register as a network monitor.  The paper's bound for the dining layer
    is 4 (one fork, one token, and one ping-or-ack per direction).
    """

    def __init__(self, bound: int = 4, layer: Optional[str] = "dining") -> None:
        super().__init__(layer=layer)
        self.bound = int(bound)

    def on_send(self, src: ProcessId, dst: ProcessId, message, time: Instant) -> None:
        super().on_send(src, dst, message, time)
        if self._layer is not None and message_layer(message) != self._layer:
            return
        edge = (src, dst) if src <= dst else (dst, src)
        if self.current[edge] > self.bound:
            raise ChannelCapacityError(
                f"t={time}: {self.current[edge]} {self._layer or 'total'} messages in "
                f"transit on edge {edge}, bound is {self.bound} "
                f"(latest: {type(message).__name__} {src}->{dst})"
            )


class FifoChecker(NetworkMonitor):
    """Verifies per-directed-channel FIFO delivery.

    Tags each sent message with a per-channel sequence number and checks
    deliveries (and drops) consume sequence numbers in order.  Identity-
    based: messages must be distinct objects per send, which holds for all
    library message types except deliberately shared immutables — those
    are tracked by send order per (channel, object) occurrence count.
    """

    def __init__(self) -> None:
        self._pending: Dict[Tuple[ProcessId, ProcessId], list] = {}
        self._seq: Dict[Tuple[ProcessId, ProcessId], "itertools.count"] = {}

    def on_send(self, src: ProcessId, dst: ProcessId, message, time: Instant) -> None:
        channel = (src, dst)
        counter = self._seq.setdefault(channel, itertools.count())
        self._pending.setdefault(channel, []).append((next(counter), id(message)))

    def _consume(self, src: ProcessId, dst: ProcessId, message, time: Instant) -> None:
        channel = (src, dst)
        pending = self._pending.get(channel, [])
        if not pending:
            raise FifoViolationError(
                f"t={time}: delivery on {channel} with no pending send"
            )
        seq, front_id = pending[0]
        if front_id != id(message):
            # The delivered message is not the oldest in-flight one: find
            # which send it was, for a useful error, then fail.
            position = next(
                (idx for idx, (_, mid) in enumerate(pending) if mid == id(message)),
                None,
            )
            raise FifoViolationError(
                f"t={time}: channel {channel} delivered send "
                f"#{'?' if position is None else pending[position][0]} "
                f"({type(message).__name__}) ahead of send #{seq}"
            )
        pending.pop(0)

    def on_deliver(self, src: ProcessId, dst: ProcessId, message, time: Instant) -> None:
        self._consume(src, dst, message, time)

    def on_drop(self, src: ProcessId, dst: ProcessId, message, time: Instant) -> None:
        self._consume(src, dst, message, time)


class DinerLocalInvariantChecker:
    """Verifies the proof-level local invariants of Algorithm 1.

    These are the facts the paper's lemmas lean on, checked after every
    event on every live diner:

    * **eating ⇒ inside** — the phases are nested (Action 9 fires only
      inside; Action 10 leaves both together);
    * **ack ⇒ hungry ∧ outside** — Action 4's guard and Action 5's reset
      keep stale acks from surviving into the doorway;
    * **replied ⇒ hungry ∧ outside** — the one-ack-per-session throttle's
      bookkeeping, reset on entry (Action 5);
    * **Lemma 2.2** — at most one pending ping per ordered pair: the
      ``pinged`` flag is set exactly while a ping/deferred-ping/returning
      ack is outstanding, so a diner never has ``pinged`` false while its
      own ping is still in flight.

    The message-level half of Lemma 2.2 (never two pings in flight on one
    directed channel) is checked by :class:`PendingPingChecker` below,
    which sees the actual traffic.

    Attach with ``sim.add_step_listener(checker.check)``.
    """

    def __init__(self, diners: Dict[ProcessId, object]) -> None:
        self._diners = diners
        self.checks_performed = 0

    def check(self, now: Instant) -> None:
        self.checks_performed += 1
        for pid, diner in self._diners.items():
            if diner.crashed:
                continue
            if diner.is_eating and not diner.inside:
                raise InvariantViolation(
                    f"t={now}: diner {pid} is eating outside the doorway"
                )
            hungry_outside = diner.is_hungry and not diner.inside
            for neighbor, link in diner._links_in_order():
                if link.ack and not hungry_outside:
                    raise InvariantViolation(
                        f"t={now}: diner {pid} holds a doorway ack for {neighbor} "
                        f"while {diner.phase}/{'inside' if diner.inside else 'outside'}"
                    )
                if link.replied and not hungry_outside:
                    raise InvariantViolation(
                        f"t={now}: diner {pid} has replied[{neighbor}] set "
                        f"while {diner.phase}/{'inside' if diner.inside else 'outside'}"
                    )


class PendingPingChecker(NetworkMonitor):
    """Lemma 2.2 on the wire: per ordered pair, one outstanding ping-ack.

    A ping from *i* to *j* is *outstanding* from its send until *i*
    receives the matching ack (deferral at *j* keeps it outstanding).
    The lemma bounds outstanding pings per (initiator, responder) pair at
    one; a second concurrent ping is an algorithm bug.
    """

    def __init__(self) -> None:
        self._outstanding: Dict[Tuple[ProcessId, ProcessId], int] = {}

    def on_send(self, src: ProcessId, dst: ProcessId, message, time: Instant) -> None:
        name = type(message).__name__
        if name == "Ping":
            pair = (src, dst)
            count = self._outstanding.get(pair, 0) + 1
            if count > 1:
                raise InvariantViolation(
                    f"t={time}: second concurrent ping {src}->{dst} (Lemma 2.2)"
                )
            self._outstanding[pair] = count

    def on_deliver(self, src: ProcessId, dst: ProcessId, message, time: Instant) -> None:
        if type(message).__name__ == "Ack":
            # Ack from src back to dst's initiator: retire (dst, src).
            pair = (dst, src)
            if self._outstanding.get(pair, 0) > 0:
                self._outstanding[pair] -= 1

    def on_drop(self, src: ProcessId, dst: ProcessId, message, time: Instant) -> None:
        # A dropped ack (dead initiator) retires nothing observable; a
        # dropped ping stays "outstanding" forever on the initiator's
        # side, exactly as the quiescence argument describes.
        pass
