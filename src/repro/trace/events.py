"""Typed trace records.

Every observable fact the experiments reason about is captured as one of
the record types below, emitted into a
:class:`~repro.trace.recorder.TraceRecorder` as the simulation runs.  The
analysis layer (:mod:`repro.trace.analysis`) reconstructs hungry sessions,
eating intervals, exclusion violations, and overtake counts purely from
the trace — algorithms are never asked questions retroactively.

Phase names are plain strings (module constants below) so this layer stays
independent of any particular dining implementation; the core and baseline
algorithms all map their states onto the same three phases.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.timebase import Instant

ProcessId = int

THINKING = "thinking"
HUNGRY = "hungry"
EATING = "eating"

PHASES = (THINKING, HUNGRY, EATING)


@dataclass(frozen=True, slots=True)
class PhaseChange:
    """A diner moved between thinking / hungry / eating."""

    time: Instant
    pid: ProcessId
    old_phase: str
    new_phase: str


@dataclass(frozen=True, slots=True)
class DoorwayChange:
    """A diner entered (``inside=True``) or exited the asynchronous doorway."""

    time: Instant
    pid: ProcessId
    inside: bool


@dataclass(frozen=True, slots=True)
class SuspicionChange:
    """A detector module's output on one neighbor flipped."""

    time: Instant
    observer: ProcessId
    suspect: ProcessId
    suspected: bool


@dataclass(frozen=True, slots=True)
class Crash:
    """A process crashed."""

    time: Instant
    pid: ProcessId


@dataclass(frozen=True, slots=True)
class MembershipChange:
    """The conflict topology changed: one membership delta applied.

    ``epoch`` is the monotone epoch counter *after* the delta (epoch 0
    is the initial graph, so the first applied delta stamps epoch 1).
    ``edges`` carries a ``join``'s initial neighbor list; the edge verbs
    (``add_edge``/``remove_edge``) put the peer there instead.  Static
    runs never emit this record, so their trace bytes are unchanged.
    """

    time: Instant
    epoch: int
    verb: str
    pid: ProcessId
    edges: tuple = ()

    def __post_init__(self) -> None:
        # JSON round-trips lists; normalize so reloaded records compare
        # (and hash) equal to the originals.
        object.__setattr__(self, "edges", tuple(self.edges))


@dataclass(frozen=True, slots=True)
class ProtocolStep:
    """The hosted (self-stabilizing) protocol executed one action at ``pid``.

    ``action`` names the guarded command; ``detail`` is protocol-specific
    (for example the new register value).
    """

    time: Instant
    pid: ProcessId
    action: str
    detail: Optional[str] = None


@dataclass(frozen=True, slots=True)
class TransientFault:
    """A transient fault corrupted the hosted protocol's state at ``pid``."""

    time: Instant
    pid: ProcessId
    detail: str
