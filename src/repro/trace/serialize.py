"""Trace serialization: JSON-lines export and import.

Lets a recorded run be archived, diffed across versions, or analyzed in
external tooling.  Each record becomes one JSON object with a ``kind``
discriminator; round-tripping through :func:`dump_jsonl` /
:func:`load_jsonl` reproduces an equivalent
:class:`~repro.trace.recorder.TraceRecorder` (same records, same order).
"""

from __future__ import annotations

import dataclasses
import json
from typing import IO, Iterable, Type

from repro.errors import ConfigurationError
from repro.trace.events import (
    Crash,
    DoorwayChange,
    MembershipChange,
    PhaseChange,
    ProtocolStep,
    SuspicionChange,
    TransientFault,
)
from repro.trace.recorder import TraceRecorder

_RECORD_TYPES: dict = {
    "phase": PhaseChange,
    "doorway": DoorwayChange,
    "suspicion": SuspicionChange,
    "crash": Crash,
    "membership": MembershipChange,
    "protocol_step": ProtocolStep,
    "transient_fault": TransientFault,
}
_KIND_OF: dict = {cls: kind for kind, cls in _RECORD_TYPES.items()}


def record_to_dict(record: object) -> dict:
    """One trace record as a plain dict with its ``kind`` tag."""
    cls: Type = type(record)
    kind = _KIND_OF.get(cls)
    if kind is None:
        raise ConfigurationError(f"cannot serialize trace record of type {cls.__name__}")
    data = dataclasses.asdict(record)
    data["kind"] = kind
    return data


def record_from_dict(data: dict) -> object:
    """Inverse of :func:`record_to_dict`."""
    data = dict(data)
    kind = data.pop("kind", None)
    cls = _RECORD_TYPES.get(kind)
    if cls is None:
        raise ConfigurationError(f"unknown trace record kind {kind!r}")
    try:
        return cls(**data)
    except TypeError as exc:
        raise ConfigurationError(f"malformed {kind} record: {exc}") from None


def dump_jsonl(trace: TraceRecorder, stream: IO[str]) -> int:
    """Write every record as one JSON line; returns the record count."""
    count = 0
    for record in trace:
        stream.write(json.dumps(record_to_dict(record), sort_keys=True))
        stream.write("\n")
        count += 1
    return count


def load_jsonl(lines: Iterable[str]) -> TraceRecorder:
    """Rebuild a TraceRecorder from JSON lines (blank lines skipped)."""
    trace = TraceRecorder()
    for line_number, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            data = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"line {line_number}: invalid JSON ({exc})") from None
        trace.record(record_from_dict(data))
    return trace


def dump_path(trace: TraceRecorder, path: str) -> int:
    """Write the trace to ``path``; returns the record count."""
    with open(path, "w", encoding="utf-8") as stream:
        return dump_jsonl(trace, stream)


def load_path(path: str) -> TraceRecorder:
    """Read a trace previously written by :func:`dump_path`."""
    with open(path, "r", encoding="utf-8") as stream:
        return load_jsonl(stream)
