"""ASCII timeline rendering of dining traces.

Turns a recorded trace into a per-diner lane chart — the fastest way to
*see* a run: hungry stretches, meals, doorway occupancy, crashes, and
(optionally) the exclusion violations between neighbor lanes.

::

    t=0.0                                                        t=60.0
    0 |..hhhh#####.hh####..hhhhhhhhhhhh####..............................|
    1 |..hh####..hhhh#####.hh####..hh####..hh####..hh####..hh####..hh####|
    2 |..hhhh######x                                                     |
        legend: . thinking   h hungry   # eating   x crashed

Rendering is resolution-based sampling (one character per bucket), which
is honest about what it is: a visualization, not a measurement — analysis
queries stay in :mod:`repro.trace.analysis`.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional

from repro.errors import ConfigurationError
from repro.trace.analysis import crash_times, eating_intervals, hungry_sessions
from repro.trace.events import EATING, HUNGRY, THINKING
from repro.trace.recorder import TraceRecorder

ProcessId = int

GLYPHS = {THINKING: ".", HUNGRY: "h", EATING: "#"}
CRASH_GLYPH = "x"
LEGEND = "legend: . thinking   h hungry   # eating   x crashed (blank: not yet started / crashed)"


def _phase_at(samples: List[tuple], time: float) -> Optional[str]:
    """Phase of a process at ``time`` given its (time, phase) changes."""
    phase = None
    for change_time, new_phase in samples:
        if change_time > time:
            break
        phase = new_phase
    return phase


def render_timeline(
    trace: TraceRecorder,
    *,
    start: float = 0.0,
    end: float,
    width: int = 80,
    pids: Optional[Iterable[ProcessId]] = None,
) -> str:
    """Render one lane per process over ``[start, end]``.

    ``pids`` defaults to every process appearing in the trace.  The first
    bucket containing a crash shows ``x``; later buckets are blank.
    """
    if end <= start:
        raise ConfigurationError(f"timeline needs end > start, got [{start}, {end}]")
    if width < 10:
        raise ConfigurationError("timeline needs width >= 10")

    changes: Dict[ProcessId, List[tuple]] = {}
    for record in trace.phase_changes():
        changes.setdefault(record.pid, []).append((record.time, record.new_phase))
    crashes = crash_times(trace)

    chosen = sorted(pids) if pids is not None else sorted(set(changes) | set(crashes))
    if not chosen:
        return "(empty trace)"

    bucket = (end - start) / width
    label_width = max(len(str(pid)) for pid in chosen)
    lines = []
    header_left = f"t={start:g}"
    header_right = f"t={end:g}"
    pad = " " * (label_width + 2)
    gap = max(1, width - len(header_left) - len(header_right))
    lines.append(pad + header_left + " " * gap + header_right)

    for pid in chosen:
        samples = changes.get(pid, [])
        crash_time = crashes.get(pid, math.inf)
        row = []
        for i in range(width):
            t = start + (i + 0.5) * bucket
            if t >= crash_time:
                row.append(CRASH_GLYPH if t - crash_time <= bucket else " ")
                continue
            phase = _phase_at(samples, t)
            if phase is None:
                # Never changed phase: thinking since the start (or not
                # in this trace at all — blank keeps that distinct).
                row.append(GLYPHS[THINKING] if pid in changes or pid in crashes else " ")
            else:
                row.append(GLYPHS[phase])
        lines.append(f"{str(pid).rjust(label_width)} |{''.join(row)}|")

    lines.append(pad + LEGEND)
    return "\n".join(lines)


def render_meal_ledger(
    trace: TraceRecorder,
    pid: ProcessId,
    *,
    horizon: float,
    limit: int = 20,
) -> str:
    """Tabular per-meal detail for one diner: waits and meal lengths."""
    sessions = hungry_sessions(trace, pid, horizon=horizon)
    meals = eating_intervals(trace, pid, horizon=horizon)
    lines = [f"diner {pid}: {len(meals)} meals, {len(sessions)} hungry sessions"]
    lines.append(f"{'session':>8}  {'hungry at':>10}  {'waited':>8}  {'ate for':>8}")
    shown = 0
    for index, session in enumerate(sessions):
        if shown >= limit:
            lines.append(f"  … {len(sessions) - shown} more")
            break
        wait = f"{session.length:8.2f}" if session.served else "   (open)"
        meal = ""
        if session.served and index < len(meals):
            matching = [m for m in meals if m.start == session.end]
            if matching:
                meal = f"{matching[0].length:8.2f}"
        lines.append(f"{index:>8}  {session.start:>10.2f}  {wait}  {meal:>8}")
        shown += 1
    return "\n".join(lines)
