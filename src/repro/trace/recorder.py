"""Trace recorder: the append-only event log of a run.

One :class:`TraceRecorder` is shared by all actors of a simulation.  It
keeps records in arrival order (which, by kernel determinism, is a total
order consistent with virtual time) and offers typed accessors so analysis
code never isinstance-scans the raw list.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Type, TypeVar

from repro.sim.time import Instant
from repro.trace.events import (
    Crash,
    DoorwayChange,
    PhaseChange,
    ProtocolStep,
    SuspicionChange,
    TransientFault,
)

R = TypeVar("R")


class TraceRecorder:
    """Append-only, type-indexed event log."""

    def __init__(self) -> None:
        self._records: List[object] = []
        self._by_type: dict = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record(self, record: object) -> None:
        """Append one record (any of the types in :mod:`repro.trace.events`)."""
        self._records.append(record)
        self._by_type.setdefault(type(record), []).append(record)

    # Convenience emitters used by the actors --------------------------
    def phase_change(self, time: Instant, pid: int, old_phase: str, new_phase: str) -> None:
        self.record(PhaseChange(time, pid, old_phase, new_phase))

    def doorway_change(self, time: Instant, pid: int, inside: bool) -> None:
        self.record(DoorwayChange(time, pid, inside))

    def suspicion_change(self, time: Instant, observer: int, suspect: int, suspected: bool) -> None:
        self.record(SuspicionChange(time, observer, suspect, suspected))

    def crash(self, time: Instant, pid: int) -> None:
        self.record(Crash(time, pid))

    def protocol_step(self, time: Instant, pid: int, action: str, detail: Optional[str] = None) -> None:
        self.record(ProtocolStep(time, pid, action, detail))

    def transient_fault(self, time: Instant, pid: int, detail: str) -> None:
        self.record(TransientFault(time, pid, detail))

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[object]:
        return iter(self._records)

    def of_type(self, record_type: Type[R]) -> List[R]:
        """All records of exactly ``record_type``, in arrival order."""
        return list(self._by_type.get(record_type, ()))

    def phase_changes(self, pid: Optional[int] = None) -> List[PhaseChange]:
        records = self.of_type(PhaseChange)
        if pid is None:
            return records
        return [r for r in records if r.pid == pid]

    def doorway_changes(self, pid: Optional[int] = None) -> List[DoorwayChange]:
        records = self.of_type(DoorwayChange)
        if pid is None:
            return records
        return [r for r in records if r.pid == pid]

    def crashes(self) -> List[Crash]:
        return self.of_type(Crash)

    def protocol_steps(self, pid: Optional[int] = None) -> List[ProtocolStep]:
        records = self.of_type(ProtocolStep)
        if pid is None:
            return records
        return [r for r in records if r.pid == pid]
