"""Trace recorders: the append-only event log of a run.

One recorder is shared by all actors of a simulation.  Records arrive in
arrival order (which, by kernel determinism, is a total order consistent
with virtual time) and typed accessors keep analysis code from
isinstance-scanning the raw list.

Two storage strategies:

* :class:`TraceRecorder` — everything in memory, type-indexed; the
  default, fastest for analysis-heavy workloads.
* :class:`StreamingTraceRecorder` — bounded memory: every record is
  spilled to a JSONL file (via :mod:`repro.trace.serialize`) and only a
  small tail stays resident.  Accessors stream back from disk, so all
  analysis code works unchanged — slower per query, but a soak run's
  footprint no longer grows with its horizon.

Both support :meth:`~TraceRecorder.add_listener`, the hook online
consumers (metrics instrumentation, invariant dashboards) use to observe
every record as it is written without owning the recorder.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Callable, Iterator, List, Optional, Type, TypeVar

from repro.timebase import Instant
from repro.trace.events import (
    Crash,
    DoorwayChange,
    MembershipChange,
    PhaseChange,
    ProtocolStep,
    SuspicionChange,
    TransientFault,
)

R = TypeVar("R")


class TraceRecorder:
    """Append-only, type-indexed event log."""

    def __init__(self) -> None:
        self._records: List[object] = []
        self._by_type: dict = {}
        self._listeners: List[Callable[[object], None]] = []
        self._typed_listeners: dict = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record(self, record: object) -> None:
        """Append one record (any of the types in :mod:`repro.trace.events`)."""
        self._store(record)
        if self._listeners:
            for listener in self._listeners:
                listener(record)
        if self._typed_listeners:
            for listener in self._typed_listeners.get(type(record), ()):
                listener(record)

    def _store(self, record: object) -> None:
        self._records.append(record)
        by_type = self._by_type
        cls = type(record)
        bucket = by_type.get(cls)
        if bucket is None:
            bucket = by_type[cls] = []
        bucket.append(record)

    def add_listener(
        self,
        listener: Callable[[object], None],
        *,
        types: Optional[tuple] = None,
    ) -> None:
        """Invoke ``listener(record)`` on every subsequent record.

        With ``types``, the listener only receives records of exactly
        those classes — the record loop then skips it with a single dict
        lookup instead of calling into a dispatcher that discards the
        record, which is what keeps high-volume consumers (the metrics
        probes) cheap.
        """
        if types is None:
            self._listeners.append(listener)
        else:
            for record_type in types:
                self._typed_listeners.setdefault(record_type, []).append(listener)

    # Convenience emitters used by the actors --------------------------
    def phase_change(self, time: Instant, pid: int, old_phase: str, new_phase: str) -> None:
        self.record(PhaseChange(time, pid, old_phase, new_phase))

    def doorway_change(self, time: Instant, pid: int, inside: bool) -> None:
        self.record(DoorwayChange(time, pid, inside))

    def suspicion_change(self, time: Instant, observer: int, suspect: int, suspected: bool) -> None:
        self.record(SuspicionChange(time, observer, suspect, suspected))

    def crash(self, time: Instant, pid: int) -> None:
        self.record(Crash(time, pid))

    def membership_change(
        self, time: Instant, epoch: int, verb: str, pid: int, edges: tuple = ()
    ) -> None:
        self.record(MembershipChange(time, epoch, verb, pid, edges))

    def protocol_step(self, time: Instant, pid: int, action: str, detail: Optional[str] = None) -> None:
        self.record(ProtocolStep(time, pid, action, detail))

    def transient_fault(self, time: Instant, pid: int, detail: str) -> None:
        self.record(TransientFault(time, pid, detail))

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[object]:
        return iter(self._records)

    def of_type(self, record_type: Type[R]) -> List[R]:
        """All records of exactly ``record_type``, in arrival order."""
        return list(self._by_type.get(record_type, ()))

    def phase_changes(self, pid: Optional[int] = None) -> List[PhaseChange]:
        records = self.of_type(PhaseChange)
        if pid is None:
            return records
        return [r for r in records if r.pid == pid]

    def doorway_changes(self, pid: Optional[int] = None) -> List[DoorwayChange]:
        records = self.of_type(DoorwayChange)
        if pid is None:
            return records
        return [r for r in records if r.pid == pid]

    def crashes(self) -> List[Crash]:
        return self.of_type(Crash)

    def protocol_steps(self, pid: Optional[int] = None) -> List[ProtocolStep]:
        records = self.of_type(ProtocolStep)
        if pid is None:
            return records
        return [r for r in records if r.pid == pid]


class StreamingTraceRecorder(TraceRecorder):
    """Bounded-memory recorder that spills every record to JSONL.

    Parameters
    ----------
    path:
        Destination JSONL file (one record per line, same format as
        :func:`repro.trace.serialize.dump_path`, so the spill file is
        directly loadable with :func:`~repro.trace.serialize.load_path`).
    keep_last:
        How many recent records to keep resident for quick inspection
        (:meth:`tail`); the full history lives only on disk.
    flush_every:
        Records buffered between file writes.

    Accessors (``of_type``, iteration, the typed helpers) re-stream the
    file, so post-hoc analysis behaves exactly as with the in-memory
    recorder — the trade is bounded resident memory for re-parse cost,
    which is the right trade for long soak runs.
    """

    def __init__(self, path, *, keep_last: int = 1000, flush_every: int = 1000) -> None:
        super().__init__()
        # Late import: serialize imports this module at load time.
        from repro.trace import serialize as _serialize

        self._serialize = _serialize
        self._path = str(path)
        self._count = 0
        self._tail: deque = deque(maxlen=int(keep_last))
        self._buffer: List[str] = []
        self._flush_every = max(1, int(flush_every))
        self._stream = open(self._path, "w", encoding="utf-8")
        self._closed = False

    @property
    def path(self) -> str:
        return self._path

    # ------------------------------------------------------------------
    # Recording (bounded)
    # ------------------------------------------------------------------
    def _store(self, record: object) -> None:
        self._count += 1
        self._tail.append(record)
        self._buffer.append(json.dumps(self._serialize.record_to_dict(record), sort_keys=True))
        if len(self._buffer) >= self._flush_every:
            self._flush()

    def _flush(self) -> None:
        if self._buffer:
            self._stream.write("\n".join(self._buffer))
            self._stream.write("\n")
            self._buffer.clear()
        self._stream.flush()

    def close(self) -> None:
        """Flush and close the spill file; the recorder becomes read-only."""
        if not self._closed:
            self._flush()
            self._stream.close()
            self._closed = True

    # ------------------------------------------------------------------
    # Access (streamed back from disk)
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._count

    def __iter__(self) -> Iterator[object]:
        if not self._closed:
            self._flush()
        with open(self._path, "r", encoding="utf-8") as stream:
            for line in stream:
                line = line.strip()
                if line:
                    yield self._serialize.record_from_dict(json.loads(line))

    def of_type(self, record_type: Type[R]) -> List[R]:
        return [record for record in self if type(record) is record_type]

    def tail(self) -> List[object]:
        """The most recent ``keep_last`` records (resident, no disk read)."""
        return list(self._tail)

    def __del__(self) -> None:  # pragma: no cover - best-effort cleanup
        try:
            self.close()
        except Exception:
            pass
