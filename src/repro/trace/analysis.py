"""Trace analysis: the measurements behind every experiment.

The paper's claims are statements about runs — "there exists a time after
which no two live neighbors eat simultaneously", "no process overtakes a
hungry neighbor more than twice".  This module turns a recorded trace into
exactly those quantities:

* :func:`eating_intervals` / :func:`hungry_sessions` — per-process phase
  intervals reconstructed from :class:`~repro.trace.events.PhaseChange`
  records (truncated at crashes: a crashed process executes nothing);
* :func:`exclusion_violations` — overlapping eating intervals of live
  neighbors, with the overlap window (Theorem 1: finitely many, none after
  detector convergence);
* :func:`starving_processes` — correct diners whose final hungry session
  never ends (Theorem 2: always empty for Algorithm 1; non-empty for the
  crash-oblivious baseline once anything crashes);
* :func:`overtake_counts` / :func:`max_overtaking` — how many times a
  diner entered eating during one continuous hungry session of a neighbor
  (Theorem 3: at most 2 for sessions starting after convergence);
* :func:`response_times`, :func:`eat_counts`, :func:`throughput` —
  performance measures for the scalability experiment.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.graphs.conflict import ConflictGraph
from repro.timebase import Instant
from repro.trace.events import EATING, HUNGRY, Crash, PhaseChange, ProcessId
from repro.trace.recorder import TraceRecorder


@dataclass(frozen=True)
class Interval:
    """A half-open phase interval ``[start, end)`` of one process.

    ``end`` is ``math.inf`` when the phase persisted to the end of the
    trace.  ``served`` distinguishes a hungry session that ended in eating
    from one cut short by crash or end-of-run.
    """

    pid: ProcessId
    start: Instant
    end: Instant
    served: bool = True

    @property
    def length(self) -> float:
        return self.end - self.start

    def overlaps(self, other: "Interval") -> bool:
        return max(self.start, other.start) < min(self.end, other.end)


@dataclass(frozen=True)
class ExclusionViolation:
    """Two live neighbors ate simultaneously during ``[start, end)``."""

    a: ProcessId
    b: ProcessId
    start: Instant
    end: Instant


def crash_times(trace: TraceRecorder) -> Dict[ProcessId, Instant]:
    """Map of crashed pid -> crash instant, from the trace."""
    return {record.pid: record.time for record in trace.of_type(Crash)}


def _phase_intervals(
    trace: TraceRecorder,
    pid: ProcessId,
    phase: str,
    *,
    horizon: Instant = math.inf,
) -> List[Interval]:
    """Maximal intervals during which ``pid`` was in ``phase``.

    Intervals are truncated at the process's crash time (a crashed process
    is in no phase) and at ``horizon``.
    """
    crashes = crash_times(trace)
    cutoff = min(crashes.get(pid, math.inf), horizon)

    intervals: List[Interval] = []
    current_start: Optional[Instant] = None
    for change in trace.phase_changes(pid):
        if change.time > cutoff:
            break
        if change.new_phase == phase and current_start is None:
            current_start = change.time
        elif change.old_phase == phase and current_start is not None:
            served = phase == HUNGRY and change.new_phase == EATING
            intervals.append(Interval(pid, current_start, change.time, served=served))
            current_start = None
    if current_start is not None:
        intervals.append(Interval(pid, current_start, cutoff, served=False))
    return intervals


def eating_intervals(
    trace: TraceRecorder, pid: ProcessId, *, horizon: Instant = math.inf
) -> List[Interval]:
    """Maximal eating intervals of ``pid``."""
    return _phase_intervals(trace, pid, EATING, horizon=horizon)


def hungry_sessions(
    trace: TraceRecorder, pid: ProcessId, *, horizon: Instant = math.inf
) -> List[Interval]:
    """Hungry sessions of ``pid``: becoming hungry until entering eating.

    A session whose diner crashed or was still waiting at the horizon has
    ``served=False``.
    """
    return _phase_intervals(trace, pid, HUNGRY, horizon=horizon)


def eat_starts(trace: TraceRecorder, pid: ProcessId) -> List[Instant]:
    """Times at which ``pid`` transitioned into eating."""
    return [c.time for c in trace.phase_changes(pid) if c.new_phase == EATING]


def eat_counts(trace: TraceRecorder) -> Dict[ProcessId, int]:
    """Number of eating sessions begun, per process."""
    counts: Dict[ProcessId, int] = {}
    for change in trace.of_type(PhaseChange):
        if change.new_phase == EATING:
            counts[change.pid] = counts.get(change.pid, 0) + 1
    return counts


# ----------------------------------------------------------------------
# Safety (Theorem 1)
# ----------------------------------------------------------------------
def exclusion_violations(
    trace: TraceRecorder, graph: ConflictGraph, *, horizon: Instant = math.inf
) -> List[ExclusionViolation]:
    """All windows during which two live neighbors ate simultaneously.

    Eating intervals are already truncated at crash instants, so a process
    that crashed mid-meal stops counting as eating from its crash time —
    matching the theorem's "live neighbors".
    """
    by_pid = {pid: eating_intervals(trace, pid, horizon=horizon) for pid in graph.nodes}
    violations: List[ExclusionViolation] = []
    for a, b in sorted(graph.edges):
        for meal_a in by_pid[a]:
            for meal_b in by_pid[b]:
                start = max(meal_a.start, meal_b.start)
                end = min(meal_a.end, meal_b.end)
                if start < end:
                    violations.append(ExclusionViolation(a, b, start, end))
    violations.sort(key=lambda v: (v.start, v.a, v.b))
    return violations


def last_violation_end(
    trace: TraceRecorder, graph: ConflictGraph, *, horizon: Instant = math.inf
) -> Optional[Instant]:
    """End of the final exclusion violation, or None if the run was clean."""
    violations = exclusion_violations(trace, graph, horizon=horizon)
    return max((v.end for v in violations), default=None)


def violations_after(
    trace: TraceRecorder,
    graph: ConflictGraph,
    cutoff: Instant,
    *,
    horizon: Instant = math.inf,
) -> List[ExclusionViolation]:
    """Violations any part of which occurs at or after ``cutoff``.

    Theorem 1 predicts this list is empty for a late-enough ``cutoff``.
    Note the proof's exact shape: it guarantees that no meal *begun* after
    detector convergence conflicts with a correct neighbor — a meal begun
    just before convergence under a final mistake may still be in progress
    at (and overlap slightly past) the convergence instant.  A sound
    cutoff is therefore ``convergence_time + the maximum eating duration``
    (all pre-convergence meals have ended by then; from then on, every
    running meal was begun post-convergence and holds its forks).
    """
    return [
        v for v in exclusion_violations(trace, graph, horizon=horizon) if v.end > cutoff
    ]


# ----------------------------------------------------------------------
# Progress (Theorem 2)
# ----------------------------------------------------------------------
def starving_processes(
    trace: TraceRecorder,
    correct: Iterable[ProcessId],
    *,
    horizon: Instant,
    patience: float = 0.0,
) -> List[ProcessId]:
    """Correct processes still hungry and unserved at the horizon.

    ``patience`` excludes sessions that started within ``patience`` of the
    horizon — those diners are waiting, not starving.  Experiments choose
    a patience generously larger than the observed worst-case response
    time of the wait-free algorithm, so a baseline process flagged here is
    genuinely blocked (its doorway or fork will never arrive), not slow.
    """
    starving: List[ProcessId] = []
    for pid in sorted(set(correct)):
        sessions = hungry_sessions(trace, pid, horizon=horizon)
        if not sessions:
            continue
        last = sessions[-1]
        if not last.served and math.isfinite(horizon):
            if last.start <= horizon - patience:
                starving.append(pid)
        elif not last.served and not math.isfinite(horizon):
            starving.append(pid)
    return starving


# ----------------------------------------------------------------------
# Fairness (Theorem 3)
# ----------------------------------------------------------------------
def overtake_counts(
    trace: TraceRecorder,
    graph: ConflictGraph,
    *,
    after: Instant = 0.0,
    horizon: Instant = math.inf,
) -> Dict[Tuple[ProcessId, ProcessId], int]:
    """Worst per-session overtaking, per ordered neighbor pair.

    ``result[(i, j)]`` is the maximum, over hungry sessions of *j* that
    start at or after ``after``, of how many times *i* entered eating
    during that session.  Theorem 3: once ``after`` is past convergence
    (and past the last pre-convergence backlog), every value is ≤ 2 for
    Algorithm 1.
    """
    starts = {pid: eat_starts(trace, pid) for pid in graph.nodes}
    worst: Dict[Tuple[ProcessId, ProcessId], int] = {}
    for j in graph.nodes:
        for session in hungry_sessions(trace, j, horizon=horizon):
            if session.start < after:
                continue
            for i in graph.neighbors(j):
                count = sum(
                    1 for t in starts[i] if session.start <= t < session.end
                )
                key = (i, j)
                if count > worst.get(key, 0):
                    worst[key] = count
    return worst


def max_overtaking(
    trace: TraceRecorder,
    graph: ConflictGraph,
    *,
    after: Instant = 0.0,
    horizon: Instant = math.inf,
) -> int:
    """Largest per-session overtake count over all neighbor pairs."""
    counts = overtake_counts(trace, graph, after=after, horizon=horizon)
    return max(counts.values(), default=0)


# ----------------------------------------------------------------------
# Performance
# ----------------------------------------------------------------------
def response_times(
    trace: TraceRecorder, pid: ProcessId, *, horizon: Instant = math.inf
) -> List[float]:
    """Lengths of served hungry sessions of ``pid``."""
    return [
        s.length for s in hungry_sessions(trace, pid, horizon=horizon) if s.served
    ]


def all_response_times(
    trace: TraceRecorder, pids: Iterable[ProcessId], *, horizon: Instant = math.inf
) -> List[float]:
    """Served hungry-session lengths pooled over ``pids``."""
    pooled: List[float] = []
    for pid in pids:
        pooled.extend(response_times(trace, pid, horizon=horizon))
    return pooled


def throughput(trace: TraceRecorder, *, horizon: Instant) -> float:
    """Eating sessions begun per unit virtual time, across all processes."""
    if horizon <= 0:
        return 0.0
    total = sum(eat_counts(trace).values())
    return total / horizon


def jain_fairness_index(counts) -> float:
    """Jain's fairness index over per-process meal counts.

    ``(Σx)² / (n · Σx²)`` ∈ (0, 1]: 1.0 means perfectly equal service,
    1/n means one process got everything.  Complements the worst-case
    overtaking bound of Theorem 3 with an aggregate view — a wait-free,
    eventually fair schedule should keep this near 1 on symmetric
    topologies.
    """
    values = [float(v) for v in (counts.values() if hasattr(counts, "values") else counts)]
    if not values:
        return 1.0
    total = sum(values)
    if total == 0.0:
        return 1.0
    squares = sum(v * v for v in values)
    return (total * total) / (len(values) * squares)
