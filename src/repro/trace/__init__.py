"""Measurement substrate: trace records, recorder, analysis.

Online invariant checking moved to the substrate-agnostic
:mod:`repro.checks` subsystem; this package records and measures runs,
it no longer judges them.
"""

from repro.trace.analysis import (
    ExclusionViolation,
    jain_fairness_index,
    Interval,
    all_response_times,
    crash_times,
    eat_counts,
    eat_starts,
    eating_intervals,
    exclusion_violations,
    hungry_sessions,
    last_violation_end,
    max_overtaking,
    overtake_counts,
    response_times,
    starving_processes,
    throughput,
    violations_after,
)
from repro.trace.events import (
    EATING,
    HUNGRY,
    PHASES,
    THINKING,
    Crash,
    DoorwayChange,
    PhaseChange,
    ProtocolStep,
    SuspicionChange,
    TransientFault,
)
from repro.trace.recorder import StreamingTraceRecorder, TraceRecorder
from repro.trace.serialize import dump_jsonl, dump_path, load_jsonl, load_path
from repro.trace.timeline import render_meal_ledger, render_timeline

__all__ = [
    "Crash",
    "DoorwayChange",
    "EATING",
    "ExclusionViolation",
    "HUNGRY",
    "Interval",
    "PHASES",
    "PhaseChange",
    "ProtocolStep",
    "StreamingTraceRecorder",
    "SuspicionChange",
    "THINKING",
    "TraceRecorder",
    "TransientFault",
    "all_response_times",
    "crash_times",
    "dump_jsonl",
    "dump_path",
    "eat_counts",
    "eat_starts",
    "eating_intervals",
    "exclusion_violations",
    "hungry_sessions",
    "jain_fairness_index",
    "last_violation_end",
    "load_jsonl",
    "load_path",
    "max_overtaking",
    "overtake_counts",
    "render_meal_ledger",
    "render_timeline",
    "response_times",
    "starving_processes",
    "throughput",
    "violations_after",
]
