"""Command-line interface.

Subcommands::

    repro dine --topology ring --n 8 --crashes 2 --horizon 300 --timeline
    repro daemon --protocol coloring --topology grid --n 12 --crashes 2
    repro experiments --only e1 e3 e9 --seeds 0 1 2 3 --jobs 4
    repro report e1 --seeds 1 2 3 --json report.json
    repro verify --topology ring --n 3
    repro check trace.jsonl wire.jsonl --topology ring --n 3
    repro trace cluster-run/spans.jsonl --pid 2
    repro fuzz --budget 60s --runs 50 --shrink
    repro fuzz --mutants --budget 60s
    repro bakeoff --duration 5 --topology ring --n 5
    repro cluster --topology ring --n 3 --processes 3 --duration 2
    repro serve --spec run/spec.json --host-index 0
    repro loadgen --n 8 --processes 3 --sessions 10000
    repro loadgen --spec run/spec.json --sessions 5000

(or ``python -m repro …``).  ``dine`` runs one dining scenario and prints
the guarantee scorecard (plus an ASCII timeline on request, and a wait
diagnosis for any starving diner); ``daemon`` hosts a self-stabilizing
protocol; ``experiments`` runs registered scenarios from
:mod:`repro.scenarios` — ``--list`` enumerates them, ``--seeds``
replicates across seeds (printing the aggregated table), ``--jobs`` fans
seeds out over worker processes, ``--no-cache`` bypasses the
``.repro_cache/`` result cache, and ``--cache-stats`` prints its
hit/miss/byte tallies; ``report`` runs (or replays from cache) a
scenario with metrics collection on and prints the run report —
quiescence curve, last-violation time, channel-bound peak, kernel
hotspots.  ``dine``, ``daemon``, ``experiments``, and ``report`` accept
``--metrics PATH`` to dump the raw metrics snapshot (JSON, or Prometheus
text exposition when the path ends in ``.prom``).

``cluster`` runs Algorithm 1 *live*: one OS process per host, real
sockets, a wall-clock heartbeat ◇P₁, then the merged safety/fairness
verdict and a Prometheus rendering of the combined metrics (exit 0 only
on a clean run).  ``serve`` is its per-host child entry point, also
usable standalone against a hand-written spec.  With ``--serve-locks``
every host additionally exposes the lease service of
:mod:`repro.locks`: named resources mapped onto conflict-graph diners,
granted to clients by the unchanged Algorithm 1.

``loadgen`` drives tens of thousands of short-lived lease sessions
against a ``--serve-locks`` cluster — either one already running
(``--spec``) or one it launches itself — and reports grant/deny/expiry
counters, client-observed latency quantiles, and whether every grant
carried the serving diner's eating-span trace context (exit 0 only on a
full PASS: all sessions completed, zero errors, zero leaked leases, and
a clean merged cluster verdict in self-launch mode).

``check`` replays recorded artifacts — trace JSONL files (``dine
--trace``, per-host ``trace.jsonl``) and/or wire logs (``wire.jsonl``)
— through the full :mod:`repro.checks` suite offline and prints the
same verdict scorecard every other front end uses (exit 0 only when
every judged property passes).

``trace`` renders recorded request spans (``dine --spans``, per-host
``spans.jsonl``, a cluster's stitched ``spans.jsonl``, or trace/wire
logs rebuilt offline) as per-request timelines plus the critical path of
the slowest — or a named — request.

``fuzz`` runs adversarial campaigns from :mod:`repro.faults`: sampled
latency/crash/flap/burst schedules against the pristine algorithm
(exit 1 on any violation), or — with ``--mutants`` — one kill-campaign
per seeded bug, exiting 1 if any selected mutant survives.  ``--shrink``
delta-debugs every failure to a minimal witness directory replayable by
``repro check`` and ``repro fuzz --plan``.

``bakeoff`` races the whole classical-DME zoo — Algorithm 1 under ◇P₁
and P, Choy–Singh, fork-priority, edge reversal, Lamport's bakery,
Ricart–Agrawala, and Lehmann–Rabin — through identical fault plans and
the one verdict pipeline on both substrates, printing the comparative
table (throughput, message count and Section 7 bits, fairness, verdict
map) and exiting 0 iff every cell matches its recorded expected
property-status map (where a FAIL can be the *correct* answer: the
classics are supposed to starve on a crash).  See ``docs/BASELINES.md``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro.core import (
    AlwaysHungry,
    DiningTable,
    DistributedDaemon,
    heartbeat_detector,
    null_detector,
    perfect_detector,
    query_detector,
    scripted_detector,
)
from repro.graphs import topologies
from repro.sim.crash import CrashPlan
from repro.sim.latency import PartialSynchronyLatency
from repro.sim.rng import RandomStreams
from repro.stabilization import (
    BfsSpanningTree,
    DijkstraTokenRing,
    GreedyRecoloring,
    MaximalIndependentSet,
    MaximalMatching,
)
from repro.trace.timeline import render_timeline

TOPOLOGIES = (
    "ring", "path", "star", "clique", "grid", "tree", "random",
    "geometric", "scale_free",
)
DETECTORS = ("scripted", "perfect", "null", "heartbeat", "query")
PROTOCOLS = ("coloring", "token-ring", "matching", "mis", "bfs-tree")


def _build_detector(name: str, convergence: float):
    if name == "scripted":
        return scripted_detector(convergence_time=convergence, random_mistakes=convergence > 0)
    if name == "perfect":
        return perfect_detector()
    if name == "null":
        return null_detector()
    if name == "heartbeat":
        return heartbeat_detector()
    if name == "query":
        return query_detector()
    raise ValueError(name)


def _crash_plan(graph, crashes: int, horizon: float, seed: int) -> CrashPlan:
    if crashes <= 0:
        return CrashPlan.none()
    return CrashPlan.random(
        graph.nodes, crashes, (horizon * 0.05, horizon * 0.3), RandomStreams(seed + 1)
    )


def _metrics_registry(args: argparse.Namespace):
    """A fresh registry when ``--metrics`` was given, else None."""
    if not getattr(args, "metrics", None):
        return None
    from repro.obs import MetricsRegistry

    return MetricsRegistry()


def _write_metrics(snapshot: dict, path: str) -> None:
    """Dump a metrics snapshot: Prometheus text for ``*.prom``, else JSON."""
    if path.endswith(".prom"):
        from repro.obs import render_prometheus

        payload = render_prometheus(snapshot)
    else:
        payload = json.dumps(snapshot, indent=2, sort_keys=True) + "\n"
    with open(path, "w", encoding="utf-8") as stream:
        stream.write(payload)
    print(f"  metrics written:       {path}")


# ----------------------------------------------------------------------
# dine
# ----------------------------------------------------------------------
def cmd_dine(args: argparse.Namespace) -> int:
    graph = topologies.by_name(args.topology, args.n, seed=args.seed)
    crash_plan = _crash_plan(graph, args.crashes, args.horizon, args.seed)
    latency = None
    real_detector = args.detector in ("heartbeat", "query")
    if real_detector:
        # For message-passing detectors, --convergence is the GST; the
        # pre-GST jitter is hostile but bounded so the adaptive timeouts
        # settle within the run (same regime as experiment E8).
        latency = PartialSynchronyLatency(
            gst=args.convergence or 50.0, min_delay=0.1, pre_gst_max=8.0, post_gst_max=1.0
        )
    registry = _metrics_registry(args)
    table = DiningTable(
        graph,
        seed=args.seed,
        detector=_build_detector(args.detector, args.convergence),
        crash_plan=crash_plan,
        latency=latency,
        workload=AlwaysHungry(eat_time=args.eat_time, think_time=0.01),
        metrics=registry,
    )
    tracer = None
    if args.spans:
        from repro.obs.tracing import attach_tracer

        tracer = attach_tracer(table)
    table.run(until=args.horizon)
    spans = tracer.finish() if tracer is not None else []

    meals = table.eat_counts()
    print(f"dining on {args.topology}-{args.n}, seed {args.seed}, "
          f"detector {args.detector}, {args.crashes} crashes, horizon {args.horizon:g}")
    print(f"  total meals:           {sum(meals.values())}")
    print(f"  crashed:               {list(crash_plan.faulty) or 'none'}")
    starving = table.starving_correct(patience=args.horizon * 0.4)
    print(f"  starving correct:      {starving or 'none'}")
    violations = table.violations()
    settle = max(args.convergence, crash_plan.last_crash_time + 1.0) + args.eat_time
    if real_detector:
        # A real detector announces no convergence instant: allow half the
        # post-GST window for the adaptive timeouts to absorb mistakes.
        settle = args.convergence + (args.horizon - args.convergence) * 0.5
    late = table.violations_after(settle)
    print(f"  exclusion violations:  {len(violations)} total, {len(late)} after t={settle:g}")
    print(f"  max overtaking (late): {table.max_overtaking(after=settle)}")
    print(f"  peak msgs per edge:    {table.occupancy.max_occupancy} (bound 4)")
    if registry is not None:
        _write_metrics(registry.snapshot(), args.metrics)
    if args.trace:
        from repro.trace.serialize import dump_path

        records = dump_path(table.trace, args.trace)
        print(f"  trace written:         {args.trace} ({records} records; "
              f"replay with `repro check`)")
    if args.spans:
        from repro.obs.tracing import dump_spans

        written = dump_spans(args.spans, spans)
        print(f"  spans written:         {args.spans} ({written} spans; "
              f"render with `repro trace`)")

    from repro.obs import render_verdict_text

    verdict = table.verdict(settle=settle, patience=args.horizon * 0.4)
    if spans:
        from repro.checks import annotate_violations

        verdict = annotate_violations(verdict, spans)
    print()
    for line in render_verdict_text(verdict).splitlines():
        print(f"  {line}")

    if starving:
        from repro.core.diagnostics import explain_verdict

        print()
        print(explain_verdict(table, verdict, spans=spans))

    if args.timeline:
        print()
        print(render_timeline(table.trace, end=min(args.horizon, args.timeline_span), width=args.width))
    return 0 if not starving and not late else 1


# ----------------------------------------------------------------------
# daemon
# ----------------------------------------------------------------------
def _build_protocol(name: str, graph):
    if name == "coloring":
        return GreedyRecoloring(graph)
    if name == "matching":
        return MaximalMatching(graph)
    if name == "mis":
        return MaximalIndependentSet(graph, initial={pid: True for pid in graph.nodes})
    if name == "bfs-tree":
        return BfsSpanningTree(graph, root=min(graph.nodes),
                               initial={pid: (1, None) for pid in graph.nodes})
    raise ValueError(name)


def cmd_daemon(args: argparse.Namespace) -> int:
    if args.protocol == "token-ring":
        protocol = DijkstraTokenRing(args.n, initial=[(3 * i) % (args.n + 1) for i in range(args.n)])
        graph = protocol.graph
        if args.crashes:
            print("note: the token ring is a crash-free client; ignoring --crashes", file=sys.stderr)
            args.crashes = 0
    else:
        graph = topologies.by_name(args.topology, args.n, seed=args.seed)
        protocol = _build_protocol(args.protocol, graph)

    crash_plan = _crash_plan(graph, args.crashes, args.horizon, args.seed)
    registry = _metrics_registry(args)
    daemon = DistributedDaemon(
        graph,
        protocol,
        seed=args.seed,
        detector=_build_detector(args.detector, args.convergence),
        crash_plan=crash_plan,
        metrics=registry,
    )
    daemon.run(until=args.horizon)

    print(f"daemon hosting {args.protocol} on {args.topology}-{len(graph)}, "
          f"{args.crashes} crashes, horizon {args.horizon:g}")
    print(f"  protocol steps:      {daemon.steps_executed}")
    print(f"  sharing violations:  {daemon.sharing_violations}")
    converged = daemon.converged()
    when = daemon.convergence_time()
    print(f"  converged:           {converged}" + (f" (since t≈{when:.1f})" if converged else ""))
    if registry is not None:
        _write_metrics(registry.snapshot(), args.metrics)
    return 0 if converged else 1


# ----------------------------------------------------------------------
# experiments
# ----------------------------------------------------------------------
def _scenario_sort_key(scenario) -> tuple:
    """Display order: by experiment number, primaries before companions."""
    experiment = scenario.experiment
    try:
        number = int(experiment.lstrip("e"))
    except ValueError:
        number = 10**6
    return (number, scenario.name)


def cmd_experiments(args: argparse.Namespace) -> int:
    from repro.experiments.common import print_experiment
    from repro.scenarios import Runner, all_scenarios

    scenarios = sorted(all_scenarios(), key=_scenario_sort_key)
    wanted = {name.lower() for name in (args.only or [])}
    known = {s.name for s in scenarios} | {s.experiment for s in scenarios}
    unknown = sorted(wanted - known)
    if unknown:
        print(
            f"unknown experiment(s): {', '.join(unknown)}; "
            f"known: {', '.join(sorted(known))}",
            file=sys.stderr,
        )
        return 2
    selected = [
        s for s in scenarios if not wanted or s.name in wanted or s.experiment in wanted
    ]
    if args.seeds is not None and not args.seeds:
        print("--seeds needs at least one seed", file=sys.stderr)
        return 2

    if args.list_scenarios:
        for scenario in selected:
            print(f"{scenario.name:<5} {scenario.title}")
            print(f"      {scenario.spec.describe()}")
        return 0

    runner = Runner(
        jobs=args.jobs, use_cache=not args.no_cache, collect_metrics=bool(args.metrics)
    )
    snapshots = []
    for scenario in selected:
        result = runner.run(scenario.name, seeds=args.seeds)
        if len(result.seeds) > 1:
            aggregated = result.aggregate()
            columns = result.aggregate_table_columns(aggregated)
            title = f"{scenario.title} (aggregated over {len(result.seeds)} seeds)"
            print_experiment(title, scenario.claim, aggregated, columns)
        else:
            print_experiment(scenario.title, scenario.claim, result.rows, scenario.columns)
        if args.metrics:
            merged = result.merged_metrics()
            if merged is not None:
                snapshots.append(merged)
    if args.metrics:
        from repro.obs import merge_snapshots

        if snapshots:
            _write_metrics(merge_snapshots(snapshots), args.metrics)
        else:
            print("no metrics collected (nothing ran?)", file=sys.stderr)
    if args.cache_stats:
        print(runner.cache_stats.describe())
    return 0


# ----------------------------------------------------------------------
# report
# ----------------------------------------------------------------------
def cmd_report(args: argparse.Namespace) -> int:
    from repro.obs import build_report, render_report_text
    from repro.scenarios import Runner, scenario_names

    known = scenario_names()
    if args.scenario not in known:
        print(
            f"unknown scenario {args.scenario!r}; known: {', '.join(sorted(known))}",
            file=sys.stderr,
        )
        return 2

    runner = Runner(
        jobs=args.jobs,
        use_cache=not args.no_cache,
        collect_metrics=True,
        collect_checks=True,
    )
    result = runner.run(args.scenario, seeds=args.seeds)
    report = build_report(result, top=args.top, bound=args.bound)
    print(render_report_text(report))
    if args.cache_stats:
        print()
        print(runner.cache_stats.describe())

    if args.json:
        with open(args.json, "w", encoding="utf-8") as stream:
            json.dump(report, stream, indent=2, sort_keys=True)
            stream.write("\n")
        print(f"\nreport written: {args.json}")
    if args.prom:
        from repro.obs import render_prometheus

        merged = result.merged_metrics()
        if merged is not None:
            with open(args.prom, "w", encoding="utf-8") as stream:
                stream.write(render_prometheus(merged))
            print(f"metrics written: {args.prom}")

    checks = report.get("checks")
    checks_ok = checks is None or bool(checks.get("ok", True))
    return 0 if report["summary"].get("channel_bound_ok", True) and checks_ok else 1


# ----------------------------------------------------------------------
# verify
# ----------------------------------------------------------------------
def cmd_verify(args: argparse.Namespace) -> int:
    from repro.verify import explore_dining

    graph = topologies.by_name(args.topology, args.n, seed=args.seed if hasattr(args, "seed") else 0)
    report = explore_dining(
        graph,
        max_sessions=args.sessions,
        crashable=tuple(args.crashable),
        max_states=args.max_states,
    )
    crash_note = f", crashable={args.crashable}" if args.crashable else ""
    print(f"exhaustive exploration of {args.topology}-{args.n} "
          f"({args.sessions} session(s) per diner{crash_note}):")
    print(f"  reachable states:   {report.states_visited}")
    print(f"  events replayed:    {report.events_fired}")
    print(f"  terminal states:    {report.terminal_states}")
    print(f"  max depth:          {report.max_depth}")
    if report.truncated:
        print("  TRUNCATED: state budget exhausted — no verdict")
        return 2
    if report.violations:
        violation = report.violations[0]
        print(f"  VIOLATION: {violation.kind} — {violation.detail}")
        for step in violation.path:
            print(f"    {step}")
        return 1
    print("  verdict:            CLEAN (exclusion, uniqueness, no deadlock "
          "in every reachable state)")
    from repro.obs import render_verdict_text

    for line in render_verdict_text(report.verdict()).splitlines():
        print(f"  {line}")
    return 0


# ----------------------------------------------------------------------
# check (offline replay of recorded artifacts)
# ----------------------------------------------------------------------
def cmd_check(args: argparse.Namespace) -> int:
    from repro.checks import CheckConfig, load_events_path, merge_events, replay
    from repro.obs import render_verdict_text

    if args.spec:
        from repro.net.cluster import ClusterSpec, check_config_for

        spec = ClusterSpec.load(args.spec)
        edges = sorted(spec.graph().edges)
        config = check_config_for(spec)
        horizon = args.horizon if args.horizon is not None else spec.duration
    else:
        graph = topologies.by_name(args.topology, args.n, seed=args.seed)
        edges = sorted(graph.edges)
        config = CheckConfig(
            channel_bound=args.bound,
            settle=args.settle,
            patience=args.patience,
            overtaking_after=args.after,
            quiescence_grace=args.grace,
        )
        horizon = args.horizon

    events = merge_events(*(load_events_path(path) for path in args.artifacts))
    verdict = replay(edges, events, config, horizon=horizon)
    print(f"replayed {len(events)} event(s) from {len(args.artifacts)} artifact(s)")
    print(render_verdict_text(verdict))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as stream:
            json.dump(verdict.to_json(), stream, indent=2, sort_keys=True)
            stream.write("\n")
        print(f"verdict written: {args.json}")
    return 0 if verdict.ok else 1


# ----------------------------------------------------------------------
# trace (request timelines and critical paths)
# ----------------------------------------------------------------------
def _is_span_artifact(path: str) -> bool:
    """True when the file's first record is a serialized span."""
    with open(path, "r", encoding="utf-8") as stream:
        for line in stream:
            line = line.strip()
            if not line:
                continue
            try:
                return json.loads(line).get("kind") == "span"
            except json.JSONDecodeError:
                return False
    return False


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.checks import load_events_path, merge_events
    from repro.obs.tracing import (
        completed_meals,
        load_spans,
        render_critical_path,
        render_timeline,
        request_spans,
        slowest_request,
        spans_from_events,
        stitch_spans,
    )

    span_lists = []
    event_paths = []
    for path in args.artifacts:
        if _is_span_artifact(path):
            span_lists.append(load_spans(path))
        else:
            event_paths.append(path)
    if event_paths:
        events = merge_events(*(load_events_path(path) for path in event_paths))
        span_lists.append(spans_from_events(events, horizon=args.horizon))
    spans = stitch_spans(*span_lists)
    if not spans:
        print("no spans found (trace the run first: dine --spans, cluster, "
              "or a tracing host)", file=sys.stderr)
        return 2

    requests = request_spans(spans)
    print(f"{len(spans)} span(s) from {len(args.artifacts)} artifact(s): "
          f"{len(requests)} request(s), {completed_meals(spans)} meal(s)")
    print()
    for line in render_timeline(spans, pid=args.pid, limit=args.limit):
        print(line)

    if args.trace_id:
        target: Optional[int] = int(args.trace_id, 0)
    else:
        target = slowest_request(spans, pid=args.pid)
    if target is not None:
        print()
        for line in render_critical_path(spans, target):
            print(line)
    return 0


# ----------------------------------------------------------------------
# fuzz (adversarial campaigns / mutation testing)
# ----------------------------------------------------------------------
def _parse_budget(text: Optional[str]) -> Optional[float]:
    """Parse ``60s`` / ``2m`` / ``1h`` / ``90`` into wall-clock seconds."""
    if text is None:
        return None
    units = {"s": 1.0, "m": 60.0, "h": 3600.0}
    scale = units.get(text[-1:].lower())
    number = text[:-1] if scale else text
    try:
        return float(number) * (scale or 1.0)
    except ValueError:
        raise SystemExit(f"bad --budget {text!r}; expected e.g. 60s, 2m, 90") from None


def cmd_fuzz(args: argparse.Namespace) -> int:
    import os

    from repro.faults import (
        CampaignSpec,
        FaultPlan,
        all_mutants,
        run_campaign,
        run_mutation_harness,
        run_plan,
        shrink_plan,
        write_witness,
    )

    if args.list_mutants:
        for mutant in all_mutants():
            crash = "  [needs crash]" if mutant.needs_crash else ""
            print(f"{mutant.name:<26} expects {', '.join(mutant.expected)}{crash}")
            print(f"    {mutant.description}")
        return 0

    def emit_witness(result, shrink_result, directory):
        path = write_witness(shrink_result.result, directory, shrink=shrink_result)
        print(f"  witness: {path} ({', '.join(shrink_result.result.failed)})")

    # --plan: replay one serialized plan bit-for-bit.
    if args.plan:
        plan = FaultPlan.load(args.plan)
        print(f"plan: {plan.describe()}")
        result = run_plan(plan, substrate=args.substrate)
        print(result.verdict.describe())
        if result.failed and args.shrink:
            shrunk = shrink_plan(plan, baseline=result)
            print(shrunk.describe())
            emit_witness(result, shrunk, args.out)
        return 0 if result.ok else 1

    base = CampaignSpec(
        topology=args.topology,
        n=args.n,
        seed=args.seed,
        runs=args.runs,
        budget_seconds=_parse_budget(args.budget),
        substrate=args.substrate,
        archetypes=tuple(args.archetypes) if args.archetypes else None,
    )

    # --mutants: one kill-campaign per seeded bug; exit 1 on survivors.
    if args.mutants is not None:
        report = run_mutation_harness(args.mutants or None, base=base)
        print(report.describe())
        if args.shrink:
            for outcome in report.outcomes:
                if outcome.killed and outcome.killing_result is not None:
                    shrunk = shrink_plan(
                        outcome.killing_result.plan,
                        baseline=outcome.killing_result,
                    )
                    outcome.shrink = shrunk
                    emit_witness(
                        outcome.killing_result,
                        shrunk,
                        os.path.join(args.out, outcome.name),
                    )
        if args.json:
            with open(args.json, "w", encoding="utf-8") as stream:
                json.dump(report.to_json(), stream, indent=2, sort_keys=True)
                stream.write("\n")
            print(f"report written: {args.json}")
        return 0 if not report.survivors else 1

    # Plain campaign against the pristine algorithm: exit 1 on violations.
    campaign = run_campaign(base)
    print(campaign.describe())
    failure = campaign.first_failure
    if failure is not None and args.shrink:
        shrunk = shrink_plan(failure.plan, baseline=failure)
        print(shrunk.describe())
        emit_witness(failure, shrunk, args.out)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as stream:
            json.dump(campaign.to_json(), stream, indent=2, sort_keys=True)
            stream.write("\n")
        print(f"campaign written: {args.json}")
    return 0 if campaign.ok else 1


def cmd_bakeoff(args: argparse.Namespace) -> int:
    from repro.baselines.bakeoff import SUBSTRATES, TOPOLOGIES as GRID, ZOO, run_bakeoff

    if args.list:
        for key, spec in ZOO.items():
            print(f"{key:<16} {spec.title}")
            print(f"    {spec.guarantees}")
        return 0
    topologies_list = GRID if args.topology == "all" else (args.topology,)
    substrates = SUBSTRATES if args.substrate == "both" else (args.substrate,)
    report = run_bakeoff(
        topologies_list=topologies_list,
        n=args.n,
        duration=args.duration,
        seed=args.seed,
        substrates=substrates,
        algorithms=args.algorithms,
    )
    print(report.render_table())
    if args.json:
        with open(args.json, "w", encoding="utf-8") as stream:
            json.dump(report.to_json(), stream, indent=2, sort_keys=True)
            stream.write("\n")
        print(f"report written: {args.json}")
    failing = report.failing()
    print(
        f"bakeoff: {len(report.cells)} cells, "
        f"{len(report.cells) - len(failing)} matched their expected maps"
        + (f", {len(failing)} MISMATCHED" if failing else "")
    )
    return 0 if report.ok else 1


# ----------------------------------------------------------------------
# cluster / serve (live runtime)
# ----------------------------------------------------------------------
def _parse_crash_spec(text: Optional[str]) -> dict:
    """Parse ``pid:time,pid:time`` into {pid: crash_instant}."""
    crashes: dict = {}
    if not text:
        return crashes
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        pid_text, _, time_text = part.partition(":")
        try:
            crashes[int(pid_text)] = float(time_text)
        except ValueError:
            raise SystemExit(f"bad --crash entry {part!r}; expected pid:time") from None
    return crashes


def cmd_cluster(args: argparse.Namespace) -> int:
    from repro.net.cluster import ClusterSpec, launch, placement_summary

    spec = ClusterSpec(
        topology=args.topology,
        n=args.n,
        processes=args.processes,
        duration=args.duration,
        seed=args.seed,
        eat_time=args.eat_time,
        think_time=args.think_time,
        heartbeat_interval=args.heartbeat_interval,
        initial_timeout=args.initial_timeout,
        timeout_increment=args.timeout_increment,
        transport=args.transport,
        crash_times=_parse_crash_spec(args.crash),
        run_dir=args.run_dir,
        tracing=not args.no_tracing,
        scrape_base=args.scrape_base,
        flight=args.flight,
        serve_locks=args.serve_locks,
    )
    print(
        f"live cluster: {args.topology}-{args.n} over {args.processes} "
        f"process(es) via {args.transport}, {args.duration:g}s"
    )
    print(f"  placement: {placement_summary(spec)}")
    if spec.scrape_base is not None:
        ports = ", ".join(
            str(spec.scrape_base + index) for index in range(spec.processes)
        )
        print(f"  /metrics:  127.0.0.1 port(s) {ports}")
    verdict = launch(spec)
    if args.metrics:
        _write_metrics(verdict.metrics, args.metrics)
    return 0 if verdict.ok else 1


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.net.cluster import serve

    return serve(args.spec, args.host_index, output_dir=args.output)


# ----------------------------------------------------------------------
# loadgen (lease sessions against a --serve-locks cluster)
# ----------------------------------------------------------------------
def cmd_loadgen(args: argparse.Namespace) -> int:
    import asyncio
    import time

    from repro.locks.loadgen import LoadgenOptions, run_loadgen
    from repro.net.cluster import (
        ClusterSpec,
        merge_run,
        placement_summary,
        start_cluster,
        wait_cluster,
    )

    options = LoadgenOptions(
        sessions=args.sessions,
        concurrency=args.concurrency,
        connections_per_host=args.connections,
        ttl_ms=args.ttl_ms,
        hold_fraction=args.hold_fraction,
        abandon_fraction=args.abandon_fraction,
        acquire_timeout=args.acquire_timeout,
        seed=args.seed,
    )

    def emit(report) -> None:
        print(report.describe())
        if args.json:
            with open(args.json, "w", encoding="utf-8") as stream:
                json.dump(report.to_dict(), stream, indent=2, sort_keys=True)
                stream.write("\n")
            print(f"report written: {args.json}")

    # Against an already-running cluster: burst, report, done.
    if args.spec:
        spec = ClusterSpec.load(args.spec)
        if not spec.serve_locks:
            print("spec was not launched with --serve-locks", file=sys.stderr)
            return 2
        report = asyncio.run(run_loadgen(spec, options))
        emit(report)
        return 0 if report.ok else 1

    # Self-contained: launch a --serve-locks cluster here, burst against
    # it while it runs, then wait it out and fold in the merged verdict.
    spec = ClusterSpec(
        topology=args.topology,
        n=args.n,
        processes=args.processes,
        duration=args.duration,
        seed=args.seed,
        transport=args.transport,
        run_dir=args.run_dir,
        tracing=not args.no_tracing,
        scrape_base=args.scrape_base,
        serve_locks=True,
    )
    print(
        f"lease service: {args.topology}-{args.n} over {args.processes} "
        f"process(es) via {args.transport}, {args.duration:g}s; "
        f"{options.sessions} sessions x{options.concurrency}"
    )
    handle = start_cluster(spec)
    print(f"  placement: {placement_summary(spec)}")
    time.sleep(max(0.0, spec.epoch - time.time()) + 0.2)
    report = asyncio.run(run_loadgen(spec, options))
    emit(report)

    failures = wait_cluster(handle)
    verdict = merge_run(spec)
    if failures:
        verdict.checker_violations.extend(failures)
        verdict.ok = False
    print()
    print(verdict.describe())
    leaked = int((verdict.locks or {}).get("leaked_leases", 0))
    return 0 if report.ok and verdict.ok and leaked == 0 else 1


# ----------------------------------------------------------------------
# parser
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    from repro import __version__

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Eventually k-bounded wait-free distributed daemons (Song & Pike, DSN 2007).",
    )
    parser.add_argument("--version", action="version", version=f"%(prog)s {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    dine = sub.add_parser("dine", help="run one dining scenario and check the guarantees")
    dine.add_argument("--topology", choices=TOPOLOGIES, default="ring")
    dine.add_argument("--n", type=int, default=8)
    dine.add_argument("--seed", type=int, default=1)
    dine.add_argument("--crashes", type=int, default=1)
    dine.add_argument("--detector", choices=DETECTORS, default="scripted")
    dine.add_argument("--convergence", type=float, default=30.0,
                      help="detector convergence time (scripted) / GST (heartbeat)")
    dine.add_argument("--horizon", type=float, default=300.0)
    dine.add_argument("--eat-time", type=float, default=1.0)
    dine.add_argument("--timeline", action="store_true", help="print an ASCII timeline")
    dine.add_argument("--timeline-span", type=float, default=120.0)
    dine.add_argument("--width", type=int, default=100)
    dine.add_argument("--metrics", metavar="PATH",
                      help="write the run's metrics snapshot (JSON, or Prometheus "
                           "text if PATH ends in .prom)")
    dine.add_argument("--trace", metavar="PATH",
                      help="write the run's trace as JSONL (replayable offline "
                           "with `repro check`)")
    dine.add_argument("--spans", metavar="PATH",
                      help="attach the request tracer and write its spans as "
                           "JSONL (render with `repro trace`)")
    dine.set_defaults(func=cmd_dine)

    daemon = sub.add_parser("daemon", help="schedule a self-stabilizing protocol")
    daemon.add_argument("--protocol", choices=PROTOCOLS, default="coloring")
    daemon.add_argument("--topology", choices=TOPOLOGIES, default="grid")
    daemon.add_argument("--n", type=int, default=12)
    daemon.add_argument("--seed", type=int, default=1)
    daemon.add_argument("--crashes", type=int, default=1)
    daemon.add_argument("--detector", choices=DETECTORS, default="scripted")
    daemon.add_argument("--convergence", type=float, default=20.0)
    daemon.add_argument("--horizon", type=float, default=400.0)
    daemon.add_argument("--metrics", metavar="PATH",
                        help="write the run's metrics snapshot (JSON, or Prometheus "
                             "text if PATH ends in .prom)")
    daemon.set_defaults(func=cmd_daemon)

    experiments = sub.add_parser("experiments", help="reproduce the paper's claim tables")
    experiments.add_argument("--only", nargs="*", metavar="EN",
                             help="subset by experiment or scenario name, "
                                  "e.g. --only e1 e3 e8b")
    experiments.add_argument("--jobs", type=int, default=1, metavar="N",
                             help="worker processes for seed sweeps (default 1: serial)")
    experiments.add_argument("--seeds", type=int, nargs="*", metavar="S",
                             help="override each scenario's seed list; more than one "
                                  "seed prints the aggregated (mean/min/max) table")
    experiments.add_argument("--no-cache", action="store_true",
                             help="bypass the .repro_cache/ result cache")
    experiments.add_argument("--list", action="store_true", dest="list_scenarios",
                             help="list registered scenarios instead of running them")
    experiments.add_argument("--metrics", metavar="PATH",
                             help="collect metrics and write the merged snapshot "
                                  "(JSON, or Prometheus text if PATH ends in .prom)")
    experiments.add_argument("--cache-stats", action="store_true", dest="cache_stats",
                             help="print result-cache hit/miss/byte tallies at the end")
    experiments.set_defaults(func=cmd_experiments)

    report = sub.add_parser(
        "report", help="run one scenario with metrics on and print the run report"
    )
    report.add_argument("scenario", help="registered scenario name, e.g. e1")
    report.add_argument("--seeds", type=int, nargs="*", metavar="S",
                        help="override the scenario's seed list")
    report.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for seed sweeps (default 1: serial)")
    report.add_argument("--no-cache", action="store_true",
                        help="bypass the .repro_cache/ result cache")
    report.add_argument("--top", type=int, default=5, metavar="N",
                        help="kernel hotspots to show (default 5)")
    report.add_argument("--bound", type=int, default=4,
                        help="per-edge dining channel bound to assert (default 4)")
    report.add_argument("--json", metavar="PATH", help="also write the report as JSON")
    report.add_argument("--prom", metavar="PATH",
                        help="also write merged metrics as Prometheus text exposition")
    report.add_argument("--cache-stats", action="store_true", dest="cache_stats",
                        help="print result-cache hit/miss/byte tallies")
    report.set_defaults(func=cmd_report)

    verify = sub.add_parser(
        "verify", help="exhaustively explore every schedule of a small scope"
    )
    verify.add_argument("--topology", choices=("path", "ring", "star", "clique"), default="path")
    verify.add_argument("--n", type=int, default=2)
    verify.add_argument("--sessions", type=int, default=1)
    verify.add_argument("--crashable", type=int, nargs="*", default=[],
                        help="pids that may crash at any point of any schedule")
    verify.add_argument("--max-states", type=int, default=500_000)
    verify.set_defaults(func=cmd_verify)

    check = sub.add_parser(
        "check",
        help="replay recorded trace/wire artifacts through the property checkers",
    )
    check.add_argument("artifacts", nargs="+", metavar="PATH",
                       help="JSONL artifacts: traces (dine --trace, host trace.jsonl) "
                            "and/or wire logs (wire.jsonl); streams are merged")
    check.add_argument("--spec", metavar="PATH",
                       help="cluster spec.json: take topology, bound, and the "
                            "settle/patience windows from the recorded run")
    check.add_argument("--topology", choices=TOPOLOGIES, default="ring")
    check.add_argument("--n", type=int, default=3)
    check.add_argument("--seed", type=int, default=0,
                       help="seed the topology was built with (random graphs)")
    check.add_argument("--bound", type=int, default=4,
                       help="per-edge dining channel bound (default 4)")
    check.add_argument("--settle", type=float, default=None,
                       help="judge exclusion overlaps only after this instant "
                            "(omit: count but never fail)")
    check.add_argument("--patience", type=float, default=None,
                       help="hungry-longer-than-this fails progress "
                            "(omit: informational)")
    check.add_argument("--after", type=float, default=None,
                       help="judge the overtaking bound only after this instant")
    check.add_argument("--grace", type=float, default=None,
                       help="post-crash sends later than crash+grace fail quiescence")
    check.add_argument("--horizon", type=float, default=None,
                       help="judge open windows up to this instant "
                            "(default: last event time, or the spec duration)")
    check.add_argument("--json", metavar="PATH", help="also write the verdict as JSON")
    check.set_defaults(func=cmd_check)

    trace = sub.add_parser(
        "trace",
        help="render per-request timelines and the critical path from artifacts",
    )
    trace.add_argument("artifacts", nargs="+", metavar="PATH",
                       help="spans.jsonl from a traced run, and/or trace/wire "
                            "JSONL to rebuild spans from offline")
    trace.add_argument("--pid", type=int, default=None,
                       help="only this diner's requests")
    trace.add_argument("--trace-id", metavar="ID",
                       help="critical path for this request (hex or decimal "
                            "trace id; default: the slowest request)")
    trace.add_argument("--limit", type=int, default=10, metavar="N",
                       help="most recent requests to render (default 10)")
    trace.add_argument("--horizon", type=float, default=None,
                       help="close still-open spans at this instant when "
                            "rebuilding from trace/wire events")
    trace.set_defaults(func=cmd_trace)

    fuzz = sub.add_parser(
        "fuzz",
        help="adversarial fuzz campaigns, mutation testing, and witness shrinking",
    )
    fuzz.add_argument("--topology", choices=TOPOLOGIES + ("mixed",), default="ring",
                      help="conflict graph shape; 'mixed' rotates the sampler's "
                           "topology pool (ring/grid/random/geometric/scale_free) "
                           "across the campaign walk")
    fuzz.add_argument("--n", type=int, default=5)
    fuzz.add_argument("--seed", type=int, default=0,
                      help="campaign seed: the whole sampled walk derives from it")
    fuzz.add_argument("--runs", type=int, default=20,
                      help="sampled plans per campaign (per mutant with --mutants)")
    fuzz.add_argument("--budget", metavar="60s",
                      help="wall-clock lid per campaign, e.g. 60s, 2m "
                           "(checked between runs; the walk only truncates)")
    fuzz.add_argument("--archetypes", nargs="+", metavar="NAME",
                      help="restrict the walk to these sampler archetypes "
                           "(e.g. churn_storm flash_crowd rolling_restart); "
                           "default: all ten")
    fuzz.add_argument("--substrate", choices=("kernel", "live"), default="kernel",
                      help="where plans run (live: loopback AsyncHost, scaled time)")
    fuzz.add_argument("--mutants", nargs="*", metavar="NAME",
                      help="mutation testing: kill-campaign per named mutant "
                           "(no names: the whole registry); exit 1 on survivors")
    fuzz.add_argument("--list-mutants", action="store_true",
                      help="list the seeded-bug registry and exit")
    fuzz.add_argument("--shrink", action="store_true",
                      help="delta-debug each failure to a minimal witness directory")
    fuzz.add_argument("--plan", metavar="PATH",
                      help="replay one witness plan.json instead of sampling")
    fuzz.add_argument("--out", default="fuzz-witness", metavar="DIR",
                      help="witness root for --shrink (default fuzz-witness/)")
    fuzz.add_argument("--json", metavar="PATH",
                      help="also write the campaign/mutation report as JSON")
    fuzz.set_defaults(func=cmd_fuzz)

    bakeoff = sub.add_parser(
        "bakeoff",
        help="race the classical-DME zoo through the verdict pipeline "
             "and gate on each algorithm's recorded expected-status map",
    )
    bakeoff.add_argument("--topology", choices=("ring", "geometric", "scale_free", "all"),
                         default="all",
                         help="one comparison topology, or the full grid (default)")
    bakeoff.add_argument("--n", type=int, default=5)
    bakeoff.add_argument("--duration", type=float, default=20.0,
                         help="virtual horizon per cell; judge windows scale with it")
    bakeoff.add_argument("--seed", type=int, default=1)
    bakeoff.add_argument("--substrate", choices=("kernel", "live", "both"),
                         default="both",
                         help="kernel cells judge every regime; live cells "
                              "(loopback AsyncHost) pin the safety half")
    bakeoff.add_argument("--algorithms", nargs="+", metavar="NAME",
                         help="restrict to these zoo entries (default: all)")
    bakeoff.add_argument("--list", action="store_true",
                         help="list the zoo and each entry's guarantees, then exit")
    bakeoff.add_argument("--json", metavar="PATH",
                         help="also write the full report (cells, expected maps, "
                              "mismatches) as JSON")
    bakeoff.set_defaults(func=cmd_bakeoff)

    cluster = sub.add_parser(
        "cluster",
        help="run Algorithm 1 live: one OS process per host over real sockets",
    )
    cluster.add_argument("--topology", choices=TOPOLOGIES, default="ring")
    cluster.add_argument("--n", type=int, default=3)
    cluster.add_argument("--processes", type=int, default=3,
                         help="OS processes to spread the diners over")
    cluster.add_argument("--duration", type=float, default=2.0,
                         help="wall-clock seconds the actors run")
    cluster.add_argument("--seed", type=int, default=0)
    cluster.add_argument("--eat-time", type=float, default=0.05)
    cluster.add_argument("--think-time", type=float, default=0.01)
    cluster.add_argument("--heartbeat-interval", type=float, default=0.25)
    cluster.add_argument("--initial-timeout", type=float, default=0.75)
    cluster.add_argument("--timeout-increment", type=float, default=0.25)
    cluster.add_argument("--transport", choices=("unix", "tcp"), default="unix")
    cluster.add_argument("--crash", metavar="PID:T,...",
                         help="crash injections, e.g. --crash 2:0.5,4:1.0")
    cluster.add_argument("--run-dir", default="cluster-run",
                         help="directory for spec, per-host outputs, and logs")
    cluster.add_argument("--metrics", metavar="PATH",
                         help="write the merged cluster metrics (JSON, or "
                              "Prometheus text if PATH ends in .prom)")
    cluster.add_argument("--scrape-base", type=int, metavar="PORT",
                         help="serve live /metrics per host on "
                              "127.0.0.1:PORT+host_index while the run lasts")
    cluster.add_argument("--flight", action="store_true",
                         help="arm each host's flight recorder (dumps recent "
                              "trace/wire/span rings on FAIL)")
    cluster.add_argument("--no-tracing", action="store_true",
                         help="disable request tracing (no span logs, no wire "
                              "trace context)")
    cluster.add_argument("--serve-locks", action="store_true",
                         help="install the lease service on every host: diners "
                              "serve client demand (see `repro loadgen`)")
    cluster.set_defaults(func=cmd_cluster)

    loadgen = sub.add_parser(
        "loadgen",
        help="drive short-lived lease sessions against a --serve-locks cluster",
    )
    loadgen.add_argument("--spec", metavar="PATH",
                         help="spec.json of an already-running --serve-locks "
                              "cluster (omit to launch one here)")
    loadgen.add_argument("--topology", choices=TOPOLOGIES, default="ring")
    loadgen.add_argument("--n", type=int, default=8)
    loadgen.add_argument("--processes", type=int, default=3)
    loadgen.add_argument("--duration", type=float, default=30.0,
                         help="cluster lifetime when launching here (the burst "
                              "must fit inside it)")
    loadgen.add_argument("--seed", type=int, default=0)
    loadgen.add_argument("--transport", choices=("unix", "tcp"), default="unix")
    loadgen.add_argument("--run-dir", default="loadgen-run",
                         help="run directory when launching here")
    loadgen.add_argument("--scrape-base", type=int, metavar="PORT",
                         help="serve live /metrics per host while the run lasts")
    loadgen.add_argument("--no-tracing", action="store_true",
                         help="disable tracing (grants lose their eating-span "
                              "context, so the span-backed check is skipped)")
    loadgen.add_argument("--sessions", type=int, default=10_000,
                         help="total acquire/release sessions (default 10000)")
    loadgen.add_argument("--concurrency", type=int, default=200,
                         help="sessions in flight at once (default 200)")
    loadgen.add_argument("--connections", type=int, default=4,
                         help="client connections per serving host (default 4)")
    loadgen.add_argument("--ttl-ms", type=int, default=50,
                         help="lease TTL per session in milliseconds (default 50)")
    loadgen.add_argument("--hold-fraction", type=float, default=0.2,
                         help="mean hold time as a fraction of the TTL (default 0.2)")
    loadgen.add_argument("--abandon-fraction", type=float, default=0.02,
                         help="fraction of grants never released — the TTL must "
                              "reclaim them (default 0.02)")
    loadgen.add_argument("--acquire-timeout", type=float, default=30.0)
    loadgen.add_argument("--json", metavar="PATH",
                         help="also write the loadgen report as JSON")
    loadgen.set_defaults(func=cmd_loadgen)

    serve = sub.add_parser(
        "serve", help="run one host of a launched cluster (child entry point)"
    )
    serve.add_argument("--spec", required=True, help="path to the cluster spec.json")
    serve.add_argument("--host-index", type=int, required=True)
    serve.add_argument("--output", default=None,
                       help="output directory (default: <run-dir>/host-<index>)")
    serve.set_defaults(func=cmd_serve)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
