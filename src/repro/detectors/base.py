"""Failure-detector interfaces.

Chandra & Toueg model an unreliable failure detector as a distributed
oracle: each process owns a *local module* it can query for the set of
processes it currently suspects of having crashed.  The paper uses a
locally scope-restricted refinement, ◇P₁, whose output only ever mentions
the querying process's conflict-graph neighbors and which satisfies:

* **Local strong completeness** — every crashed process is eventually and
  permanently suspected by all correct neighbors;
* **Local eventual strong accuracy** — in every run there is a time after
  which no correct process is suspected by any correct neighbor.

:class:`DetectorModule` is the per-process query interface.  Modules are
observable: the dining layer subscribes so a suspicion flip immediately
re-evaluates guards (Actions 5 and 9 reference live suspicion).

Concrete detectors:

* :class:`repro.detectors.scripted.ScriptedDetector` — oracle with exact,
  configurable convergence time and mistake scripts (theorem tests);
* :class:`repro.detectors.perfect.PerfectDetector` — never wrong (P);
* :class:`repro.detectors.heartbeat.HeartbeatDetector` — a real message-
  passing ◇P₁ over partial synchrony;
* :class:`NullDetector` here — never suspects anyone, modeling the purely
  asynchronous system in which wait-free dining is impossible.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Iterable, List, Set

from repro.errors import ConfigurationError
from repro.graphs.conflict import ConflictGraph, ProcessId

SuspicionListener = Callable[[ProcessId, bool], None]


class DetectorModule:
    """Local failure-detector module of one process.

    Tracks a mutable set of currently suspected neighbors and notifies
    subscribed listeners on every change.  The scope restriction is
    enforced here: attempts to suspect a non-neighbor raise.
    """

    def __init__(self, owner: ProcessId, neighbors: Iterable[ProcessId]) -> None:
        self.owner = owner
        self._scope: FrozenSet[ProcessId] = frozenset(neighbors)
        self._suspected: Set[ProcessId] = set()
        # Live read-only view (the same set object, mutated in place,
        # never rebound): the dining guard loops test membership directly
        # instead of paying the scope-checking ``suspects`` call per
        # neighbor per scan.  Callers must not mutate it.
        self.suspected = self._suspected
        self._listeners: List[SuspicionListener] = []

    # -- queries --------------------------------------------------------
    def suspects(self, pid: ProcessId) -> bool:
        """True when this module currently suspects ``pid``.

        Querying a process outside the module's scope is a configuration
        error: ◇P₁ only ever speaks about neighbors.
        """
        if pid not in self._scope:
            raise ConfigurationError(
                f"module of {self.owner} queried about non-neighbor {pid}"
            )
        return pid in self._suspected

    def suspected_neighbors(self) -> FrozenSet[ProcessId]:
        """Snapshot of currently suspected neighbors."""
        return frozenset(self._suspected)

    @property
    def scope(self) -> FrozenSet[ProcessId]:
        return self._scope

    # -- observation ----------------------------------------------------
    def subscribe(self, listener: SuspicionListener) -> None:
        """Register ``listener(pid, suspected)`` for every output change."""
        self._listeners.append(listener)

    def reset(self) -> None:
        """Administrative wipe at a rejoin: forget suspicions *and* listeners.

        Deliberately silent — a rejoin is a membership act, not a
        detector output change, so no :class:`SuspicionChange` records
        are emitted.  Listeners are cleared because they belong to the
        dead incarnation of the owning process; the fresh actor
        re-subscribes in its ``on_start``.
        """
        self._suspected.clear()
        self._listeners.clear()

    # -- mutation (detector implementations only) -----------------------
    def set_suspicion(self, pid: ProcessId, suspected: bool) -> None:
        """Flip suspicion of ``pid``; notifies listeners on actual change."""
        if pid not in self._scope:
            raise ConfigurationError(
                f"module of {self.owner} cannot suspect non-neighbor {pid}"
            )
        if suspected and pid not in self._suspected:
            self._suspected.add(pid)
        elif not suspected and pid in self._suspected:
            self._suspected.discard(pid)
        else:
            return
        for listener in self._listeners:
            listener(pid, suspected)


class FailureDetector:
    """A family of per-process modules over one conflict graph."""

    def __init__(self, graph: ConflictGraph) -> None:
        self.graph = graph
        self._modules: Dict[ProcessId, DetectorModule] = {
            pid: DetectorModule(pid, graph.neighbors(pid)) for pid in graph.nodes
        }

    def module_for(self, pid: ProcessId) -> DetectorModule:
        try:
            return self._modules[pid]
        except KeyError:
            raise ConfigurationError(f"no detector module for process {pid}") from None

    def agent_for(self, pid: ProcessId):
        """Per-process engine for detectors that ride inside the host actor.

        Oracle-style detectors (scripted, perfect, null) drive modules from
        scheduled events and need no in-actor machinery, so the default is
        ``None``.  Message-passing detectors (heartbeat) override this; the
        host actor starts the agent and routes detector-layer messages to
        it.
        """
        return None


class NullDetector(FailureDetector):
    """Suspects nobody, ever: the purely asynchronous system.

    Running Algorithm 1 with this detector degenerates to Choy & Singh's
    crash-oblivious doorway algorithm's guarantees — used by the
    impossibility-side experiments (a crashed neighbor starves you).
    """
