"""A second real ◇P₁: query-response probing with adaptive timeouts.

Chandra & Toueg's original ◇P sketch polls: each module periodically asks
each neighbor "are you alive?" and suspects on a missed reply.  Where the
heartbeat detector (:mod:`repro.detectors.heartbeat`) measures one-way
silence, this one measures **round trips** — it needs no assumption that
the neighbor is spontaneously sending, which matters when detector and
application share channels with asymmetric load.

Mechanics per monitored neighbor:

* every ``interval``, send a sequence-numbered :class:`Probe` and arm a
  deadline of the current adaptive timeout;
* any process answers a probe immediately with an :class:`Echo` carrying
  the probe's sequence number (the detector layer answers regardless of
  dining state — a busy philosopher is still alive);
* an echo for the newest outstanding probe (or any later one) clears the
  deadline; an expired deadline suspects; a late echo retracts the
  suspicion and grows the timeout by ``timeout_increment``.

Under GST partial synchrony this satisfies ◇P₁ by the same argument as
the heartbeat detector, with the bound on post-GST round trips being
``2 · post_gst_max`` instead of one-way delay: completeness because a
crashed neighbor echoes nothing, eventual accuracy because finitely many
timeout bumps push past the round-trip bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.detectors.base import DetectorModule, FailureDetector
from repro.errors import ConfigurationError
from repro.graphs.conflict import ConflictGraph, ProcessId
from repro.sim.actor import Actor
from repro.sim.events import Event
from repro.sim.time import Duration, validate_duration


@dataclass(frozen=True)
class Probe:
    """'Are you alive?' — sequence-numbered per (querier, target)."""

    seq: int
    layer = "detector"


@dataclass(frozen=True)
class Echo:
    """'I am alive' — answers the probe with the same sequence number."""

    seq: int
    layer = "detector"


class QueryAgent:
    """Per-process query-response engine hosted inside an actor."""

    def __init__(self, detector: "QueryDetector", pid: ProcessId) -> None:
        self._detector = detector
        self.pid = pid
        self.module: DetectorModule = detector.module_for(pid)
        self._actor: Optional[Actor] = None
        self._timeouts: Dict[ProcessId, Duration] = {
            nbr: detector.initial_timeout for nbr in detector.graph.neighbors(pid)
        }
        self._next_seq: Dict[ProcessId, int] = {nbr: 0 for nbr in self._timeouts}
        self._awaiting_seq: Dict[ProcessId, int] = {}
        self._deadlines: Dict[ProcessId, Event] = {}
        self.false_suspicion_retractions = 0

    # -- wiring ----------------------------------------------------------
    def start(self, actor: Actor) -> None:
        if actor.pid != self.pid:
            raise ConfigurationError(
                f"agent for process {self.pid} attached to actor {actor.pid}"
            )
        self._actor = actor
        self._probe_round()

    def wants(self, message) -> bool:
        return isinstance(message, (Probe, Echo))

    # -- protocol ----------------------------------------------------------
    def on_message(self, src: ProcessId, message) -> None:
        if isinstance(message, Probe):
            actor = self._actor
            if actor is not None and not actor.crashed:
                actor.send(src, Echo(message.seq))
            return
        if src not in self._timeouts:
            return  # echo from outside ◇P₁'s scope
        awaiting = self._awaiting_seq.get(src)
        if awaiting is None or message.seq < awaiting:
            return  # a stale echo from an older round proves nothing new
        self._awaiting_seq.pop(src, None)
        deadline = self._deadlines.pop(src, None)
        if deadline is not None:
            deadline.cancel()
        if self.module.suspects(src):
            self._timeouts[src] += self._detector.timeout_increment
            self.false_suspicion_retractions += 1
            self.module.set_suspicion(src, False)

    def _probe_round(self) -> None:
        actor = self._actor
        if actor is None or actor.crashed:
            return
        for neighbor in self._timeouts:
            seq = self._next_seq[neighbor]
            self._next_seq[neighbor] = seq + 1
            actor.send(neighbor, Probe(seq))
            if neighbor in self._awaiting_seq:
                # An older probe is still unanswered: its deadline stands.
                # Re-arming here would slide the deadline forever when the
                # probing interval is shorter than the timeout, and a
                # silent (crashed) neighbor would never be suspected.
                continue
            self._awaiting_seq[neighbor] = seq

            def expire(neighbor=neighbor) -> None:
                self.module.set_suspicion(neighbor, True)

            self._deadlines[neighbor] = actor.set_timer(
                self._timeouts[neighbor], expire, label=f"probe-deadline {self.pid}~{neighbor}"
            )
        actor.set_timer(self._detector.interval, self._probe_round, label=f"probe@{self.pid}")

    def timeout_of(self, neighbor: ProcessId) -> Duration:
        return self._timeouts[neighbor]


class QueryDetector(FailureDetector):
    """◇P₁ from round-trip probes and adaptive timeouts."""

    def __init__(
        self,
        graph: ConflictGraph,
        *,
        interval: Duration = 1.0,
        initial_timeout: Duration = 4.0,
        timeout_increment: Duration = 1.0,
    ) -> None:
        super().__init__(graph)
        self.interval = validate_duration(interval, name="interval", allow_zero=False)
        self.initial_timeout = validate_duration(
            initial_timeout, name="initial_timeout", allow_zero=False
        )
        self.timeout_increment = validate_duration(
            timeout_increment, name="timeout_increment", allow_zero=False
        )
        self._agents: Dict[ProcessId, QueryAgent] = {}

    def agent_for(self, pid: ProcessId) -> QueryAgent:
        agent = self._agents.get(pid)
        if agent is None:
            agent = QueryAgent(self, pid)
            self._agents[pid] = agent
        return agent

    def total_false_retractions(self) -> int:
        return sum(agent.false_suspicion_retractions for agent in self._agents.values())
