"""Detectors that deliberately violate one ◇P₁ property.

Section 8 of the paper composes its sufficiency result with the parallel
necessity result [21]: ◇P is the *weakest* failure detector for
wait-free, eventually-fair daemons.  Necessity cannot be "run", but its
footprint can: strip one ◇P₁ property from the oracle and the matching
guarantee of Algorithm 1 must collapse.  These detectors make that
demonstration executable (experiment E9):

* :class:`IncompleteDetector` — violates **local strong completeness**:
  chosen observer/suspect pairs never learn about real crashes.
  Prediction: wait-freedom collapses — the blind observer waits forever
  for a dead neighbor's ack or fork (this is the null-detector behaviour,
  localized to chosen edges).
* :class:`InaccurateDetector` — violates **local eventual strong
  accuracy**: chosen pairs suspect *correct* neighbors in recurring
  episodes forever.  Prediction: eventual weak exclusion collapses — the
  recurring false suspicion keeps authorizing forkless meals, so live
  neighbors eat simultaneously infinitely often; wait-freedom survives
  (suspicion only ever unblocks).

Both are scripted (deterministic from the seed) and deliberately fail
:class:`~repro.detectors.scripted.ScriptedDetector`'s validation, which
is why they are separate classes rather than configurations of it.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

from repro.detectors.base import FailureDetector
from repro.errors import ConfigurationError
from repro.graphs.conflict import ConflictGraph, ProcessId
from repro.sim.crash import CrashPlan
from repro.sim.events import EventPriority
from repro.sim.kernel import Simulator
from repro.sim.time import Duration, Instant, validate_duration

Pair = Tuple[ProcessId, ProcessId]


def _validate_pairs(graph: ConflictGraph, pairs: Iterable[Pair]) -> Tuple[Pair, ...]:
    validated = []
    for observer, subject in pairs:
        if not graph.are_neighbors(observer, subject):
            raise ConfigurationError(
                f"pair ({observer}, {subject}) is out of ◇P₁ scope: not neighbors"
            )
        validated.append((observer, subject))
    return tuple(validated)


class IncompleteDetector(FailureDetector):
    """◇P₁ minus completeness on selected (observer, crashed) pairs.

    Behaves like a perfect detector everywhere except the ``blind_pairs``:
    those observers never suspect those subjects, even after the subject
    crashes.  Everything else about the oracle is ideal, which isolates
    the completeness property as the only broken assumption.
    """

    def __init__(
        self,
        sim: Simulator,
        graph: ConflictGraph,
        crash_plan: CrashPlan,
        *,
        blind_pairs: Sequence[Pair],
        detection_delay: Duration = 1.0,
    ) -> None:
        super().__init__(graph)
        self._sim = sim
        self._crash_plan = crash_plan
        self.blind_pairs = _validate_pairs(graph, blind_pairs)
        self.detection_delay = validate_duration(detection_delay, name="detection_delay")
        self._installed = False

    def install(self) -> None:
        if self._installed:
            raise ConfigurationError("detector already installed")
        self._installed = True
        blind = set(self.blind_pairs)
        for pid, crash_time in self._crash_plan.crashes:
            for neighbor in self.graph.neighbors(pid):
                if (neighbor, pid) in blind:
                    continue  # the violation: this crash is never reported here
                module = self.module_for(neighbor)
                self._sim.schedule_at(
                    crash_time + self.detection_delay,
                    lambda m=module, p=pid: m.set_suspicion(p, True),
                    priority=EventPriority.CONTROL,
                    label=f"detect crash {pid} at {neighbor}",
                )


class InaccurateDetector(FailureDetector):
    """◇P₁ minus eventual accuracy on selected (observer, victim) pairs.

    Completeness is ideal (crashes detected everywhere), but each
    ``recurring_pairs`` observer falsely suspects its (correct) victim in
    periodic episodes forever: suspected during
    ``[k·period, k·period + episode)`` for every k ≥ 1.  Episodes stop
    only if the victim actually crashes (the suspicion then becomes
    permanent truth).
    """

    def __init__(
        self,
        sim: Simulator,
        graph: ConflictGraph,
        crash_plan: CrashPlan,
        *,
        recurring_pairs: Sequence[Pair],
        period: Duration = 10.0,
        episode: Duration = 4.0,
        detection_delay: Duration = 1.0,
    ) -> None:
        super().__init__(graph)
        self._sim = sim
        self._crash_plan = crash_plan
        self.recurring_pairs = _validate_pairs(graph, recurring_pairs)
        self.period = validate_duration(period, name="period", allow_zero=False)
        self.episode = validate_duration(episode, name="episode", allow_zero=False)
        if self.episode >= self.period:
            raise ConfigurationError("episode must be shorter than its period")
        self.detection_delay = validate_duration(detection_delay, name="detection_delay")
        self._installed = False

    def install(self) -> None:
        if self._installed:
            raise ConfigurationError("detector already installed")
        self._installed = True

        # Ideal completeness.
        for pid, crash_time in self._crash_plan.crashes:
            for neighbor in self.graph.neighbors(pid):
                module = self.module_for(neighbor)
                self._sim.schedule_at(
                    crash_time + self.detection_delay,
                    lambda m=module, p=pid: m.set_suspicion(p, True),
                    priority=EventPriority.CONTROL,
                    label=f"detect crash {pid} at {neighbor}",
                )

        # Perpetual recurring mistakes: self-rescheduling episode starts.
        # Each pair gets its episode function from a factory call, so the
        # self-recursion resolves through that call's own closure cell —
        # a loop-local ``def`` would be rebound on the next pair and every
        # rescheduled episode would drive the *last* pair's modules.
        crash_times = self._crash_plan.as_dict()
        for observer, victim in self.recurring_pairs:
            start_episode = self._make_episode_scheduler(
                observer,
                victim,
                self.module_for(observer),
                crash_times.get(victim, float("inf")),
            )
            self._sim.schedule_at(
                self.period,
                lambda f=start_episode: f(self.period),
                priority=EventPriority.CONTROL,
                label=f"first mistake {observer}~{victim}",
            )

    def _make_episode_scheduler(self, observer: ProcessId, victim: ProcessId, module, victim_crash: Instant):
        def start_episode(start: Instant) -> None:
            if start >= victim_crash:
                return  # truth (completeness) has taken over
            module.set_suspicion(victim, True)

            def stop() -> None:
                if self._sim.now < victim_crash:
                    module.set_suspicion(victim, False)

            self._sim.schedule_at(
                start + self.episode,
                stop,
                priority=EventPriority.CONTROL,
                label=f"end mistake {observer}~{victim}",
            )
            self._sim.schedule_at(
                start + self.period,
                lambda: start_episode(start + self.period),
                priority=EventPriority.CONTROL,
                label=f"next mistake {observer}~{victim}",
            )

        return start_episode
