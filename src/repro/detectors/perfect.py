"""The perfect detector P (strong completeness + strong accuracy).

P never makes false-positive mistakes: a process is suspected only after it
actually crashed.  Algorithm 1 running over P gives *perpetual* weak
exclusion from time zero (Theorem 1's pre-convergence mistakes all stem
from false positives), which the experiments use as the "stronger oracle"
comparison point — the paper shows ◇P suffices, and P is what you would
need to never make a scheduling mistake at all.

Implemented as a :class:`ScriptedDetector` with an empty mistake script and
convergence time zero.
"""

from __future__ import annotations

from repro.detectors.scripted import ScriptedDetector
from repro.graphs.conflict import ConflictGraph
from repro.sim.crash import CrashPlan
from repro.sim.kernel import Simulator
from repro.sim.time import Duration


class PerfectDetector(ScriptedDetector):
    """Never suspects a live process; detects each crash after a fixed lag."""

    def __init__(
        self,
        sim: Simulator,
        graph: ConflictGraph,
        crash_plan: CrashPlan,
        *,
        detection_delay: Duration = 1.0,
    ) -> None:
        super().__init__(
            sim,
            graph,
            crash_plan,
            convergence_time=0.0,
            detection_delay=detection_delay,
            mistakes=(),
        )
