"""Failure-detector substrate: ◇P₁ oracles and implementations."""

from repro.detectors.adversarial import InaccurateDetector, IncompleteDetector
from repro.detectors.base import DetectorModule, FailureDetector, NullDetector
from repro.detectors.heartbeat import Heartbeat, HeartbeatAgent, HeartbeatDetector
from repro.detectors.perfect import PerfectDetector
from repro.detectors.query import Echo, Probe, QueryAgent, QueryDetector
from repro.detectors.qos import QosReport, SuspicionEpisode, detector_qos, suspicion_episodes
from repro.detectors.scripted import MistakeInterval, ScriptedDetector

__all__ = [
    "DetectorModule",
    "FailureDetector",
    "Heartbeat",
    "HeartbeatAgent",
    "HeartbeatDetector",
    "InaccurateDetector",
    "IncompleteDetector",
    "MistakeInterval",
    "NullDetector",
    "PerfectDetector",
    "Probe",
    "Echo",
    "QosReport",
    "QueryAgent",
    "QueryDetector",
    "ScriptedDetector",
    "SuspicionEpisode",
    "detector_qos",
    "suspicion_episodes",
]
