"""Failure-detector quality-of-service metrics (Chen, Toueg & Aguilera).

The paper needs only ◇P₁'s two eventual properties, but *how good* an
implementation is — how fast it detects real crashes, how often and how
long it wrongly suspects — determines everything quantitative about a
run: the violation budget, the pre-convergence fairness backlog, and the
response-time tail.  This module computes the three classic QoS metrics
from a recorded trace's :class:`~repro.trace.events.SuspicionChange`
records:

* **detection time** — crash instant → start of the *permanent* suspicion
  at each correct neighbor;
* **mistake rate** — false-suspicion episodes per unit time per monitored
  pair (episodes targeting a process before its crash);
* **mistake duration** — how long each false episode lasted.

Works for any detector in the library (the dining layer records every
module output change), so scripted oracles can calibrate expectations for
the heartbeat implementation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.graphs.conflict import ConflictGraph, ProcessId
from repro.sim.crash import CrashPlan
from repro.sim.time import Instant
from repro.trace.events import SuspicionChange
from repro.trace.recorder import TraceRecorder

Pair = Tuple[ProcessId, ProcessId]


@dataclass(frozen=True)
class SuspicionEpisode:
    """One maximal suspicion interval of ``subject`` at ``observer``."""

    observer: ProcessId
    subject: ProcessId
    start: Instant
    end: Instant  # math.inf when never retracted

    @property
    def duration(self) -> float:
        return self.end - self.start


def suspicion_episodes(
    trace: TraceRecorder, *, horizon: Instant = math.inf
) -> List[SuspicionEpisode]:
    """All maximal suspicion intervals, open ones closed at ``horizon``."""
    open_since: Dict[Pair, Instant] = {}
    episodes: List[SuspicionEpisode] = []
    for record in trace.of_type(SuspicionChange):
        pair = (record.observer, record.suspect)
        if record.suspected:
            open_since.setdefault(pair, record.time)
        else:
            started = open_since.pop(pair, None)
            if started is not None:
                episodes.append(
                    SuspicionEpisode(pair[0], pair[1], started, record.time)
                )
    for (observer, subject), started in open_since.items():
        episodes.append(SuspicionEpisode(observer, subject, started, horizon))
    episodes.sort(key=lambda e: (e.start, e.observer, e.subject))
    return episodes


@dataclass(frozen=True)
class QosReport:
    """Aggregate detector quality over one run."""

    detection_times: Tuple[float, ...]  # one per (correct neighbor, crash) pair detected
    undetected_crash_pairs: int  # completeness failures at the horizon
    mistake_count: int
    mistake_durations: Tuple[float, ...]
    monitored_pairs: int
    horizon: float

    @property
    def worst_detection_time(self) -> Optional[float]:
        return max(self.detection_times) if self.detection_times else None

    @property
    def mean_detection_time(self) -> Optional[float]:
        if not self.detection_times:
            return None
        return sum(self.detection_times) / len(self.detection_times)

    @property
    def mistake_rate(self) -> float:
        """False episodes per unit time per monitored pair."""
        if self.horizon <= 0 or self.monitored_pairs == 0:
            return 0.0
        return self.mistake_count / (self.horizon * self.monitored_pairs)

    @property
    def mean_mistake_duration(self) -> Optional[float]:
        finite = [d for d in self.mistake_durations if math.isfinite(d)]
        if not finite:
            return None
        return sum(finite) / len(finite)


def detector_qos(
    trace: TraceRecorder,
    graph: ConflictGraph,
    crash_plan: CrashPlan,
    *,
    horizon: Instant,
) -> QosReport:
    """Compute the QoS report for one run.

    An episode counts as *detection* when it targets a crashed subject,
    begins at/after the crash, and persists to the horizon; it counts as
    a *mistake* when it begins before the subject's crash (or the subject
    never crashes).  Crashed observers' episodes are ignored from their
    crash time (a dead module outputs nothing).
    """
    crash_times = crash_plan.as_dict()
    episodes = suspicion_episodes(trace, horizon=horizon)

    detection: Dict[Pair, float] = {}
    mistakes: List[float] = []
    for episode in episodes:
        observer_crash = crash_times.get(episode.observer, math.inf)
        if episode.start >= observer_crash:
            continue
        subject_crash = crash_times.get(episode.subject, math.inf)
        if episode.start >= subject_crash:
            # True detection; permanence means it survives to the horizon.
            if episode.end >= min(horizon, observer_crash):
                pair = (episode.observer, episode.subject)
                detection.setdefault(pair, episode.start - subject_crash)
        else:
            mistakes.append(min(episode.end, subject_crash) - episode.start)

    expected_pairs = 0
    for pid, crash_time in crash_plan.crashes:
        for neighbor in graph.neighbors(pid):
            neighbor_crash = crash_times.get(neighbor, math.inf)
            if neighbor_crash > crash_time:  # neighbor alive to observe it
                expected_pairs += 1
    undetected = expected_pairs - len(detection)

    monitored = sum(len(graph.neighbors(pid)) for pid in graph.nodes)
    return QosReport(
        detection_times=tuple(sorted(detection.values())),
        undetected_crash_pairs=max(0, undetected),
        mistake_count=len(mistakes),
        mistake_durations=tuple(sorted(mistakes)),
        monitored_pairs=monitored,
        horizon=float(horizon),
    )
