"""A real message-passing ◇P₁: heartbeats with adaptive timeouts.

The paper motivates ◇P as "implementable in many realistic models of
partial synchrony [7, 13, 14]".  This module supplies that implementation
so the system can be demonstrated end-to-end with no oracle scripting:

* every process periodically sends a :class:`Heartbeat` to each conflict
  graph neighbor (detector traffic is tagged ``layer="detector"`` so the
  dining layer's channel-capacity bound stays measurable);
* for each neighbor a deadline is maintained; if it passes without a
  heartbeat the neighbor is suspected;
* a heartbeat from a suspected neighbor retracts the suspicion and
  *increases* that neighbor's timeout.

Under the GST partial-synchrony latency model
(:class:`repro.sim.latency.PartialSynchronyLatency`) this satisfies ◇P₁:

* **local strong completeness** — a crashed neighbor stops sending, its
  deadline eventually fires, and with no further heartbeats the suspicion
  is permanent (at most finitely many in-transit heartbeats can retract
  it);
* **local eventual strong accuracy** — after GST every heartbeat arrives
  within ``interval + post_gst_max``; each false suspicion grows the
  timeout by ``timeout_increment``, so after finitely many mistakes the
  timeout exceeds that bound and no correct neighbor is suspected again.

The detector rides inside its host actor (one simulated process runs both
its dining layer and its detector module), wired through
:class:`DetectorAgent`.  Heartbeats keep flowing to crashed neighbors —
quiescence is a dining-layer property (Section 7), not a detector one;
◇P fundamentally requires perpetual probing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.detectors.base import DetectorModule, FailureDetector
from repro.errors import ConfigurationError
from repro.graphs.conflict import ConflictGraph, ProcessId
from repro.sim.actor import Actor
from repro.sim.events import Event
from repro.sim.time import Duration, validate_duration


@dataclass(frozen=True)
class Heartbeat:
    """I-am-alive probe; carries its sender's send-time for diagnostics."""

    sent_at: float
    layer = "detector"


class HeartbeatAgent:
    """Per-process detector engine hosted inside an actor."""

    def __init__(self, detector: "HeartbeatDetector", pid: ProcessId) -> None:
        self._detector = detector
        self.pid = pid
        self.module: DetectorModule = detector.module_for(pid)
        self._actor: Optional[Actor] = None
        self._timeouts: Dict[ProcessId, Duration] = {
            nbr: detector.initial_timeout for nbr in detector.graph.neighbors(pid)
        }
        self._deadlines: Dict[ProcessId, Event] = {}
        self.false_suspicion_retractions = 0

    # ------------------------------------------------------------------
    # Wiring (called by the host actor)
    # ------------------------------------------------------------------
    def start(self, actor: Actor) -> None:
        """Begin heartbeating and arm initial deadlines."""
        if actor.pid != self.pid:
            raise ConfigurationError(
                f"agent for process {self.pid} attached to actor {actor.pid}"
            )
        self._actor = actor
        self._broadcast()
        for neighbor in self._timeouts:
            self._arm_deadline(neighbor)

    def wants(self, message) -> bool:
        """True when ``message`` belongs to the detector layer."""
        return isinstance(message, Heartbeat)

    def on_message(self, src: ProcessId, message: Heartbeat) -> None:
        """A heartbeat arrived: refresh (and if needed retract) suspicion."""
        if src not in self._timeouts:
            return  # heartbeat from a non-neighbor: outside ◇P₁'s scope
        if self.module.suspects(src):
            # A false suspicion (or a pre-crash straggler).  Retract and
            # adapt: grow the timeout so this mistake is not repeated once
            # the network has stabilized.
            self._timeouts[src] += self._detector.timeout_increment
            self.false_suspicion_retractions += 1
            self.module.set_suspicion(src, False)
        self._arm_deadline(src)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _broadcast(self) -> None:
        actor = self._actor
        if actor is None or actor.crashed:
            return
        beat = Heartbeat(sent_at=actor.now)
        for neighbor in self._timeouts:
            actor.send(neighbor, beat)
        actor.set_timer(self._detector.interval, self._broadcast, label=f"heartbeat@{self.pid}")

    def _arm_deadline(self, neighbor: ProcessId) -> None:
        actor = self._actor
        if actor is None or actor.crashed:
            return
        previous = self._deadlines.get(neighbor)
        if previous is not None:
            previous.cancel()

        def expire() -> None:
            self.module.set_suspicion(neighbor, True)

        self._deadlines[neighbor] = actor.set_timer(
            self._timeouts[neighbor], expire, label=f"deadline {self.pid}~{neighbor}"
        )

    def timeout_of(self, neighbor: ProcessId) -> Duration:
        """Current adaptive timeout for ``neighbor`` (diagnostics)."""
        return self._timeouts[neighbor]


class HeartbeatDetector(FailureDetector):
    """◇P₁ from heartbeats and adaptive timeouts.

    Parameters
    ----------
    interval:
        Period between heartbeat broadcasts.
    initial_timeout:
        Starting per-neighbor deadline; deliberately allowed to be small
        enough to cause early false positives (the algorithm must tolerate
        them, and the experiments want some to occur).
    timeout_increment:
        Additive timeout growth on each retracted false suspicion.
    """

    def __init__(
        self,
        graph: ConflictGraph,
        *,
        interval: Duration = 1.0,
        initial_timeout: Duration = 3.0,
        timeout_increment: Duration = 1.0,
    ) -> None:
        super().__init__(graph)
        self.interval = validate_duration(interval, name="interval", allow_zero=False)
        self.initial_timeout = validate_duration(
            initial_timeout, name="initial_timeout", allow_zero=False
        )
        self.timeout_increment = validate_duration(
            timeout_increment, name="timeout_increment", allow_zero=False
        )
        self._agents: Dict[ProcessId, HeartbeatAgent] = {}

    def agent_for(self, pid: ProcessId) -> HeartbeatAgent:
        """The per-process engine; host actors call this and wire it in."""
        agent = self._agents.get(pid)
        if agent is None:
            agent = HeartbeatAgent(self, pid)
            self._agents[pid] = agent
        return agent

    def total_false_retractions(self) -> int:
        """Across all processes, how many false suspicions were retracted."""
        return sum(agent.false_suspicion_retractions for agent in self._agents.values())
