"""Scripted ◇P₁ oracle with exact, configurable behaviour.

The safety, progress, and fairness proofs quantify over *any* detector
history satisfying ◇P₁'s two properties.  To test those theorems we need
precise control of that history: when each crash is detected, which
false-positive mistakes occur, and exactly when accuracy converges.
:class:`ScriptedDetector` provides that control while provably satisfying
◇P₁ by construction:

* **completeness** — for each crashed process *j* and each neighbor *i*,
  the module of *i* suspects *j* permanently from
  ``crash_time(j) + detection_delay``;
* **accuracy** — false-positive suspicion intervals are only admitted
  strictly before the configured ``convergence_time``, so after
  ``convergence_time`` no correct process is ever suspected.

:meth:`ScriptedDetector.with_random_mistakes` draws a pre-convergence
mistake history from a named random stream, which is how the safety
experiment explores many adversarial oracle histories per seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.detectors.base import FailureDetector
from repro.graphs.conflict import ConflictGraph, ProcessId
from repro.sim.crash import CrashPlan
from repro.sim.events import EventPriority
from repro.sim.kernel import Simulator
from repro.sim.time import Duration, Instant, validate_duration, validate_instant


@dataclass(frozen=True)
class MistakeInterval:
    """One false-positive episode: ``observer`` suspects ``suspect`` in [start, end)."""

    observer: ProcessId
    suspect: ProcessId
    start: Instant
    end: Instant

    def validate(self, graph: ConflictGraph) -> None:
        if not graph.are_neighbors(self.observer, self.suspect):
            raise ConfigurationError(
                f"mistake interval {self} is out of ◇P₁ scope: "
                f"{self.observer} and {self.suspect} are not neighbors"
            )
        if self.end <= self.start:
            raise ConfigurationError(f"mistake interval {self} is empty or inverted")


class ScriptedDetector(FailureDetector):
    """Oracle whose entire history is fixed at construction time.

    Parameters
    ----------
    sim, graph, crash_plan:
        The simulation the oracle is embedded in.
    convergence_time:
        Instant after which local eventual strong accuracy holds; all
        mistake intervals must end by then.
    detection_delay:
        Lag between a crash and its permanent suspicion by each neighbor.
    mistakes:
        False-positive episodes (see :class:`MistakeInterval`).
    """

    def __init__(
        self,
        sim: Simulator,
        graph: ConflictGraph,
        crash_plan: CrashPlan,
        *,
        convergence_time: Instant = 0.0,
        detection_delay: Duration = 1.0,
        mistakes: Iterable[MistakeInterval] = (),
    ) -> None:
        super().__init__(graph)
        self._sim = sim
        self._crash_plan = crash_plan
        self.convergence_time = validate_instant(convergence_time, name="convergence_time")
        self.detection_delay = validate_duration(detection_delay, name="detection_delay")
        self._mistakes: Tuple[MistakeInterval, ...] = tuple(mistakes)

        crash_times = crash_plan.as_dict()
        for interval in self._mistakes:
            interval.validate(graph)
            if interval.end > self.convergence_time:
                raise ConfigurationError(
                    f"mistake interval {interval} outlives convergence time "
                    f"{self.convergence_time}; that would violate eventual strong accuracy"
                )
            suspect_crash = crash_times.get(interval.suspect)
            if suspect_crash is not None and interval.start >= suspect_crash:
                raise ConfigurationError(
                    f"mistake interval {interval} starts after its suspect crashed; "
                    "that is completeness, not a mistake — extend detection instead"
                )
        self._installed = False

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def with_random_mistakes(
        cls,
        sim: Simulator,
        graph: ConflictGraph,
        crash_plan: CrashPlan,
        *,
        convergence_time: Instant,
        detection_delay: Duration = 1.0,
        mistakes_per_edge: float = 1.0,
        mean_mistake_duration: Duration = 2.0,
        stream_name: str = "detector-mistakes",
    ) -> "ScriptedDetector":
        """Draw a random pre-convergence mistake history.

        For every ordered neighbor pair, a geometric number of mistake
        episodes (mean ``mistakes_per_edge``) is placed uniformly before
        ``convergence_time``, each with an exponential duration clipped to
        end at convergence.  Intervals targeting a process after its crash
        are discarded (those would be completeness, not mistakes).
        """
        convergence_time = validate_instant(convergence_time, name="convergence_time")
        rng = sim.streams.stream(stream_name)
        crash_times = crash_plan.as_dict()
        mistakes: List[MistakeInterval] = []
        if convergence_time > 0:
            for observer in graph.nodes:
                for suspect in graph.neighbors(observer):
                    count = 0
                    while rng.random() < mistakes_per_edge / (mistakes_per_edge + 1.0):
                        count += 1
                        if count > 20:
                            break
                    for _ in range(count):
                        start = rng.uniform(0.0, convergence_time)
                        duration = rng.expovariate(1.0 / mean_mistake_duration)
                        end = min(start + max(duration, 1e-6), convergence_time)
                        if end <= start:
                            continue
                        suspect_crash = crash_times.get(suspect)
                        if suspect_crash is not None and start >= suspect_crash:
                            continue
                        if suspect_crash is not None and end > suspect_crash:
                            end = suspect_crash
                            if end <= start:
                                continue
                        mistakes.append(MistakeInterval(observer, suspect, start, end))
        return cls(
            sim,
            graph,
            crash_plan,
            convergence_time=convergence_time,
            detection_delay=detection_delay,
            mistakes=mistakes,
        )

    # ------------------------------------------------------------------
    # Installation
    # ------------------------------------------------------------------
    def install(self) -> None:
        """Schedule every suspicion flip in the oracle's history.

        Flips run at CONTROL priority so a suspicion that starts at time
        *t* is visible to every guard evaluated at *t*.
        """
        if self._installed:
            raise ConfigurationError("detector already installed")
        self._installed = True

        def flip(observer: ProcessId, suspect: ProcessId, value: bool):
            module = self.module_for(observer)
            return lambda: module.set_suspicion(suspect, value)

        # Completeness: permanent suspicion after each crash.
        for pid, crash_time in self._crash_plan.crashes:
            for neighbor in self.graph.neighbors(pid):
                self._sim.schedule_at(
                    crash_time + self.detection_delay,
                    flip(neighbor, pid, True),
                    priority=EventPriority.CONTROL,
                    label=f"detect crash {pid} at {neighbor}",
                )

        # Scripted mistakes: bounded false-positive episodes.
        for interval in self._mistakes:
            self._sim.schedule_at(
                interval.start,
                flip(interval.observer, interval.suspect, True),
                priority=EventPriority.CONTROL,
                label=f"mistake on {interval.suspect} at {interval.observer}",
            )
            self._sim.schedule_at(
                interval.end,
                self._end_mistake(interval),
                priority=EventPriority.CONTROL,
                label=f"retract mistake on {interval.suspect} at {interval.observer}",
            )

    def _end_mistake(self, interval: MistakeInterval):
        """Retract a mistake unless its target crashed during the episode."""

        def retract() -> None:
            crash_times = self._crash_plan.as_dict()
            crash_time: Optional[Instant] = crash_times.get(interval.suspect)
            if crash_time is not None and crash_time <= self._sim.now:
                return  # became true suspicion; completeness keeps it
            self.module_for(interval.observer).set_suspicion(interval.suspect, False)

        return retract

    @property
    def mistakes(self) -> Tuple[MistakeInterval, ...]:
        return self._mistakes

    def accuracy_holds_after(self) -> Instant:
        """Earliest instant from which no correct process is suspected."""
        return max((m.end for m in self._mistakes), default=0.0)
