"""Row aggregation shared by replication and the Runner.

One seed produces a list of row dicts; a sweep produces one list per
seed.  :func:`aggregate_rows` collapses them into one row per
``group_by`` key with ``_mean`` / ``_min`` / ``_max`` columns for every
numeric metric — the same shape :func:`repro.experiments.replication.
replicate` has always returned, factored out so
:class:`repro.scenarios.runner.RunResult` can aggregate without a
circular import back into the experiments package.
"""

from __future__ import annotations

import statistics
from typing import Dict, Iterable, List, Sequence, Tuple

Rows = List[Dict[str, object]]


def aggregate_rows(rows_per_run: Iterable[Rows], *, group_by: Sequence[str]) -> Rows:
    """Aggregate numeric columns of many row lists by ``group_by`` key.

    Raises :class:`ValueError` if any row lacks one of the ``group_by``
    columns — a misspelled group column would otherwise silently
    collapse every row into a single ``(None, …)`` group.
    """
    group_by = tuple(group_by)
    samples: Dict[Tuple, Dict[str, List[float]]] = {}
    group_values: Dict[Tuple, Dict[str, object]] = {}
    replicate_counts: Dict[Tuple, int] = {}

    for rows in rows_per_run:
        for row in rows:
            missing = [column for column in group_by if column not in row]
            if missing:
                raise ValueError(
                    f"group_by column(s) {missing} not present in row with "
                    f"columns {sorted(row)}"
                )
            key = tuple(row[column] for column in group_by)
            group_values.setdefault(key, {column: row[column] for column in group_by})
            replicate_counts[key] = replicate_counts.get(key, 0) + 1
            bucket = samples.setdefault(key, {})
            for column, value in row.items():
                if column in group_by:
                    continue
                if isinstance(value, bool) or not isinstance(value, (int, float)):
                    continue
                bucket.setdefault(column, []).append(float(value))

    aggregated: Rows = []
    for key in sorted(samples, key=lambda k: tuple(str(v) for v in k)):
        row: Dict[str, object] = dict(group_values[key])
        row["replicates"] = replicate_counts[key]
        for column, values in sorted(samples[key].items()):
            row[f"{column}_mean"] = statistics.fmean(values)
            row[f"{column}_min"] = min(values)
            row[f"{column}_max"] = max(values)
        aggregated.append(row)
    return aggregated


def aggregate_columns(
    columns: Sequence[str], group_by: Sequence[str], aggregated: Rows
) -> Tuple[str, ...]:
    """Display columns for an aggregated table, preserving base order.

    Group columns come first (in their original ``columns`` order, then
    any group columns not in ``columns``), then ``replicates``, then the
    ``_mean``/``_min``/``_max`` stats of every metric that survived
    aggregation — again in base-column order.
    """
    group_by = tuple(group_by)
    present = set()
    for row in aggregated:
        present.update(row)
    ordered_groups = [c for c in columns if c in group_by]
    ordered_groups += [c for c in group_by if c not in ordered_groups]
    stats_cols: List[str] = []
    for column in columns:
        if column in group_by:
            continue
        for stat in ("mean", "min", "max"):
            derived = f"{column}_{stat}"
            if derived in present:
                stats_cols.append(derived)
    return tuple(ordered_groups) + ("replicates",) + tuple(stats_cols)
