"""The scenario registry.

Experiment modules declare their sweeps with :func:`register_scenario`::

    @register_scenario(
        "e1",
        title="E1 — Safety under eventual weak exclusion",
        claim=CLAIM,
        columns=COLUMNS,
        group_by=("topology", "T_c"),
        spec=ScenarioSpec(topology=("ring", ...), horizon=400.0, seeds=(1,)),
    )
    def run_safety(*, seed: int = 1, ...): ...

The decorator records the function plus its metadata and returns it
unchanged, so the module's public ``run_*`` API is exactly what it was
before the registry existed.  Consumers (`Runner`, the CLI, benchmarks)
look scenarios up by name; :func:`ensure_registered` lazily imports
:mod:`repro.experiments` so lookups work in any process — including
process-pool workers that have imported nothing but this package.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.scenarios.spec import ScenarioSpec

RunFunction = Callable[..., List[Dict[str, object]]]


@dataclass(frozen=True)
class Scenario:
    """A registered sweep: metadata plus the function that executes one seed."""

    name: str
    title: str
    claim: str
    columns: Tuple[str, ...]
    spec: ScenarioSpec
    run: RunFunction
    group_by: Tuple[str, ...] = ()
    seed_param: str = "seed"
    experiment: str = field(default="")

    def __post_init__(self) -> None:
        if not self.experiment:
            # "e4b" belongs to experiment "e4"; "e1" to itself.
            object.__setattr__(self, "experiment", self.name.rstrip("abcdefgh") or self.name)

    def kwargs_for(self, seed: int, overrides: Optional[dict] = None) -> Dict[str, object]:
        """The full keyword set for one seed of this scenario."""
        kwargs: Dict[str, object] = dict(self.spec.params)
        if overrides:
            kwargs.update(overrides)
        kwargs[self.seed_param] = seed
        return kwargs


_REGISTRY: Dict[str, Scenario] = {}
_BOOTSTRAPPED = False


def register_scenario(
    name: str,
    *,
    title: str,
    claim: str,
    columns: Sequence[str],
    spec: ScenarioSpec,
    group_by: Sequence[str] = (),
    seed_param: str = "seed",
    experiment: str = "",
) -> Callable[[RunFunction], RunFunction]:
    """Class-style decorator registering ``fn`` as scenario ``name``.

    Re-registration under the same name replaces the entry (so module
    reloads in interactive sessions behave sanely) but a *different*
    function colliding with an existing name is a configuration error.
    """

    def decorator(fn: RunFunction) -> RunFunction:
        existing = _REGISTRY.get(name)
        if existing is not None and existing.run.__qualname__ != fn.__qualname__:
            raise ValueError(
                f"scenario {name!r} already registered by {existing.run.__qualname__}"
            )
        _REGISTRY[name] = Scenario(
            name=name,
            title=title,
            claim=claim,
            columns=tuple(columns),
            spec=spec,
            run=fn,
            group_by=tuple(group_by),
            seed_param=seed_param,
            experiment=experiment,
        )
        return fn

    return decorator


def ensure_registered() -> None:
    """Import the experiment modules so their decorators have run.

    Idempotent and cheap after the first call; the import is deferred to
    here (not module import time) to keep ``repro.scenarios`` free of a
    circular dependency on :mod:`repro.experiments`.
    """
    global _BOOTSTRAPPED
    if _BOOTSTRAPPED:
        return
    import repro.experiments  # noqa: F401  (side effect: registration)

    _BOOTSTRAPPED = True


def get_scenario(name: str) -> Scenario:
    """Look up a scenario by registry name."""
    ensure_registered()
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "(none)"
        raise KeyError(f"unknown scenario {name!r}; registered: {known}") from None


def all_scenarios() -> List[Scenario]:
    """Every registered scenario, in registration order."""
    ensure_registered()
    return list(_REGISTRY.values())


def scenario_names() -> List[str]:
    """Registry names, in registration order."""
    return [scenario.name for scenario in all_scenarios()]
