"""Declarative Scenario/Runner framework.

The seam between *describing* a sweep and *executing* it:

* :class:`ScenarioSpec` — frozen, hashable description (topology,
  detector family, crash/latency/workload regime, horizon, seeds,
  extra params);
* :func:`register_scenario` / :func:`get_scenario` /
  :func:`all_scenarios` — the registry the experiment modules populate;
* :class:`Runner` / :func:`run_scenario` — seed sweeps through a
  process pool (serial fallback) with a spec-hash JSON result cache
  under ``.repro_cache/``;
* :class:`RunResult` — per-seed rows plus replication-style
  aggregation;
* :func:`map_seeds` / :func:`aggregate_rows` — the same dispatch and
  aggregation for arbitrary run functions (what
  ``replication.replicate`` builds on).

See ``docs/SCENARIOS.md`` for the guided tour.
"""

from repro.scenarios.aggregate import aggregate_columns, aggregate_rows
from repro.scenarios.cache import CacheStats, DEFAULT_CACHE_DIR, ResultCache, default_cache_dir
from repro.scenarios.registry import (
    Scenario,
    all_scenarios,
    ensure_registered,
    get_scenario,
    register_scenario,
    scenario_names,
)
from repro.scenarios.runner import (
    RunResult,
    Runner,
    SeedResult,
    map_seeds,
    run_scenario,
    run_scenario_rows,
)
from repro.scenarios.spec import ScenarioSpec

__all__ = [
    "CacheStats",
    "DEFAULT_CACHE_DIR",
    "ResultCache",
    "RunResult",
    "Runner",
    "Scenario",
    "ScenarioSpec",
    "SeedResult",
    "aggregate_columns",
    "aggregate_rows",
    "all_scenarios",
    "default_cache_dir",
    "ensure_registered",
    "get_scenario",
    "map_seeds",
    "register_scenario",
    "run_scenario",
    "run_scenario_rows",
    "scenario_names",
]
