"""Declarative scenario specifications.

A :class:`ScenarioSpec` is the *description* of a sweep — which
topologies, which detector family, what crash/latency/workload regime,
how long, and over which seeds — divorced from the code that executes
it.  Specs are frozen, canonically serializable (:meth:`canonical`), and
content-hashable (:meth:`fingerprint`), which is what makes the result
cache and the process-pool dispatch in :mod:`repro.scenarios.runner`
possible: a worker process needs nothing but the registry name and a
params dict to reproduce a run, and a cache entry is valid exactly as
long as the canonical form matches.

Specs do not interpret their descriptive fields (``topology``,
``detector``, …) — the registered run function does, through its own
keyword defaults and the ``params`` mapping.  The descriptive fields
exist so the registry can be *listed* meaningfully (``repro experiments
--list``) and so future schedulers can shard on them.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace
from typing import Dict, Mapping, Tuple

from repro import __version__


@dataclass(frozen=True)
class ScenarioSpec:
    """Declarative description of one registered sweep.

    ``params`` holds the extra keyword arguments handed to the run
    function (beyond the seed); everything else is descriptive metadata
    that the runner, cache, and CLI listing use.  Values in ``params``
    must be JSON-serializable scalars/lists/dicts so the spec stays
    hashable and process-portable.
    """

    topology: Tuple[str, ...] = ()
    detector: str = "scripted"
    crashes: str = "none"
    latency: str = "zero"
    workload: str = "always-hungry"
    horizon: float = 0.0
    seeds: Tuple[int, ...] = (1,)
    params: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # Normalize mutable inputs so equality and hashing are stable.
        object.__setattr__(self, "topology", tuple(self.topology))
        object.__setattr__(self, "seeds", tuple(int(s) for s in self.seeds))
        object.__setattr__(self, "params", dict(self.params))

    def with_overrides(self, **params: object) -> "ScenarioSpec":
        """A copy with ``params`` merged over this spec's params."""
        merged = dict(self.params)
        merged.update(params)
        return replace(self, params=merged)

    def with_seeds(self, seeds) -> "ScenarioSpec":
        """A copy sweeping ``seeds`` instead of the default list."""
        return replace(self, seeds=tuple(int(s) for s in seeds))

    def canonical(self) -> Dict[str, object]:
        """JSON-ready canonical form (stable key order, plain types)."""
        return {
            "topology": list(self.topology),
            "detector": self.detector,
            "crashes": self.crashes,
            "latency": self.latency,
            "workload": self.workload,
            "horizon": self.horizon,
            "seeds": list(self.seeds),
            "params": {key: self.params[key] for key in sorted(self.params)},
        }

    def fingerprint(self, *, scenario: str = "", seed: object = None) -> str:
        """Content hash of this spec (optionally scoped to one seed).

        The package version is folded in so a cache populated by one
        release is never trusted by another.
        """
        payload = {
            "version": __version__,
            "scenario": scenario,
            "seed": seed,
            "spec": self.canonical(),
        }
        encoded = json.dumps(payload, sort_keys=True, default=str).encode("utf-8")
        return hashlib.sha256(encoded).hexdigest()

    def describe(self) -> str:
        """One-line summary for registry listings."""
        topo = ",".join(self.topology) if self.topology else "-"
        return (
            f"topology={topo} detector={self.detector} crashes={self.crashes} "
            f"latency={self.latency} workload={self.workload} "
            f"horizon={self.horizon:g} seeds={list(self.seeds)}"
        )
