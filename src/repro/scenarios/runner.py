"""Seed-sweep execution: serial, process-parallel, and cached.

The :class:`Runner` turns a registered scenario name into rows:

* resolves the scenario and merges any per-call parameter overrides;
* answers each seed from the spec-hash cache when allowed;
* executes the remaining seeds — through a
  :class:`concurrent.futures.ProcessPoolExecutor` when ``jobs > 1``,
  falling back to the serial path whenever a pool cannot be built or
  fed (sandboxed interpreters, unpicklable payloads);
* returns a :class:`RunResult` whose ``rows`` are in seed order and
  therefore identical for any job count.

Workers receive only ``(scenario name, kwargs, seed)`` — they rebuild
everything else from the registry, which
:func:`repro.scenarios.registry.ensure_registered` repopulates on first
lookup in any process.  :func:`map_seeds` exposes the same dispatch for
arbitrary run functions, which is how
:func:`repro.experiments.replication.replicate` parallelizes without
being scenario-aware.
"""

from __future__ import annotations

import json
import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from contextlib import ExitStack
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.scenarios.aggregate import aggregate_columns, aggregate_rows
from repro.scenarios.cache import ResultCache
from repro.scenarios.registry import Scenario, get_scenario
from repro.scenarios.spec import ScenarioSpec

Rows = List[Dict[str, object]]

# Failures that mean "this environment / payload cannot use a process
# pool", as opposed to a genuine error inside the scenario itself.
_POOL_FAILURES = (BrokenProcessPool, OSError, PermissionError, pickle.PicklingError)


def _execute_seed(
    name: str,
    kwargs: Dict[str, object],
    seed: int,
    collect_metrics: bool = False,
    collect_checks: bool = False,
) -> Tuple[Rows, float, Optional[dict], Optional[dict]]:
    """Pool worker: run one seed of a registered scenario.

    With ``collect_metrics`` the whole seed executes inside an ambient
    :func:`repro.obs.collecting` block, so every simulation the run
    function builds reports into one registry; the returned snapshot is
    a plain dict (pickle- and JSON-safe) covering the full seed.  With
    ``collect_checks`` the seed likewise runs inside
    :func:`repro.checks.collecting_checks`, and the merged
    :class:`~repro.checks.Verdict` of every table the seed built comes
    back in JSON form.
    """
    scenario = get_scenario(name)
    call = dict(kwargs)
    call[scenario.seed_param] = seed
    started = time.perf_counter()
    with ExitStack() as stack:
        registry = None
        collector = None
        if collect_metrics:
            from repro.obs import collecting

            registry = stack.enter_context(collecting())
        if collect_checks:
            from repro.checks import collecting_checks

            collector = stack.enter_context(collecting_checks())
        rows = scenario.run(**call)
    elapsed = time.perf_counter() - started
    snapshot: Optional[dict] = registry.snapshot() if registry is not None else None
    checks: Optional[dict] = (
        collector.verdict().to_json() if collector is not None else None
    )
    return rows, elapsed, snapshot, checks


def _call_seeded(run_fn, kwargs: Dict[str, object], seed_param: str, seed: int) -> Rows:
    """Pool worker for :func:`map_seeds` over an arbitrary function."""
    call = dict(kwargs)
    call[seed_param] = seed
    return run_fn(**call)


def _picklable(*objects: object) -> bool:
    try:
        for obj in objects:
            pickle.dumps(obj)
    except Exception:
        return False
    return True


def map_seeds(
    run_fn,
    *,
    seeds: Iterable[int],
    kwargs: Optional[dict] = None,
    seed_param: str = "seed",
    jobs: int = 1,
) -> List[Rows]:
    """Run ``run_fn`` once per seed; one row list per seed, in seed order.

    With ``jobs > 1`` the seeds fan out over a process pool; anything
    that prevents that (unpicklable function, no subprocess support)
    silently degrades to the serial path — the results are identical
    either way, only the wall clock differs.
    """
    seed_list = list(seeds)
    kwargs = dict(kwargs or {})
    if jobs > 1 and len(seed_list) > 1 and _picklable(run_fn, kwargs):
        try:
            with ProcessPoolExecutor(max_workers=min(jobs, len(seed_list))) as pool:
                futures = [
                    pool.submit(_call_seeded, run_fn, kwargs, seed_param, seed)
                    for seed in seed_list
                ]
                return [future.result() for future in futures]
        except _POOL_FAILURES:
            pass
    results: List[Rows] = []
    for seed in seed_list:
        call = dict(kwargs)
        call[seed_param] = seed
        results.append(run_fn(**call))
    return results


@dataclass(frozen=True)
class SeedResult:
    """Rows of one seed, plus how they were obtained.

    ``metrics`` is the seed's metrics snapshot (see
    :meth:`repro.obs.MetricsRegistry.snapshot`) when the run collected
    one — freshly computed or replayed from the cache — else None.
    ``checks`` is likewise the seed's merged check verdict in JSON form
    (see :meth:`repro.checks.Verdict.to_json`) when the run collected
    verdicts.
    """

    seed: int
    rows: Rows
    cached: bool
    elapsed: float
    metrics: Optional[dict] = None
    checks: Optional[dict] = None


@dataclass(frozen=True)
class RunResult:
    """Structured outcome of one scenario sweep."""

    scenario: str
    title: str
    claim: str
    columns: Tuple[str, ...]
    group_by: Tuple[str, ...]
    spec: ScenarioSpec
    seed_results: List[SeedResult] = field(default_factory=list)

    @property
    def seeds(self) -> Tuple[int, ...]:
        return tuple(result.seed for result in self.seed_results)

    @property
    def rows(self) -> Rows:
        """All rows, concatenated in seed order (deterministic)."""
        rows: Rows = []
        for result in self.seed_results:
            rows.extend(result.rows)
        return rows

    def rows_for(self, seed: int) -> Rows:
        for result in self.seed_results:
            if result.seed == seed:
                return result.rows
        raise KeyError(f"seed {seed} not part of this run")

    @property
    def cache_hits(self) -> int:
        return sum(1 for result in self.seed_results if result.cached)

    def merged_metrics(self) -> Optional[dict]:
        """Cross-seed metrics snapshot, or None if nothing was collected."""
        snapshots = [r.metrics for r in self.seed_results if r.metrics]
        if not snapshots:
            return None
        from repro.obs.metrics import merge_snapshots

        return merge_snapshots(snapshots)

    def merged_checks(self):
        """Cross-seed check :class:`~repro.checks.Verdict`, or None.

        Merges the per-seed verdicts with the same algebra the live
        cluster uses for per-host verdicts (fail dominates; counters
        sum, peaks take the max).
        """
        collected = [r.checks for r in self.seed_results if r.checks]
        if not collected:
            return None
        from repro.checks import Verdict

        return Verdict.merge(Verdict.from_json(checks) for checks in collected)

    @property
    def elapsed(self) -> float:
        """Total compute time across seeds (cache hits count as zero)."""
        return sum(result.elapsed for result in self.seed_results)

    def aggregate(self, group_by: Optional[Sequence[str]] = None) -> Rows:
        """Mean/min/max aggregation across seeds (replication-style)."""
        columns = tuple(group_by) if group_by is not None else self.group_by
        if not columns:
            raise ValueError(
                f"scenario {self.scenario!r} declares no group_by columns; "
                "pass group_by= explicitly"
            )
        return aggregate_rows((r.rows for r in self.seed_results), group_by=columns)

    def aggregate_table_columns(self, aggregated: Rows) -> Tuple[str, ...]:
        """Display columns matching :meth:`aggregate` output."""
        return aggregate_columns(self.columns, self.group_by, aggregated)


class Runner:
    """Executes registered scenarios: seed sweeps, caching, parallelism."""

    def __init__(
        self,
        *,
        jobs: int = 1,
        use_cache: bool = True,
        cache_dir=None,
        collect_metrics: bool = False,
        collect_checks: bool = False,
    ) -> None:
        self.jobs = max(1, int(jobs))
        self.use_cache = use_cache
        self.cache = ResultCache(cache_dir)
        # When collecting, a cached entry only counts as a hit if it
        # carries what the caller asked for (metrics snapshot / check
        # verdict) — older partial entries are recomputed so the report
        # never silently misses seeds.
        self.collect_metrics = collect_metrics
        self.collect_checks = collect_checks

    @property
    def cache_stats(self):
        """Hit/miss/byte tallies of this runner's cache instance."""
        return self.cache.stats

    def run(
        self,
        name: str,
        *,
        seeds: Optional[Iterable[int]] = None,
        overrides: Optional[dict] = None,
    ) -> RunResult:
        scenario = get_scenario(name)
        seed_list = [int(s) for s in (seeds if seeds is not None else scenario.spec.seeds)]
        if not seed_list:
            raise ValueError(f"scenario {name!r} needs at least one seed")
        effective = scenario.spec.with_seeds(seed_list)
        if overrides:
            effective = effective.with_overrides(**overrides)
        kwargs = dict(effective.params)

        cached: Dict[int, Tuple[Rows, Optional[dict], Optional[dict]]] = {}
        if self.use_cache:
            for seed in seed_list:
                hit = self.cache.load_entry(name, effective.fingerprint(scenario=name, seed=seed))
                if hit is None:
                    continue
                if self.collect_metrics and hit[1] is None:
                    continue  # rows-only entry: recompute to get metrics
                if self.collect_checks and hit[2] is None:
                    continue  # entry predates verdicts: recompute to get them
                cached[seed] = hit

        pending = [seed for seed in seed_list if seed not in cached]
        computed = self._execute(scenario, kwargs, pending)

        if self.use_cache:
            for seed in pending:
                rows, _, snapshot, checks = computed[seed]
                if _json_faithful(rows):
                    self.cache.store(
                        name,
                        effective.fingerprint(scenario=name, seed=seed),
                        rows,
                        metrics=snapshot,
                        checks=checks,
                    )

        seed_results = []
        for seed in seed_list:
            if seed in cached:
                rows, snapshot, checks = cached[seed]
                seed_results.append(SeedResult(seed, rows, True, 0.0, snapshot, checks))
            else:
                rows, elapsed, snapshot, checks = computed[seed]
                seed_results.append(SeedResult(seed, rows, False, elapsed, snapshot, checks))
        return RunResult(
            scenario=name,
            title=scenario.title,
            claim=scenario.claim,
            columns=scenario.columns,
            group_by=scenario.group_by,
            spec=effective,
            seed_results=seed_results,
        )

    def _execute(
        self, scenario: Scenario, kwargs: Dict[str, object], seeds: Sequence[int]
    ) -> Dict[int, Tuple[Rows, float, Optional[dict], Optional[dict]]]:
        if not seeds:
            return {}
        if self.jobs > 1 and len(seeds) > 1 and _picklable(kwargs):
            try:
                with ProcessPoolExecutor(max_workers=min(self.jobs, len(seeds))) as pool:
                    futures = {
                        seed: pool.submit(
                            _execute_seed,
                            scenario.name,
                            kwargs,
                            seed,
                            self.collect_metrics,
                            self.collect_checks,
                        )
                        for seed in seeds
                    }
                    return {seed: future.result() for seed, future in futures.items()}
            except _POOL_FAILURES:
                pass
        return {
            seed: _execute_seed(
                scenario.name, kwargs, seed, self.collect_metrics, self.collect_checks
            )
            for seed in seeds
        }


def _json_faithful(rows: Rows) -> bool:
    """True when rows survive a JSON round trip unchanged (safe to cache)."""
    try:
        return json.loads(json.dumps(rows)) == rows
    except (TypeError, ValueError):
        return False


def run_scenario(
    name: str,
    *,
    seeds: Optional[Iterable[int]] = None,
    jobs: int = 1,
    use_cache: bool = True,
    cache_dir=None,
    overrides: Optional[dict] = None,
    collect_metrics: bool = False,
    collect_checks: bool = False,
) -> RunResult:
    """One-call convenience over :class:`Runner`."""
    runner = Runner(
        jobs=jobs,
        use_cache=use_cache,
        cache_dir=cache_dir,
        collect_metrics=collect_metrics,
        collect_checks=collect_checks,
    )
    return runner.run(name, seeds=seeds, overrides=overrides)


def run_scenario_rows(name: str, **overrides: object) -> Rows:
    """Rows of a scenario's default sweep (the experiment ``main()`` path)."""
    return run_scenario(name, overrides=overrides or None).rows
