"""Spec-hash result cache.

Every (scenario, spec, seed) triple is deterministic, so its rows can be
memoized: the cache key is the spec fingerprint (which folds in the
package version, the scenario name, the merged params, and the seed),
and the value is the row list as JSON.  Entries live under
``.repro_cache/<scenario>/<hash>.json`` — one file per seed, so growing
a seed list only pays for the new seeds.

The cache is content-addressed and therefore never *invalidated*, only
missed: change any parameter (or the package version) and the key
changes.  Corrupt or unreadable entries are treated as misses.  Writes
are atomic (tmp file + rename) so parallel sweeps can share a cache
directory safely.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Dict, List, Optional

DEFAULT_CACHE_DIR = ".repro_cache"
_ENV_VAR = "REPRO_CACHE_DIR"

Rows = List[Dict[str, object]]


def default_cache_dir() -> Path:
    """Cache root: ``$REPRO_CACHE_DIR`` or ``.repro_cache`` in the cwd."""
    return Path(os.environ.get(_ENV_VAR) or DEFAULT_CACHE_DIR)


class ResultCache:
    """Filesystem-backed memo of per-seed scenario rows."""

    def __init__(self, root: Optional[os.PathLike] = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()

    def path_for(self, scenario: str, key: str) -> Path:
        return self.root / scenario / f"{key}.json"

    def load(self, scenario: str, key: str) -> Optional[Rows]:
        """The cached rows, or None on a miss (including corrupt entries)."""
        path = self.path_for(scenario, key)
        try:
            with open(path, "r", encoding="utf-8") as stream:
                payload = json.load(stream)
        except (OSError, ValueError):
            return None
        rows = payload.get("rows")
        if not isinstance(rows, list):
            return None
        return rows

    def store(self, scenario: str, key: str, rows: Rows) -> Path:
        """Persist rows atomically; returns the entry path."""
        path = self.path_for(scenario, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {"scenario": scenario, "key": key, "rows": rows}
        fd, tmp_name = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as stream:
                json.dump(payload, stream)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path

    def clear(self, scenario: Optional[str] = None) -> int:
        """Drop every entry (or just one scenario's); returns files removed."""
        target = self.root / scenario if scenario else self.root
        removed = 0
        if not target.exists():
            return removed
        for entry in sorted(target.rglob("*.json")):
            try:
                entry.unlink()
                removed += 1
            except OSError:
                pass
        return removed
