"""Spec-hash result cache.

Every (scenario, spec, seed) triple is deterministic, so its rows can be
memoized: the cache key is the spec fingerprint (which folds in the
package version, the scenario name, the merged params, and the seed),
and the value is the row list as JSON — plus, when the run collected
them, the seed's metrics snapshot and check verdict, so ``repro report``
on a warm cache needs no recomputation.  Entries live under
``.repro_cache/<scenario>/<hash>.json`` — one file per seed, so growing
a seed list only pays for the new seeds.

The cache is content-addressed and therefore never *invalidated*, only
missed: change any parameter (or the package version) and the key
changes.  Corrupt or unreadable entries are treated as misses.  Writes
are atomic (tmp file + rename) so parallel sweeps can share a cache
directory safely.

Every cache instance keeps :class:`CacheStats` — hits, misses, bytes in
and out — which ``repro experiments --cache-stats`` surfaces instead of
the historical silent behavior.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

DEFAULT_CACHE_DIR = ".repro_cache"
_ENV_VAR = "REPRO_CACHE_DIR"

Rows = List[Dict[str, object]]


def default_cache_dir() -> Path:
    """Cache root: ``$REPRO_CACHE_DIR`` or ``.repro_cache`` in the cwd."""
    return Path(os.environ.get(_ENV_VAR) or DEFAULT_CACHE_DIR)


@dataclass
class CacheStats:
    """Tallies of one cache instance's traffic."""

    hits: int = 0
    misses: int = 0
    bytes_read: int = 0
    stores: int = 0
    bytes_written: int = 0
    root: str = field(default="")

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> Optional[float]:
        return self.hits / self.lookups if self.lookups else None

    def describe(self) -> str:
        """One-line summary for CLI output."""
        rate = f"{self.hit_rate:.0%}" if self.hit_rate is not None else "-"
        return (
            f"cache {self.root or default_cache_dir()}: "
            f"{self.hits} hit(s) / {self.misses} miss(es) ({rate}), "
            f"{self.bytes_read} B read, {self.stores} store(s), "
            f"{self.bytes_written} B written"
        )


class ResultCache:
    """Filesystem-backed memo of per-seed scenario rows (+ metrics)."""

    def __init__(self, root: Optional[os.PathLike] = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.stats = CacheStats(root=str(self.root))

    def path_for(self, scenario: str, key: str) -> Path:
        return self.root / scenario / f"{key}.json"

    def load_entry(
        self, scenario: str, key: str
    ) -> Optional[Tuple[Rows, Optional[dict], Optional[dict]]]:
        """``(rows, metrics_or_None, checks_or_None)``, or None on a miss."""
        path = self.path_for(scenario, key)
        try:
            with open(path, "r", encoding="utf-8") as stream:
                raw = stream.read()
            payload = json.loads(raw)
        except (OSError, ValueError):
            self.stats.misses += 1
            return None
        rows = payload.get("rows")
        if not isinstance(rows, list):
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        self.stats.bytes_read += len(raw.encode("utf-8"))
        metrics = payload.get("metrics")
        checks = payload.get("checks")
        return (
            rows,
            metrics if isinstance(metrics, dict) else None,
            checks if isinstance(checks, dict) else None,
        )

    def load(self, scenario: str, key: str) -> Optional[Rows]:
        """The cached rows, or None on a miss (including corrupt entries)."""
        entry = self.load_entry(scenario, key)
        return entry[0] if entry is not None else None

    def store(
        self,
        scenario: str,
        key: str,
        rows: Rows,
        *,
        metrics: Optional[dict] = None,
        checks: Optional[dict] = None,
    ) -> Path:
        """Persist rows (and optional metrics/checks) atomically; returns the path."""
        path = self.path_for(scenario, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload: Dict[str, object] = {"scenario": scenario, "key": key, "rows": rows}
        if metrics is not None:
            payload["metrics"] = metrics
        if checks is not None:
            payload["checks"] = checks
        encoded = json.dumps(payload)
        fd, tmp_name = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as stream:
                stream.write(encoded)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stats.stores += 1
        self.stats.bytes_written += len(encoded.encode("utf-8"))
        return path

    def clear(self, scenario: Optional[str] = None) -> int:
        """Drop every entry (or just one scenario's); returns files removed."""
        target = self.root / scenario if scenario else self.root
        removed = 0
        if not target.exists():
            return removed
        for entry in sorted(target.rglob("*.json")):
            try:
                entry.unlink()
                removed += 1
            except OSError:
                pass
        return removed
