"""Binary wire codec for the dining and detector layers.

Algorithm 1 exchanges exactly four dining message types plus the
heartbeat probes of the ◇P₁ implementation.  The codec keeps the paper's
Section 7 message-size accounting honest on a real wire: every id is an
unsigned LEB128 varint, so a frame costs O(log n) bits for an n-process
system — the same growth rate :func:`repro.core.messages.message_size_bits`
assigns it (the constant differs: real framing pays byte alignment and a
length prefix).

Frame layout (all varints unsigned LEB128)::

    frame   := length:uvarint payload          # length = len(payload)
    payload := tag:u8 src:uvarint dst:uvarint seq:uvarint body context?
    tag     := kind | TRACED?                  # TRACED = 0x80 flag bit
    kind    := 0x01 Ping | 0x02 Ack | 0x03 ForkRequest | 0x04 Fork
             | 0x05 Heartbeat | 0x06 LeaseRequest | 0x07 LeaseGrant
             | 0x08 LeaseRelease | 0x09 LeaseDenied
             | 0x0a BakeryQuery | 0x0b BakeryNumber | 0x0c BakeryRequest
             | 0x0d BakeryOk | 0x0e RaRequest | 0x0f RaReply
             | 0x10 LrRequest | 0x11 LrBusy
    body    := ""                              # Ping, Ack, Fork
             | color:uvarint                   # ForkRequest
             | sent_at:f64-big-endian          # Heartbeat
             | resource:str ttl_ms:uvarint     # LeaseRequest
             | lease_id:uvarint ttl_ms:uvarint # LeaseGrant
             | lease_id:uvarint                # LeaseRelease
             | reason:str                      # LeaseDenied
             | ""                              # BakeryQuery, BakeryOk,
                                               # RaReply, LrBusy
             | number:uvarint                  # BakeryNumber, BakeryRequest
             | clock:uvarint                   # RaRequest
             | blocking:uvarint(0|1)           # LrRequest
    str     := length:uvarint utf8-bytes       # length <= 64
    context := trace:uvarint span:uvarint lamport:uvarint  # iff TRACED

The trace context is **optional and backward compatible**: a frame
without the ``TRACED`` flag is byte-identical to the historical
encoding (the golden vectors pin this), and tracing-enabled hosts only
pay the context bytes on the wire when a tracer is attached.  The
context is the sender's causal stamp (see
:mod:`repro.obs.tracing`): which request span emitted the message and
the sender's Lamport clock at the send, which is what lets a cluster
stitch one coherent cross-process trace out of per-host span logs.

``seq`` is the per-directed-channel sequence number (1-based, counting
every message on that channel regardless of layer).  It rides on the wire
so a receiver can assert the paper's channel assumption — FIFO, no loss,
no duplication — *live*: every arriving frame must carry exactly the next
expected sequence number.

The dining messages carry their sender pid in-band (``Ping.sender`` and
friends); the envelope's ``src`` is authoritative for routing, and
encoding refuses a message whose in-band sender disagrees with it, so a
decoded message always reconstructs bit-for-bit.
"""

from __future__ import annotations

import struct
from typing import Iterator, List, Optional, Tuple

from repro.baselines.messages import (
    BakeryNumber,
    BakeryOk,
    BakeryQuery,
    BakeryRequest,
    LrBusy,
    LrRequest,
    RaReply,
    RaRequest,
)
from repro.core.messages import Ack, Fork, ForkRequest, Ping
from repro.detectors.heartbeat import Heartbeat
from repro.errors import ReproError
from repro.locks.messages import LeaseDenied, LeaseGrant, LeaseRelease, LeaseRequest

__all__ = [
    "FrameDecoder",
    "TAG_TRACED",
    "TraceTag",
    "WireCodecError",
    "WireMessage",
    "decode_frame",
    "decode_frame_ex",
    "decode_message",
    "decode_message_ex",
    "encode_frame",
    "encode_message",
    "frame_size_bits",
    "frame_wire_bytes",
]


class WireCodecError(ReproError):
    """Malformed frame, unknown tag, or unencodable message."""


TAG_PING = 0x01
TAG_ACK = 0x02
TAG_FORK_REQUEST = 0x03
TAG_FORK = 0x04
TAG_HEARTBEAT = 0x05
TAG_LEASE_REQUEST = 0x06
TAG_LEASE_GRANT = 0x07
TAG_LEASE_RELEASE = 0x08
TAG_LEASE_DENIED = 0x09
TAG_BAKERY_QUERY = 0x0A
TAG_BAKERY_NUMBER = 0x0B
TAG_BAKERY_REQUEST = 0x0C
TAG_BAKERY_OK = 0x0D
TAG_RA_REQUEST = 0x0E
TAG_RA_REPLY = 0x0F
TAG_LR_REQUEST = 0x10
TAG_LR_BUSY = 0x11

#: Flag bit: the payload carries a trailing trace-context block.
TAG_TRACED = 0x80

#: The wire form of a span context: ``(trace_id, span_id, lamport)``.
#: Kept a plain tuple so the codec stays free of observability imports;
#: :class:`repro.obs.tracing.SpanContext` is tuple-compatible with it.
TraceTag = Tuple[int, int, int]

_TAG_OF_TYPE = {
    Ping: TAG_PING,
    Ack: TAG_ACK,
    ForkRequest: TAG_FORK_REQUEST,
    Fork: TAG_FORK,
    Heartbeat: TAG_HEARTBEAT,
    LeaseRequest: TAG_LEASE_REQUEST,
    LeaseGrant: TAG_LEASE_GRANT,
    LeaseRelease: TAG_LEASE_RELEASE,
    LeaseDenied: TAG_LEASE_DENIED,
    BakeryQuery: TAG_BAKERY_QUERY,
    BakeryNumber: TAG_BAKERY_NUMBER,
    BakeryRequest: TAG_BAKERY_REQUEST,
    BakeryOk: TAG_BAKERY_OK,
    RaRequest: TAG_RA_REQUEST,
    RaReply: TAG_RA_REPLY,
    LrRequest: TAG_LR_REQUEST,
    LrBusy: TAG_LR_BUSY,
}

#: Cap on the UTF-8 byte length of an in-frame string (resource names,
#: denial reasons); keeps every lease frame under MAX_PAYLOAD_BYTES.
MAX_STRING_BYTES = 64

#: Hard ceiling on one frame's payload (a dining frame is ~10 bytes; even
#: adversarial 64-bit ids stay under 64).  Keeps a corrupted length prefix
#: from allocating unbounded buffers.
MAX_PAYLOAD_BYTES = 256

WireMessage = Tuple[int, int, int, object]  # (src, dst, seq, message)


# ----------------------------------------------------------------------
# Varints (unsigned LEB128)
# ----------------------------------------------------------------------
def _encode_uvarint(value: int) -> bytes:
    if value < 0:
        raise WireCodecError(f"cannot encode negative value {value} as uvarint")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def _decode_uvarint(data: bytes, offset: int) -> Tuple[int, int]:
    """Decode one uvarint at ``offset``; returns (value, next_offset)."""
    result = 0
    shift = 0
    while True:
        if offset >= len(data):
            raise WireCodecError("truncated varint")
        if shift > 63:
            raise WireCodecError("varint exceeds 64 bits")
        byte = data[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7


def _uvarint_size(value: int) -> int:
    """Encoded byte length of ``value`` as an unsigned LEB128 varint."""
    if value < 0:
        raise WireCodecError(f"cannot encode negative value {value} as uvarint")
    size = 1
    value >>= 7
    while value:
        size += 1
        value >>= 7
    return size


def _encode_string(text: str) -> bytes:
    raw = text.encode("utf-8")
    if len(raw) > MAX_STRING_BYTES:
        raise WireCodecError(
            f"string of {len(raw)} UTF-8 bytes exceeds cap {MAX_STRING_BYTES}"
        )
    return _encode_uvarint(len(raw)) + raw


def _decode_string(data: bytes, offset: int) -> Tuple[str, int]:
    length, offset = _decode_uvarint(data, offset)
    if length > MAX_STRING_BYTES:
        raise WireCodecError(
            f"string of {length} UTF-8 bytes exceeds cap {MAX_STRING_BYTES}"
        )
    end = offset + length
    if end > len(data):
        raise WireCodecError("truncated string")
    try:
        return data[offset:end].decode("utf-8"), end
    except UnicodeDecodeError as exc:
        raise WireCodecError(f"malformed UTF-8 string: {exc}") from None


# ----------------------------------------------------------------------
# Message payloads
# ----------------------------------------------------------------------
def encode_message(
    src: int, dst: int, seq: int, message, context: Optional[TraceTag] = None
) -> bytes:
    """Encode one envelope payload (no length prefix).

    With ``context`` the payload gains the ``TRACED`` flag bit and a
    trailing ``trace span lamport`` varint block; without it the bytes
    are identical to the pre-tracing encoding.
    """
    tag = _TAG_OF_TYPE.get(type(message))
    if tag is None:
        raise WireCodecError(
            f"no wire encoding for message type {type(message).__name__}"
        )
    sender = getattr(message, "sender", None)
    if sender is not None and sender != src:
        raise WireCodecError(
            f"in-band sender {sender} disagrees with envelope src {src}"
        )
    head = (
        bytes((tag | TAG_TRACED if context is not None else tag,))
        + _encode_uvarint(src)
        + _encode_uvarint(dst)
        + _encode_uvarint(seq)
    )
    if tag == TAG_FORK_REQUEST:
        head += _encode_uvarint(message.color)
    elif tag == TAG_HEARTBEAT:
        head += struct.pack(">d", message.sent_at)
    elif tag == TAG_LEASE_REQUEST:
        head += _encode_string(message.resource) + _encode_uvarint(message.ttl_ms)
    elif tag == TAG_LEASE_GRANT:
        head += _encode_uvarint(message.lease_id) + _encode_uvarint(message.ttl_ms)
    elif tag == TAG_LEASE_RELEASE:
        head += _encode_uvarint(message.lease_id)
    elif tag == TAG_LEASE_DENIED:
        head += _encode_string(message.reason)
    elif tag in (TAG_BAKERY_NUMBER, TAG_BAKERY_REQUEST):
        head += _encode_uvarint(message.number)
    elif tag == TAG_RA_REQUEST:
        head += _encode_uvarint(message.clock)
    elif tag == TAG_LR_REQUEST:
        head += _encode_uvarint(1 if message.blocking else 0)
    if context is None:
        return head
    trace_id, span_id, lamport = context
    return (
        head
        + _encode_uvarint(trace_id)
        + _encode_uvarint(span_id)
        + _encode_uvarint(lamport)
    )


def decode_message_ex(payload: bytes) -> Tuple[int, int, int, object, Optional[TraceTag]]:
    """Decode one payload, surfacing the trace context when present."""
    if not payload:
        raise WireCodecError("empty payload")
    tag = payload[0] & ~TAG_TRACED
    traced = bool(payload[0] & TAG_TRACED)
    src, offset = _decode_uvarint(payload, 1)
    dst, offset = _decode_uvarint(payload, offset)
    seq, offset = _decode_uvarint(payload, offset)
    if tag == TAG_PING:
        message: object = Ping(src)
    elif tag == TAG_ACK:
        message = Ack(src)
    elif tag == TAG_FORK_REQUEST:
        color, offset = _decode_uvarint(payload, offset)
        message = ForkRequest(src, color)
    elif tag == TAG_FORK:
        message = Fork(src)
    elif tag == TAG_HEARTBEAT:
        if len(payload) - offset < 8:
            raise WireCodecError("truncated heartbeat timestamp")
        (sent_at,) = struct.unpack_from(">d", payload, offset)
        offset += 8
        message = Heartbeat(sent_at=sent_at)
    elif tag == TAG_LEASE_REQUEST:
        resource, offset = _decode_string(payload, offset)
        ttl_ms, offset = _decode_uvarint(payload, offset)
        message = LeaseRequest(src, resource, ttl_ms)
    elif tag == TAG_LEASE_GRANT:
        lease_id, offset = _decode_uvarint(payload, offset)
        ttl_ms, offset = _decode_uvarint(payload, offset)
        message = LeaseGrant(src, lease_id, ttl_ms)
    elif tag == TAG_LEASE_RELEASE:
        lease_id, offset = _decode_uvarint(payload, offset)
        message = LeaseRelease(src, lease_id)
    elif tag == TAG_LEASE_DENIED:
        reason, offset = _decode_string(payload, offset)
        message = LeaseDenied(src, reason)
    elif tag == TAG_BAKERY_QUERY:
        message = BakeryQuery(src)
    elif tag == TAG_BAKERY_NUMBER:
        number, offset = _decode_uvarint(payload, offset)
        message = BakeryNumber(src, number)
    elif tag == TAG_BAKERY_REQUEST:
        number, offset = _decode_uvarint(payload, offset)
        message = BakeryRequest(src, number)
    elif tag == TAG_BAKERY_OK:
        message = BakeryOk(src)
    elif tag == TAG_RA_REQUEST:
        clock, offset = _decode_uvarint(payload, offset)
        message = RaRequest(src, clock)
    elif tag == TAG_RA_REPLY:
        message = RaReply(src)
    elif tag == TAG_LR_REQUEST:
        blocking, offset = _decode_uvarint(payload, offset)
        if blocking > 1:
            raise WireCodecError(f"LrRequest blocking flag must be 0 or 1, got {blocking}")
        message = LrRequest(src, bool(blocking))
    elif tag == TAG_LR_BUSY:
        message = LrBusy(src)
    else:
        raise WireCodecError(f"unknown message tag 0x{tag:02x}")
    context: Optional[TraceTag] = None
    if traced:
        trace_id, offset = _decode_uvarint(payload, offset)
        span_id, offset = _decode_uvarint(payload, offset)
        lamport, offset = _decode_uvarint(payload, offset)
        context = (trace_id, span_id, lamport)
    if offset != len(payload):
        raise WireCodecError(
            f"{len(payload) - offset} trailing byte(s) after tag 0x{payload[0]:02x}"
        )
    return src, dst, seq, message, context


def decode_message(payload: bytes) -> WireMessage:
    """Inverse of :func:`encode_message` (any trace context is dropped)."""
    src, dst, seq, message, _ = decode_message_ex(payload)
    return src, dst, seq, message


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------
def encode_frame(
    src: int, dst: int, seq: int, message, context: Optional[TraceTag] = None
) -> bytes:
    """One length-prefixed frame, ready for a byte stream."""
    payload = encode_message(src, dst, seq, message, context)
    return _encode_uvarint(len(payload)) + payload


def decode_frame(data: bytes) -> WireMessage:
    """Decode exactly one frame; trailing bytes are an error."""
    length, offset = _decode_uvarint(data, 0)
    if len(data) - offset != length:
        raise WireCodecError(
            f"frame length {length} disagrees with {len(data) - offset} payload bytes"
        )
    return decode_message(data[offset:])


def decode_frame_ex(data: bytes):
    """Like :func:`decode_frame`, also returning the trace context (or None)."""
    length, offset = _decode_uvarint(data, 0)
    if len(data) - offset != length:
        raise WireCodecError(
            f"frame length {length} disagrees with {len(data) - offset} payload bytes"
        )
    return decode_message_ex(data[offset:])


class FrameDecoder:
    """Incremental frame decoder for a byte stream.

    Feed arbitrary chunks; complete frames come out in order.  Partial
    frames stay buffered until their bytes arrive — exactly the reassembly
    a TCP reader needs.

    With ``capture_context=True`` every decoded frame is a 5-tuple
    ``(src, dst, seq, message, context)`` where ``context`` is the
    frame's trace tag or ``None``; the default keeps the historical
    4-tuple shape.
    """

    def __init__(self, *, capture_context: bool = False) -> None:
        self._buffer = bytearray()
        self._capture_context = capture_context

    def feed(self, data: bytes) -> List[WireMessage]:
        """Absorb ``data``; return every now-complete frame."""
        self._buffer.extend(data)
        return list(self._drain())

    def _drain(self) -> Iterator[WireMessage]:
        while True:
            try:
                # The buffer is indexed directly (a bytearray yields ints,
                # exactly like bytes) — no per-frame prefix copy.
                length, offset = _decode_uvarint(self._buffer, 0)
            except WireCodecError:
                if len(self._buffer) >= 10:
                    raise  # 10 bytes cannot fail to hold a sane length varint
                return
            if length > MAX_PAYLOAD_BYTES:
                raise WireCodecError(
                    f"frame payload of {length} bytes exceeds cap {MAX_PAYLOAD_BYTES}"
                )
            end = offset + length
            if len(self._buffer) < end:
                return
            payload = bytes(self._buffer[offset:end])
            del self._buffer[:end]
            if self._capture_context:
                yield decode_message_ex(payload)
            else:
                yield decode_message(payload)

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered awaiting the rest of a frame."""
        return len(self._buffer)


def frame_wire_bytes(
    src: int, dst: int, seq: int, message, context: Optional[TraceTag] = None
) -> int:
    """Exact byte length of ``encode_frame(...)`` without building it.

    The live host's loopback fast path skips the encode/decode round trip
    entirely (the decoded tuple is already in hand) but still accounts
    frame sizes in its wire log; this computes the identical length from
    varint arithmetic alone, allocation-free.
    """
    tag = _TAG_OF_TYPE.get(type(message))
    if tag is None:
        raise WireCodecError(
            f"no wire encoding for message type {type(message).__name__}"
        )
    size = 1 + _uvarint_size(src) + _uvarint_size(dst) + _uvarint_size(seq)
    if tag == TAG_FORK_REQUEST:
        size += _uvarint_size(message.color)
    elif tag == TAG_HEARTBEAT:
        size += 8
    elif tag == TAG_LEASE_REQUEST:
        raw = len(message.resource.encode("utf-8"))
        size += _uvarint_size(raw) + raw + _uvarint_size(message.ttl_ms)
    elif tag == TAG_LEASE_GRANT:
        size += _uvarint_size(message.lease_id) + _uvarint_size(message.ttl_ms)
    elif tag == TAG_LEASE_RELEASE:
        size += _uvarint_size(message.lease_id)
    elif tag == TAG_LEASE_DENIED:
        raw = len(message.reason.encode("utf-8"))
        size += _uvarint_size(raw) + raw
    elif tag in (TAG_BAKERY_NUMBER, TAG_BAKERY_REQUEST):
        size += _uvarint_size(message.number)
    elif tag == TAG_RA_REQUEST:
        size += _uvarint_size(message.clock)
    elif tag == TAG_LR_REQUEST:
        size += 1
    if context is not None:
        trace_id, span_id, lamport = context
        size += (
            _uvarint_size(trace_id) + _uvarint_size(span_id) + _uvarint_size(lamport)
        )
    return _uvarint_size(size) + size


def frame_size_bits(
    src: int, dst: int, seq: int, message, context: Optional[TraceTag] = None
) -> int:
    """Exact on-the-wire size of one frame, in bits.

    Used by tests to confirm the real encoding keeps the paper's O(log n)
    growth: for the dining types this is a constant plus the varint cost
    of two pids and a sequence number, each ⌈⌈log₂ x⌉/7⌉ bytes.
    """
    return 8 * frame_wire_bytes(src, dst, seq, message, context)
