"""Live asyncio runtime: Algorithm 1 over real transports.

The discrete-event kernel (:mod:`repro.sim`) executes the actors under a
virtual clock; this package hosts the **same actor objects, unchanged**
over wall-clock time and real byte streams:

* :mod:`repro.net.codec` — the compact binary wire format for the four
  dining message types plus detector heartbeats (length-prefixed frames,
  varint ids: O(log n) bits on the wire, matching the paper's accounting
  in :func:`repro.core.messages.message_size_bits`);
* :mod:`repro.net.substrate` — :class:`LiveSubstrate`, the asyncio
  implementation of the :class:`repro.core.substrate.Substrate` protocol
  (wall-clock ``now``, ``loop.call_later`` timers, ``call_soon`` guard
  re-evaluation);
* :mod:`repro.net.host` — :class:`AsyncHost`, which runs one or many
  actors in one event loop with per-edge FIFO links (in-process loopback,
  TCP, or Unix sockets), a wall-clock heartbeat ◇P₁, live invariant
  checking, wire logging, and crash injection via connection kill;
* :mod:`repro.net.cluster` — the multi-process launcher behind
  ``repro cluster`` / ``repro serve``: spawns one OS process per host,
  merges the traces and wire logs afterwards, and renders the
  safety/fairness verdict plus Prometheus metrics.
"""

from repro.net.codec import (
    FrameDecoder,
    WireCodecError,
    decode_message,
    encode_frame,
    encode_message,
    frame_size_bits,
)
from repro.net.host import AsyncHost, HostConfig, WireEvent
from repro.net.substrate import LiveSubstrate, LiveTimer

__all__ = [
    "AsyncHost",
    "FrameDecoder",
    "HostConfig",
    "LiveSubstrate",
    "LiveTimer",
    "WireCodecError",
    "WireEvent",
    "decode_message",
    "encode_frame",
    "encode_message",
    "frame_size_bits",
]
