"""AsyncHost: Algorithm 1 actors on a real asyncio event loop.

One :class:`AsyncHost` owns one event loop and hosts one or more
**unchanged** :class:`~repro.core.diner.DinerActor` objects through
:class:`~repro.net.substrate.LiveSubstrate`.  Everything the simulator
kernel provided under virtual time is re-realised under wall-clock time:

* **Links** — every message (local or remote) passes through the binary
  codec.  Actors on the same host are linked through ``loop.call_soon``
  (asyncio's FIFO ready queue preserves send order); actors on different
  hosts are linked through one TCP or Unix-socket connection per directed
  host pair (TCP byte ordering makes every directed channel FIFO).
* **◇P₁** — the same :class:`~repro.detectors.heartbeat.HeartbeatDetector`
  used under the kernel, now driven by wall-clock timers: heartbeats every
  ``heartbeat_interval`` seconds, adaptive per-neighbor deadlines.
* **Crash injection** — a scheduled :meth:`~repro.core.substrate.Actor.crash`
  freezes the actor (no more steps, deliveries dropped); once *every*
  local actor is crashed the host severs its connections, which is what a
  process crash looks like from the rest of the cluster.
* **Live checking** — the same :func:`repro.checks.standard_suite` the
  simulator kernel runs, fed online from this host's vantage point:
  state probes after every local step, message events on fully local
  edges, and deliver/drop events for inbound cross-host traffic
  (per-directed-channel sequence numbers ride in every frame, so the
  FIFO/no-loss assumption is asserted live).  Cross-host edges are
  re-judged post-hoc from the merged wire logs (see
  :mod:`repro.net.cluster`), through the identical checkers.
* **Observability** — the same metric names as the simulator
  (``net.messages_sent_total``, ``net.in_transit``, ``dining.*``) in a
  :class:`~repro.obs.metrics.MetricsRegistry`, plus an append-only wire
  log of every send/deliver/drop with wall-clock timestamps.

Exceptions raised inside actor steps or checkers are captured as run
violations (never thrown through the event loop), so a run always
completes and reports everything it saw.
"""

from __future__ import annotations

import asyncio
import json
import os
import time
from dataclasses import dataclass
from typing import Dict, List, Mapping, NamedTuple, Optional, Sequence, Tuple

from repro.checks import (
    PENDING_PING,
    QUIESCENCE,
    CheckConfig,
    DeliverEvent,
    DropEvent,
    ProbeEvent,
    SendEvent,
    Verdict,
    Violation,
    annotate_violations,
    event_from_trace_record,
    standard_suite,
)
from repro.core.diner import DinerActor
from repro.core.substrate import ProcessId
from repro.core.workload import AlwaysHungry, Workload
from repro.detectors.heartbeat import HeartbeatDetector
from repro.errors import ConfigurationError
from repro.graphs.coloring import Coloring, greedy_coloring, validate_coloring
from repro.graphs.conflict import ConflictGraph
from repro.graphs.membership import MembershipDelta, MembershipLog, TopologyTimeline
from repro.locks.messages import LeaseDenied
from repro.net.codec import (
    FrameDecoder,
    WireCodecError,
    encode_frame,
    frame_wire_bytes,
)
from repro.net.substrate import LiveSubstrate
from repro.obs.flight import FlightRecorder
from repro.obs.instrument import NetworkInstrument, TraceInstrument
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import (
    Span,
    SpanAssembler,
    SpanContext,
    completed_meals,
    dump_spans,
    flush_span_metrics,
    span_to_dict,
)
from repro.sim.monitors import message_layer
from repro.sim.rng import RandomStreams
from repro.trace.events import Crash, DoorwayChange, PhaseChange
from repro.trace.recorder import TraceRecorder
from repro.trace.serialize import dump_path, record_to_dict

__all__ = ["AsyncHost", "HostConfig", "WireEvent", "run_host"]


@dataclass
class HostConfig:
    """Numeric knobs of a live run; one instance is shared by a cluster.

    Defaults are scaled for second-long demonstration runs: eating lasts
    50 ms and the detector heartbeats every 250 ms, so a 2-second run
    sees dozens of meals and several detector periods.
    """

    duration: float = 2.0
    seed: int = 0
    eat_time: float = 0.05
    think_time: float = 0.01
    max_sessions: Optional[int] = None
    heartbeat_interval: float = 0.25
    initial_timeout: float = 0.75
    timeout_increment: float = 0.25
    channel_bound: int = 4
    connect_timeout: float = 10.0
    #: Request tracing: span assembly plus the optional trace-context tag
    #: on every outbound frame (untraced peers decode them regardless).
    tracing: bool = True
    #: Serve Prometheus text on ``http://127.0.0.1:<port>/metrics`` while
    #: the host runs (0 = pick a free port; None = no endpoint).
    scrape_port: Optional[int] = None
    #: Dump the flight-recorder rings here on a FAIL verdict or any
    #: recorded violation (None = recorder off).
    flight_dir: Optional[str] = None
    flight_capacity: int = 512


class WireEvent(NamedTuple):
    """One observed transport event, timestamped on the shared epoch clock.

    ``kind`` is ``send``, ``deliver``, or ``drop`` (delivery attempt at a
    crashed actor).  Both endpoints of a cross-host edge log with the same
    machine's clock, so merged wire logs reconstruct exact per-edge
    occupancy with no skew correction.  A named tuple rather than a
    dataclass: the wire log appends two of these per local message, and
    tuple construction is the cheapest allocation the interpreter offers.
    """

    kind: str
    src: ProcessId
    dst: ProcessId
    type: str
    layer: str
    seq: int
    time: float
    bits: int


class AsyncHost:
    """Hosts a subset of a conflict graph's diners on one event loop.

    Parameters
    ----------
    graph:
        The full conflict graph (every host knows the whole topology).
    local_pids:
        The processes this host runs; default all of them (single-host
        loopback mode).
    placement:
        pid -> host index, for routing.  Defaults to everything local.
    host_index, addresses, transport:
        This host's identity, the host-index -> address map, and the link
        kind: ``loopback`` (in-process only), ``unix`` (address is a
        socket path), or ``tcp`` (address is a ``[host, port]`` pair).
    epoch:
        Shared wall-clock zero (``time.time()`` units).  The cluster
        launcher picks one instant slightly in the future and hands it to
        every host, so ``now`` is cross-process comparable and all hosts
        start their actors together.  Defaults to "when run() starts".
    crash_times:
        pid -> crash instant (seconds after the epoch) for local pids.
    inject_latency:
        Optional adversarial delay hook for *local* edges:
        ``inject_latency(src, dst, message, now)`` returns extra wall
        seconds to hold the message before delivery.  When set, every
        local delivery routes through ``loop.call_later`` and is clamped
        to the channel's latest scheduled delivery, so injected jitter
        can never reorder a FIFO channel.  The fuzz engine uses this to
        run the same latency adversaries the kernel runs.
    diner_factory:
        Optional substitute actor constructor with the
        :class:`~repro.core.diner.DinerActor` signature (the mutation
        harness injects seeded bugs through it).
    detector:
        Optional detector *factory* with the kernel table's contract —
        called with the (union) graph.  ``None`` keeps the live default,
        a :class:`~repro.detectors.heartbeat.HeartbeatDetector`; the
        bake-off passes :class:`~repro.detectors.null.NullDetector` for
        the crash-oblivious classical baselines.
    """

    def __init__(
        self,
        graph: ConflictGraph,
        *,
        local_pids: Optional[Sequence[ProcessId]] = None,
        config: Optional[HostConfig] = None,
        placement: Optional[Mapping[ProcessId, int]] = None,
        host_index: int = 0,
        addresses: Optional[Mapping[int, object]] = None,
        transport: str = "loopback",
        epoch: Optional[float] = None,
        crash_times: Optional[Mapping[ProcessId, float]] = None,
        workload: Optional[Workload] = None,
        coloring: Optional[Coloring] = None,
        registry: Optional[MetricsRegistry] = None,
        run: str = "live",
        inject_latency=None,
        diner_factory=None,
        detector=None,
        membership: Optional[MembershipLog] = None,
    ) -> None:
        if transport not in ("loopback", "unix", "tcp"):
            raise ConfigurationError(f"unknown transport {transport!r}")
        self.graph = graph
        self.config = config or HostConfig()
        self.host_index = int(host_index)
        self.transport = transport
        self._addresses = dict(addresses or {})
        self._epoch: Optional[float] = epoch
        self._finished = False
        self.loop: Optional[asyncio.AbstractEventLoop] = None

        # Dynamic membership: delta times are in host seconds (seconds
        # after the run epoch — callers scale plan time before handing
        # the log over).  The union graph — every node and edge that
        # ever exists — takes the static graph's role for coloring, the
        # detector, actor construction, and checker wiring, exactly as
        # the kernel table does; the per-epoch views restrict each
        # actor's live link set.
        self.membership = membership if membership is not None else MembershipLog()
        dynamic = bool(self.membership)
        self.timeline = TopologyTimeline(graph, self.membership) if dynamic else None
        union = self.timeline.union() if dynamic else graph
        self.union_graph = union
        self._membership_epoch = 0
        self._pending_membership: List[MembershipDelta] = list(self.membership)
        if dynamic and transport != "loopback":
            # rejoin and edge churn rely on this host's authoritative
            # per-channel sequence counters to fence stale traffic; on a
            # multi-host cluster only join/leave have that property.
            for delta in self.membership:
                if delta.verb in ("rejoin", "add_edge", "remove_edge"):
                    raise ConfigurationError(
                        f"membership verb {delta.verb!r} requires loopback "
                        "transport (single-host run)"
                    )

        pids = tuple(local_pids) if local_pids is not None else union.nodes
        for pid in pids:
            if pid not in union:
                raise ConfigurationError(f"local pid {pid} is not in the conflict graph")
        self.local_pids: Tuple[ProcessId, ...] = tuple(sorted(pids))

        self._placement: Dict[ProcessId, int] = (
            dict(placement)
            if placement is not None
            else {pid: self.host_index for pid in union.nodes}
        )
        for pid in union.nodes:
            if pid not in self._placement:
                raise ConfigurationError(f"placement does not cover process {pid}")
        if transport == "loopback":
            remote = [p for p in union.nodes if self._placement[p] != self.host_index]
            if remote:
                raise ConfigurationError(
                    f"loopback transport cannot reach remote pids {remote}"
                )

        self.streams = RandomStreams(self.config.seed)
        self.coloring = coloring if coloring is not None else greedy_coloring(union)
        validate_coloring(union, self.coloring)
        if detector is None:
            self.detector = HeartbeatDetector(
                union,
                interval=self.config.heartbeat_interval,
                initial_timeout=self.config.initial_timeout,
                timeout_increment=self.config.timeout_increment,
            )
        else:
            # A factory with the kernel table's detector contract:
            # called with the (union) graph, so crash-oblivious baselines
            # can run live with NullDetector and spend zero heartbeats.
            self.detector = detector(union)
        self.workload = workload if workload is not None else AlwaysHungry(
            eat_time=self.config.eat_time,
            think_time=self.config.think_time,
            max_sessions=self.config.max_sessions,
        )
        self.trace = TraceRecorder()

        self.registry = registry if registry is not None else MetricsRegistry(profile=False)
        self._net_probe = NetworkInstrument(
            self.registry, run=run, bound=self.config.channel_bound
        )
        self._trace_probe = TraceInstrument(self.registry, union, self)
        self._trace_probe.attach(self.trace)
        self.registry.add_finalizer(self._flush_probes)

        self._make_diner = diner_factory if diner_factory is not None else DinerActor
        make_diner = self._make_diner
        self.diners: Dict[ProcessId, DinerActor] = {}
        for pid in self.local_pids:
            if dynamic:
                if pid not in graph:
                    continue  # joins later; its actor spawns at delta time
                diner = make_diner(
                    pid,
                    union,
                    self.coloring,
                    self.detector,
                    self.workload,
                    self.trace,
                    neighbors=graph.neighbors(pid),
                )
            else:
                diner = make_diner(
                    pid, graph, self.coloring, self.detector, self.workload, self.trace
                )
            diner.bind_substrate(LiveSubstrate(self, pid))
            self.diners[pid] = diner

        self._inject_latency = inject_latency
        # Latest scheduled (delayed) delivery per local directed channel;
        # clamping against it keeps injected jitter FIFO-safe.
        self._delay_front: Dict[Tuple[ProcessId, ProcessId], float] = {}
        # Channel fences (dynamic membership): deliveries on a fenced
        # directed channel with seq <= fence are dropped — the live
        # analogue of the kernel network's rejoin/edge-rebuild hygiene.
        self._fences: Dict[Tuple[ProcessId, ProcessId], int] = {}

        local = set(self.local_pids)
        self._local_edges = tuple(
            edge for edge in sorted(union.edges) if edge[0] in local and edge[1] in local
        )

        self._crash_times: Dict[ProcessId, float] = {
            pid: float(t)
            for pid, t in (crash_times or {}).items()
            if pid in local
        }

        # The same substrate-agnostic suite the kernel runs, judging what
        # this host can see: local edges exactly, inbound remote channels
        # from the receiving side.  Violations are collected, never
        # raised — a live run always completes and reports what it saw.
        final_nodes = self.timeline.final().graph.nodes if dynamic else union.nodes
        # Baseline factories build actors without Algorithm 1's local
        # variables; the DinerLocal/PendingPing probes only apply to the
        # real DinerActor (mirrors DiningTable's auto-detection).
        if self.diners:
            diner_locals = all(
                isinstance(d, DinerActor) for d in self.diners.values()
            )
        else:
            diner_locals = isinstance(make_diner, type) and issubclass(
                make_diner, DinerActor
            )
        self.checks = standard_suite(
            self._local_edges,
            CheckConfig(
                channel_bound=self.config.channel_bound,
                correct=tuple(
                    pid
                    for pid in self.local_pids
                    if pid not in self._crash_times and pid in final_nodes
                ),
                crash_time_of=self._crash_times.get,
            ),
            on_violation=self._on_check_violation,
            diner_locals=diner_locals,
            dynamic=dynamic,
            membership=self.timeline,
        )
        self._probe = ProbeEvent(0.0, self.diners)
        # Per-pid partial probes: a step at one diner can only change that
        # diner's own flags and the fork/token state of its incident
        # edges, so post-step checking restricts to those (the full-scan
        # probe remains for steps without a single responsible pid).
        self._pid_probes: Dict[ProcessId, ProbeEvent] = {
            pid: ProbeEvent(
                0.0,
                self.diners,
                edges=tuple(e for e in self._local_edges if pid in e),
                pairs=((pid, None),),
            )
            for pid in self.local_pids
        }
        self.trace.add_listener(self._on_trace_record, types=(PhaseChange, Crash))
        self._end: Optional[float] = None

        self._next_seq: Dict[Tuple[ProcessId, ProcessId], int] = {}
        self.wire_events: List[WireEvent] = []
        self.violations: List[str] = []

        # Request tracing: lifecycle records drive the span assembler;
        # message stamps ride the wire as the codec's optional context
        # block, so cross-host spans merge without a shared clock oracle.
        self.tracer: Optional[SpanAssembler] = None
        self.spans: List[Span] = []
        if self.config.tracing:
            self.tracer = SpanAssembler()
            self.trace.add_listener(
                self._on_span_record, types=(PhaseChange, DoorwayChange, Crash)
            )

        self.flight: Optional[FlightRecorder] = None
        if self.config.flight_dir is not None:
            self.flight = FlightRecorder(self.config.flight_capacity)
            self.trace.add_listener(self._on_flight_record)

        self._server = None
        self._scrape_server = None
        self.scrape_address: Optional[Tuple[str, int]] = None
        self._writers: Dict[int, asyncio.StreamWriter] = {}
        self._reader_tasks: List[asyncio.Task] = []
        self._conn_writers: List[asyncio.StreamWriter] = []
        # Outbound coalescing: frames for a peer accumulate in one buffer
        # and a single call_soon flushes the batch — one syscall per loop
        # turn per peer instead of one writer.write per frame.
        self._out_buffers: Dict[int, bytearray] = {}
        self._flush_pending: set = set()
        #: Installed by :meth:`repro.locks.service.LockService.install`.
        self.lock_service = None

    # ------------------------------------------------------------------
    # Substrate surface (consumed by LiveSubstrate)
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Wall-clock seconds since the shared run epoch."""
        if self._epoch is None:
            return 0.0
        return time.time() - self._epoch

    @property
    def placement(self) -> Dict[ProcessId, int]:
        """The pid -> host-index routing map (read-only by convention)."""
        return self._placement

    def guarded(self, callback, label: str = "", pid: Optional[ProcessId] = None):
        """Wrap an actor callback: capture exceptions, then run checkers.

        With ``pid`` the post-step probe restricts to that diner's state
        and incident edges (a timer or reevaluation callback can only
        have changed its own actor); without it the full scan runs.
        """

        def step() -> None:
            if self._finished:
                return
            try:
                callback()
            except Exception as exc:  # noqa: BLE001 - every actor fault is a finding
                self._record_violation(f"{label or 'step'}: {exc}")
                return
            self._after_step(pid)

        return step

    def transmit(self, src: ProcessId, dst: ProcessId, message) -> None:
        """Route one message: local FIFO queue or the peer connection.

        Local edges never touch the codec: the decoded form is what the
        receiving actor wants, so the message object rides ``call_soon``
        directly and only its *would-be* frame size is accounted
        (:func:`frame_wire_bytes` — exact, allocation-free).  Remote
        edges encode once and coalesce into the peer's output buffer.
        """
        if self._finished:
            return
        key = (src, dst)
        seq = self._next_seq.get(key, 0) + 1
        self._next_seq[key] = seq
        now = self.now
        context = None if self.tracer is None else self.tracer.send(now, src)
        name = type(message).__name__
        layer = message_layer(message)
        if self._placement[dst] == self.host_index:
            bits = 8 * frame_wire_bytes(src, dst, seq, message, context)
            self._wire(WireEvent("send", src, dst, name, layer, seq, now, bits))
            # Local edge: both endpoints observable, so the live per-edge
            # gauge and the Section 7 bound checker are exact here.
            self._net_probe.on_send(src, dst, message, now)
            self.checks.observe(SendEvent(now, src, dst, name, layer, seq))
            if self._inject_latency is None:
                self.loop.call_soon(self._receive, src, dst, seq, message, context)
            else:
                # Once a channel carries injected delays, every delivery on
                # it goes through call_later and is clamped to the channel
                # front — mixing call_soon with call_later could reorder.
                # Work in loop time: call_later schedules on the loop's
                # monotonic clock, and equal deadlines are not stable in
                # its timer heap — the front is therefore kept in loop
                # coordinates and each delivery lands strictly after it.
                delay = float(self._inject_latency(src, dst, message, now) or 0.0)
                when = self.loop.time() + max(0.0, delay)
                front = self._delay_front.get(key)
                if front is not None and when <= front:
                    when = front + 1e-6
                self._delay_front[key] = when
                self.loop.call_at(when, self._receive, src, dst, seq, message, context)
        else:
            frame = encode_frame(src, dst, seq, message, context)
            self._wire(
                WireEvent("send", src, dst, name, layer, seq, now, 8 * len(frame))
            )
            self.registry.counter("net.messages_sent_total", type=name, layer=layer).inc()
            peer = self._placement[dst]
            writer = self._writers.get(peer)
            if writer is None or writer.is_closing():
                # The peer is gone (crashed hosts sever their links, and
                # hosts wind down independently): the message is lost in
                # transit, exactly a crash-model drop.
                self._wire(
                    WireEvent("drop", src, dst, name, layer, seq, now, 8 * len(frame))
                )
                self.registry.counter(
                    "net.messages_dropped_total", type=name, layer=layer
                ).inc()
            else:
                self._buffer_frame(peer, frame)

    # ------------------------------------------------------------------
    # Delivery
    # ------------------------------------------------------------------
    def _buffer_frame(self, peer: int, frame: bytes) -> None:
        """Append to the peer's output buffer; flush once per loop turn."""
        buffer = self._out_buffers.get(peer)
        if buffer is None:
            buffer = self._out_buffers[peer] = bytearray()
        buffer += frame
        if peer not in self._flush_pending:
            self._flush_pending.add(peer)
            self.loop.call_soon(self._flush_peer, peer)

    def _flush_peer(self, peer: int) -> None:
        self._flush_pending.discard(peer)
        buffer = self._out_buffers.get(peer)
        if not buffer:
            return
        writer = self._writers.get(peer)
        if writer is not None and not writer.is_closing():
            writer.write(bytes(buffer))
        buffer.clear()

    def _flush_all_peers(self) -> None:
        for peer in list(self._out_buffers):
            self._flush_peer(peer)

    def _receive(
        self,
        src: ProcessId,
        dst: ProcessId,
        seq: int,
        message,
        context: Optional[Tuple[int, int, int]] = None,
    ) -> None:
        if self._finished:
            return
        actor = self.diners.get(dst)
        now = self.now
        name = type(message).__name__
        layer = message_layer(message)
        local_src = self._placement[src] == self.host_index
        fence = self._fences.get((src, dst))
        if fence is not None and 0 < seq <= fence:
            # Stale traffic from before a rejoin or edge rebuild: drop at
            # delivery, exactly like the kernel network's channel fence.
            self._wire(WireEvent("drop", src, dst, name, layer, seq, now, 0))
            self.checks.observe(DropEvent(now, src, dst, name, layer, seq))
            if local_src:
                self._net_probe.on_drop(src, dst, message, now)
            return
        if actor is None:
            if self.timeline is not None and dst in self.union_graph:
                # Dynamic run: the destination has not joined yet (or has
                # left for good).  Detector probing keeps flowing to such
                # pids by design, so this is a drop, not a fault.
                self._wire(WireEvent("drop", src, dst, name, layer, seq, now, 0))
                self.checks.observe(DropEvent(now, src, dst, name, layer, seq))
                if local_src:
                    self._net_probe.on_drop(src, dst, message, now)
                return
            self._record_violation(f"frame for non-local pid {dst} ({name} from {src})")
            return
        if actor.crashed:
            self._wire(
                WireEvent("drop", src, dst, name, layer, seq, now, 0)
            )
            # The FIFO checker judges the carried seq either way; channel
            # occupancy only retires sends it actually saw (local edges).
            self.checks.observe(DropEvent(now, src, dst, name, layer, seq))
            if local_src:
                self._net_probe.on_drop(src, dst, message, now)
            else:
                self.registry.counter(
                    "net.messages_dropped_total", type=name, layer=layer
                ).inc()
            return
        self._wire(
            WireEvent("deliver", src, dst, name, layer, seq, now, 0)
        )
        if self.tracer is not None:
            if context is not None and type(context) is not SpanContext:
                context = SpanContext(*context)
            self.tracer.receive(now, src, dst, name, context)
        self.checks.observe(DeliverEvent(now, src, dst, name, layer, seq))
        if local_src:
            self._net_probe.on_deliver(src, dst, message, now)
        else:
            self.registry.counter(
                "net.messages_delivered_total", type=name, layer=layer
            ).inc()
        try:
            actor.deliver(src, message)
        except Exception as exc:  # noqa: BLE001 - every actor fault is a finding
            self._record_violation(f"deliver {name} {src}->{dst}: {exc}")
            return
        self._after_step(dst)

    # ------------------------------------------------------------------
    # Checking
    # ------------------------------------------------------------------
    def _after_step(self, pid: Optional[ProcessId] = None) -> None:
        probe = self._probe if pid is None else self._pid_probes.get(pid, self._probe)
        probe.time = self.now
        self.checks.observe(probe)

    def _on_trace_record(self, record) -> None:
        event = event_from_trace_record(record)
        if event is not None:
            self.checks.observe(event)

    def _on_span_record(self, record) -> None:
        tracer = self.tracer
        if type(record) is PhaseChange:
            tracer.on_phase(record.time, record.pid, record.old_phase, record.new_phase)
        elif type(record) is DoorwayChange:
            tracer.on_doorway(record.time, record.pid, record.inside)
        else:
            tracer.on_crash(record.time, record.pid)

    def _on_flight_record(self, record) -> None:
        self.flight.record_trace(record_to_dict(record))

    def _wire(self, event: WireEvent) -> None:
        self.wire_events.append(event)
        if self.flight is not None:
            self.flight.record_wire(event._asdict())

    def _on_check_violation(self, violation: Violation) -> None:
        self._record_violation(f"{violation.prop}: {violation.detail}")

    def _record_violation(self, detail: str) -> None:
        self.violations.append(detail)

    def _flush_probes(self) -> None:
        self._net_probe.flush()
        self._trace_probe.flush()

    # ------------------------------------------------------------------
    # Transport lifecycle
    # ------------------------------------------------------------------
    def _peer_hosts(self) -> Tuple[int, ...]:
        """Host indices this host exchanges messages with.

        Peering is over the union graph: an edge that only exists after
        a join still needs its socket, and pre-dialing everything at
        start-up keeps the mid-run join path free of connect retries.
        """
        peers = set()
        for pid in self.local_pids:
            for neighbor in self.union_graph.neighbors(pid):
                owner = self._placement[neighbor]
                if owner != self.host_index:
                    peers.add(owner)
        return tuple(sorted(peers))

    async def _start_scrape(self) -> None:
        if self.config.scrape_port is None:
            return
        self._scrape_server = await asyncio.start_server(
            self._serve_scrape, host="127.0.0.1", port=int(self.config.scrape_port)
        )
        self.scrape_address = self._scrape_server.sockets[0].getsockname()[:2]

    async def _serve_scrape(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Answer one HTTP scrape with the registry's Prometheus text.

        Any request path gets the exposition (``/metrics`` by
        convention); the snapshot runs the registry finalizers, so
        mid-run scrapes see freshly flushed gauges and counters.
        """
        from repro.obs.report import render_prometheus

        try:
            while True:
                line = await reader.readline()
                if not line or line in (b"\r\n", b"\n"):
                    break
            body = render_prometheus(self.registry.snapshot()).encode("utf-8")
            writer.write(
                b"HTTP/1.1 200 OK\r\n"
                b"Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
                + f"Content-Length: {len(body)}\r\n".encode("ascii")
                + b"Connection: close\r\n\r\n"
                + body
            )
            await writer.drain()
        except Exception:  # pragma: no cover - a dead scraper is not a finding
            pass
        finally:
            writer.close()

    async def _start_transport(self) -> None:
        if self.transport == "loopback":
            return
        address = self._addresses.get(self.host_index)
        if address is None:
            raise ConfigurationError(f"no address for host {self.host_index}")
        if self.transport == "unix":
            self._server = await asyncio.start_unix_server(
                self._on_connection, path=str(address)
            )
        else:
            bind_host, port = address
            self._server = await asyncio.start_server(
                self._on_connection, host=str(bind_host), port=int(port)
            )
        for peer in self._peer_hosts():
            self._writers[peer] = await self._dial(peer)

    async def _dial(self, peer: int) -> asyncio.StreamWriter:
        """Connect to ``peer``, retrying while the cluster is still coming up."""
        address = self._addresses.get(peer)
        if address is None:
            raise ConfigurationError(f"no address for peer host {peer}")
        deadline = time.time() + self.config.connect_timeout
        while True:
            try:
                if self.transport == "unix":
                    _, writer = await asyncio.open_unix_connection(path=str(address))
                else:
                    bind_host, port = address
                    _, writer = await asyncio.open_connection(str(bind_host), int(port))
                return writer
            except OSError:
                if time.time() >= deadline:
                    raise ConfigurationError(
                        f"host {self.host_index} could not reach host {peer} "
                        f"at {address!r} within {self.config.connect_timeout}s"
                    ) from None
                await asyncio.sleep(0.05)

    def _on_connection(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        self._conn_writers.append(writer)
        self._reader_tasks.append(
            asyncio.ensure_future(self._read_connection(reader, writer))
        )

    async def _read_connection(
        self,
        reader: asyncio.StreamReader,
        writer: Optional[asyncio.StreamWriter] = None,
    ) -> None:
        """Single reader per connection, multiplexing every session on it.

        Dining frames go to the local actors; ``layer="locks"`` frames go
        to the lease service with this connection's writer for replies
        (they never enter the dining checkers or the wire log — client
        sessions are not conflict-graph channels).  EOF or reset abandons
        every session bound to the connection, which is what starts the
        TTL-reclaim clock for a crashed client.
        """
        decoder = FrameDecoder(capture_context=True)
        try:
            while True:
                data = await reader.read(65536)
                if not data:
                    return
                try:
                    frames = decoder.feed(data)
                except WireCodecError as exc:
                    self._record_violation(f"corrupt inbound stream: {exc}")
                    return
                for src, dst, seq, message, context in frames:
                    if message_layer(message) == "locks":
                        service = self.lock_service
                        if service is None:
                            if writer is not None and not writer.is_closing():
                                writer.write(
                                    encode_frame(0, src, 0, LeaseDenied(0, "no-service"))
                                )
                        else:
                            service.on_frame(src, message, writer)
                    else:
                        self._receive(src, dst, seq, message, context)
        finally:
            if self.lock_service is not None and writer is not None:
                self.lock_service.on_connection_lost(writer)

    def _kill_connections(self) -> None:
        """Sever every link: what the cluster sees when this host 'crashes'."""
        if self._server is not None:
            self._server.close()
        for writer in self._writers.values():
            if not writer.is_closing():
                writer.close()
        for writer in self._conn_writers:
            if not writer.is_closing():
                writer.close()
        for task in self._reader_tasks:
            task.cancel()

    # ------------------------------------------------------------------
    # Run
    # ------------------------------------------------------------------
    async def run(self) -> "AsyncHost":
        """Connect, run every local actor for ``config.duration``, wind down."""
        self.loop = asyncio.get_running_loop()
        await self._start_scrape()
        await self._start_transport()
        if self._epoch is None:
            self._epoch = time.time()
        start_delay = self._epoch - time.time()
        if start_delay > 0:
            await asyncio.sleep(start_delay)

        for pid, actor in sorted(self.diners.items()):
            self.guarded(actor.on_start, label=f"start@{pid}", pid=pid)()
        for pid, instant in sorted(self._crash_times.items()):
            self.loop.call_later(max(0.0, instant - self.now), self._inject_crash, pid)
        for delta in self.membership:
            # Each timer pops the next delta in log order, so same-instant
            # deltas apply in log order even if the loop's timer heap
            # breaks the tie differently.
            self.loop.call_later(
                max(0.0, delta.time - self.now), self._apply_membership
            )

        remaining = self._epoch + self.config.duration - time.time()
        if remaining > 0:
            await asyncio.sleep(remaining)
        await self._shutdown()
        return self

    def _inject_crash(self, pid: ProcessId) -> None:
        if self._finished:
            return
        actor = self.diners.get(pid)
        if actor is None or actor.crashed:
            return
        try:
            actor.crash()
        except Exception as exc:  # noqa: BLE001 - every actor fault is a finding
            self._record_violation(f"crash@{pid}: {exc}")
        if all(a.crashed for a in self.diners.values()):
            self._kill_connections()

    # ------------------------------------------------------------------
    # Dynamic membership
    # ------------------------------------------------------------------
    def _live_actor(self, pid: ProcessId) -> Optional[DinerActor]:
        actor = self.diners.get(pid)
        return actor if actor is not None and not actor.crashed else None

    def _spawn_actor(self, pid: ProcessId, neighbors, *, replace: bool) -> None:
        """Build, bind, and start a fresh incarnation of ``pid``."""
        diner = self._make_diner(
            pid,
            self.union_graph,
            self.coloring,
            self.detector,
            self.workload,
            self.trace,
            neighbors=neighbors,
        )
        diner.bind_substrate(LiveSubstrate(self, pid))
        self.diners[pid] = diner
        if replace:
            self._fence_pid(pid)
        label = ("rejoin" if replace else "join") + f"@{pid}"

        def start() -> None:
            diner.on_start()
            diner.reevaluate()

        self.guarded(start, label=label, pid=pid)()

    def _fence_pid(self, pid: ProcessId) -> None:
        """Fence every directed channel touching ``pid`` at its current seq."""
        for key, seq in self._next_seq.items():
            if pid in key and seq:
                self._fences[key] = seq
        self._clear_pending_pings(lambda pair: pid in pair)
        try:
            quiescence = self.checks.checker(QUIESCENCE)
        except KeyError:
            quiescence = None
        if quiescence is not None and hasattr(quiescence, "note_rebirth"):
            quiescence.note_rebirth(pid, self.now)

    def _fence_edge(self, a: ProcessId, b: ProcessId) -> None:
        """Fence both directions of edge ``(a, b)`` at their current seq."""
        for key in ((a, b), (b, a)):
            seq = self._next_seq.get(key)
            if seq:
                self._fences[key] = seq
        self._clear_pending_pings(lambda pair: pair in ((a, b), (b, a)))

    def _clear_pending_pings(self, matches) -> None:
        """Forget Lemma 2.2 obligations owed by a fenced (dead) channel."""
        try:
            checker = self.checks.checker(PENDING_PING)
        except KeyError:
            return
        outstanding = getattr(checker, "_outstanding", None)
        if outstanding:
            for pair in [p for p in outstanding if matches(p)]:
                del outstanding[pair]

    def _apply_membership(self) -> None:
        """Execute the next membership delta (timers fire in log order).

        Mirrors the kernel table's delta interpreter verb for verb: the
        epoch counter advances first so the trace record and every
        epoch-stamped witness agree with the timeline's snapshot index;
        peers learn about a newcomer before its actor starts pinging.
        """
        if self._finished or not self._pending_membership:
            return
        delta = self._pending_membership.pop(0)
        epoch = self._membership_epoch + 1
        self._membership_epoch = epoch
        snapshots = self.timeline.snapshots()
        view = snapshots[epoch].graph
        previous = snapshots[epoch - 1].graph
        verb = delta.verb
        pid = delta.pid
        record_edges: tuple = ()
        try:
            if verb == "join":
                record_edges = delta.edges
                neighbors = view.neighbors(pid)
                for other in neighbors:
                    peer = self._live_actor(other)
                    if peer is not None:
                        peer.add_neighbor(pid)
                if self._placement[pid] == self.host_index:
                    self._spawn_actor(pid, neighbors, replace=False)
            elif verb == "leave":
                # The same path as a crash: the actor freezes, deliveries
                # drop, and once every local actor is down the host
                # severs its connections.  Survivors substitute the
                # leaver in their Action 5/9 guards immediately.
                neighbors = previous.neighbors(pid)
                if self._placement[pid] == self.host_index:
                    self._inject_crash(pid)
                for other in neighbors:
                    peer = self._live_actor(other)
                    if peer is not None:
                        peer.neighbor_left(pid)
            elif verb == "rejoin":
                # Membership act, not detector output: silently wipe the
                # old incarnation's module before the fresh actor
                # re-subscribes in its on_start.
                self.detector.module_for(pid).reset()
                neighbors = view.neighbors(pid)
                for other in neighbors:
                    peer = self._live_actor(other)
                    if peer is None:
                        continue
                    if pid in peer.links:
                        peer.neighbor_rejoined(pid)
                    else:
                        peer.add_neighbor(pid)
                if self._placement[pid] == self.host_index:
                    self._spawn_actor(pid, neighbors, replace=True)
            elif verb == "add_edge":
                peer_pid = delta.peer
                record_edges = (peer_pid,)
                if pid in view and peer_pid in view.neighbors(pid):
                    self._fence_edge(pid, peer_pid)
                    a = self._live_actor(pid)
                    b = self._live_actor(peer_pid)
                    if a is not None:
                        a.add_neighbor(peer_pid)
                    if b is not None:
                        b.add_neighbor(pid)
            elif verb == "remove_edge":
                peer_pid = delta.peer
                record_edges = (peer_pid,)
                if pid in previous and peer_pid in previous.neighbors(pid):
                    a = self._live_actor(pid)
                    b = self._live_actor(peer_pid)
                    if a is not None:
                        a.remove_neighbor(peer_pid)
                    if b is not None:
                        b.remove_neighbor(pid)
        except Exception as exc:  # noqa: BLE001 - every membership fault is a finding
            self._record_violation(f"membership {verb}@{pid}: {exc}")
        self.trace.membership_change(self.now, epoch, verb, pid, record_edges)
        self._after_step(None)

    async def _shutdown(self) -> None:
        if self.lock_service is not None:
            self.lock_service.shutdown()
            for lease in self.lock_service.core.leaked_leases():
                self._record_violation(
                    f"locks: leaked lease {lease.lease_id} on {lease.resource} "
                    f"(session {lease.session}, diner {lease.pid} not eating)"
                )
        self._finished = True
        self._end = self.now
        self._flush_all_peers()
        self._kill_connections()
        if self._server is not None:
            try:
                await self._server.wait_closed()
            except Exception:  # pragma: no cover - platform-dependent teardown
                pass
        await asyncio.sleep(0)  # let cancelled reader tasks unwind
        if self.tracer is not None:
            self.spans = self.tracer.finish(self._end)
            flush_span_metrics(self.spans, self.registry)
        self.registry.finalize()
        self._maybe_dump_flight()
        if self._scrape_server is not None:
            self._scrape_server.close()
            try:
                await self._scrape_server.wait_closed()
            except Exception:  # pragma: no cover - platform-dependent teardown
                pass

    def _maybe_dump_flight(self) -> None:
        """Dump the flight rings when the run ends badly (FAIL or fault)."""
        if self.flight is None:
            return
        verdict = self.verdict()
        crashed = sorted(pid for pid, d in self.diners.items() if d.crashed)
        unplanned = [pid for pid in crashed if pid not in self._crash_times]
        if verdict.ok and not self.violations and not unplanned:
            return
        if self.spans:
            for span in self.spans[-self.flight.capacity:]:
                self.flight.record_span(span_to_dict(span))
        reason = (
            "verdict-fail" if not verdict.ok
            else "violations" if self.violations
            else "unplanned-crash"
        )
        self.flight.dump(
            self.config.flight_dir,
            reason=reason,
            context={
                "host_index": self.host_index,
                "local_pids": list(self.local_pids),
                "violations": list(self.violations[:20]),
                "crashed": crashed,
                "horizon": self._end,
            },
        )

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def verdict(self) -> Verdict:
        """This host's view of the run, judged by the standard suite.

        Eventual properties are informational here (no settle/patience
        windows are set at host scope); the cluster merges per-host
        verdicts with a re-judged merged-stream verdict and applies the
        windows there.
        """
        horizon = self._end if self._end is not None else (
            self.now if self._epoch is not None else None
        )
        verdict = self.checks.finalize(horizon)
        if self.spans:
            # Name the violating request: every witness gains the
            # trace-id/span-id of the request span covering it.
            verdict = annotate_violations(verdict, self.spans)
        return verdict

    def result(self) -> Dict[str, object]:
        """Compact machine-readable summary of this host's run."""
        return {
            "host_index": self.host_index,
            "local_pids": list(self.local_pids),
            "epoch": self._epoch,
            "duration": self.config.duration,
            "transport": self.transport,
            "meals": {str(pid): d.meals_eaten for pid, d in sorted(self.diners.items())},
            "crashed": sorted(pid for pid, d in self.diners.items() if d.crashed),
            "violations": list(self.violations),
            "verdict": self.verdict().to_json(),
            "wire_events": len(self.wire_events),
            "spans": len(self.spans),
            "span_meals": completed_meals(self.spans),
            "scrape_address": list(self.scrape_address) if self.scrape_address else None,
            "max_in_transit_local": self._net_probe.max_in_transit(),
            "false_suspicion_retractions": (
                self.detector.total_false_retractions()
                if hasattr(self.detector, "total_false_retractions")
                else 0
            ),
            "locks": (
                None if self.lock_service is None else self.lock_service.core.snapshot()
            ),
        }

    def write_outputs(self, directory: str) -> None:
        """Dump trace, wire log, metrics snapshot, and result summary."""
        os.makedirs(directory, exist_ok=True)
        dump_path(self.trace, os.path.join(directory, "trace.jsonl"))
        if self.spans:
            dump_spans(os.path.join(directory, "spans.jsonl"), self.spans)
        with open(os.path.join(directory, "wire.jsonl"), "w", encoding="utf-8") as stream:
            for event in self.wire_events:
                stream.write(json.dumps(event._asdict(), sort_keys=True))
                stream.write("\n")
        with open(os.path.join(directory, "metrics.json"), "w", encoding="utf-8") as stream:
            json.dump(self.registry.snapshot(), stream, indent=2, sort_keys=True)
            stream.write("\n")
        with open(os.path.join(directory, "result.json"), "w", encoding="utf-8") as stream:
            json.dump(self.result(), stream, indent=2, sort_keys=True)
            stream.write("\n")


def run_host(host: AsyncHost) -> Dict[str, object]:
    """Run one host to completion on a fresh event loop; returns its result.

    Uses uvloop's event loop when the interpreter has it (a drop-in
    libuv-backed loop with cheaper timers and socket I/O); the stock
    asyncio loop otherwise — no hard dependency either way.
    """
    try:
        import uvloop  # type: ignore[import-not-found]
    except ImportError:
        asyncio.run(host.run())
    else:
        with asyncio.Runner(loop_factory=uvloop.new_event_loop) as runner:
            runner.run(host.run())
    return host.result()
