"""Asyncio implementation of the actor substrate protocol.

:class:`LiveSubstrate` is the wall-clock counterpart of
:class:`repro.sim.actor.KernelSubstrate`: the same five capabilities from
:class:`repro.core.substrate.Substrate`, realised on a running asyncio
event loop instead of a virtual-time event queue —

============================  =========================================
capability                    live realisation
============================  =========================================
``now``                       ``time.time()`` minus the run epoch
``streams``                   per-host :class:`~repro.sim.rng.RandomStreams`
``send``                      host transmit (loopback queue or socket)
``set_timer``                 ``loop.call_later``
``request_reevaluation``      ``loop.call_soon``
============================  =========================================

The epoch is shared by every host of a cluster run (the launcher passes
one ``time.time()`` snapshot to all processes), so ``now`` values recorded
in different OS processes on the same machine are directly comparable —
cross-process trace merging needs no clock reconciliation.

Callbacks are routed through the host's guard so an exception inside an
actor step is captured as a run violation instead of being swallowed by
the event loop's default handler.
"""

from __future__ import annotations

import asyncio
from typing import TYPE_CHECKING, Callable

from repro.core.substrate import ProcessId
from repro.timebase import Duration, Instant, validate_duration

if TYPE_CHECKING:  # annotation-only: avoid a host<->substrate import cycle
    from repro.net.host import AsyncHost

__all__ = ["LiveSubstrate", "LiveTimer"]


class LiveTimer:
    """Cancellable one-shot timer over ``loop.call_later``.

    Satisfies :class:`repro.core.substrate.TimerHandle`: exposes a
    ``cancelled`` attribute (the kernel's handle is a dataclass field, so
    the protocol pins an attribute, not a method) and an idempotent
    :meth:`cancel`.
    """

    __slots__ = ("_handle", "cancelled", "label")

    def __init__(self, handle: asyncio.TimerHandle, label: str = "") -> None:
        self._handle = handle
        self.cancelled = False
        self.label = label

    def cancel(self) -> None:
        self.cancelled = True
        self._handle.cancel()


class LiveSubstrate:
    """One actor's view of its :class:`~repro.net.host.AsyncHost`."""

    __slots__ = ("_host", "_pid")

    def __init__(self, host: "AsyncHost", pid: ProcessId) -> None:
        self._host = host
        self._pid = pid

    # ------------------------------------------------------------------
    # Clock and randomness
    # ------------------------------------------------------------------
    @property
    def now(self) -> Instant:
        return self._host.now

    @property
    def streams(self):
        return self._host.streams

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def send(self, src: ProcessId, dst: ProcessId, message) -> None:
        self._host.transmit(src, dst, message)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def set_timer(
        self, delay: Duration, callback: Callable[[], None], *, label: str = ""
    ) -> LiveTimer:
        delay = validate_duration(delay, name=label or "timer delay")
        timer = LiveTimer(
            self._host.loop.call_later(
                delay, self._host.guarded(callback, label, self._pid)
            ),
            label,
        )
        return timer

    def request_reevaluation(self, callback: Callable[[], None], *, label: str = "") -> None:
        # The callback belongs to this substrate's actor, so the post-step
        # probe can restrict to it.
        self._host.loop.call_soon(self._host.guarded(callback, label, self._pid))
