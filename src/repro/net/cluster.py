"""Multi-process cluster launcher and post-run verdict.

``repro cluster`` turns a topology spec into *n* OS processes, each an
:class:`~repro.net.host.AsyncHost` running its share of the diners over
real sockets, then merges what every host recorded into one verdict:

1. **Launch** — :func:`launch` writes ``spec.json`` into a run directory
   (topology, placement, per-host addresses, shared epoch), spawns one
   ``repro serve`` process per host, and waits for them all.
2. **Serve** — :func:`serve` (the child entry point) rebuilds the host
   from the spec, runs it, and dumps ``trace.jsonl`` / ``wire.jsonl`` /
   ``metrics.json`` / ``result.json`` into its own output directory.
3. **Merge** — :func:`merge_run` recombines the per-host outputs.  Trace
   records and wire logs carry the shared-epoch clock, so converting
   both into the normalized check-event vocabulary and time-merging them
   (:func:`repro.checks.merge_events`) yields one system-wide stream.
   That stream is replayed through the exact
   :func:`repro.checks.standard_suite` every other substrate runs — the
   authoritative Section 7 / FIFO judgement for cross-host edges no
   single host can see — and its channel staircase feeds the
   cluster-level Prometheus gauges.  State-based properties (fork
   uniqueness, the diner-local invariants) cannot be probed offline, so
   their per-host verdicts are adopted into the merged
   :class:`~repro.checks.Verdict` via ``PropertyVerdict.merge``.

The verdict is strict: any live checker violation on a host, any merged
-stream property failure (channel bound, FIFO sequence gap, starving
correct diner, exclusion violation past the detector settle window)
fails the run.
"""

from __future__ import annotations

import json
import math
import os
import subprocess
import sys
import time
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional

from repro.checks import (
    CHANNEL_BOUND,
    DINER_LOCAL,
    FORK_UNIQUENESS,
    PROGRESS,
    WX_SAFETY,
    CheckConfig,
    PropertyVerdict,
    Verdict,
    annotate_violations,
    events_from_trace,
    events_from_wire,
    merge_events,
    standard_suite,
)
from repro.errors import ConfigurationError
from repro.graphs import topologies
from repro.graphs.conflict import ConflictGraph
from repro.net.host import AsyncHost, HostConfig, run_host
from repro.obs.metrics import MetricsRegistry, gauge_max, merge_snapshots
from repro.obs.report import render_prometheus
from repro.obs.tracing import completed_meals, dump_spans, load_spans, stitch_spans
from repro.trace.serialize import load_path

__all__ = [
    "ClusterHandle",
    "ClusterSpec",
    "ClusterVerdict",
    "launch",
    "merge_run",
    "placement_summary",
    "serve",
    "start_cluster",
    "wait_cluster",
]



@dataclass
class ClusterSpec:
    """Everything a cluster run needs, JSON-serializable for the children."""

    topology: str = "ring"
    n: int = 3
    processes: int = 3
    duration: float = 2.0
    seed: int = 0
    eat_time: float = 0.05
    think_time: float = 0.01
    heartbeat_interval: float = 0.25
    initial_timeout: float = 0.75
    timeout_increment: float = 0.25
    channel_bound: int = 4
    connect_timeout: float = 10.0
    transport: str = "unix"
    crash_times: Dict[int, float] = field(default_factory=dict)
    run_dir: str = "cluster-run"
    #: Request tracing on every host (span logs + wire trace context).
    tracing: bool = True
    #: Base port for per-host ``/metrics`` endpoints: host *i* scrapes on
    #: ``scrape_base + i`` (None = no endpoints).
    scrape_base: Optional[int] = None
    #: Arm each host's flight recorder (dumps under ``host-i/flight/``).
    flight: bool = False
    #: Install the lease service on every host: diners run the demand-
    #: driven :class:`~repro.locks.service.LeaseWorkload` and clients
    #: dial the same listener addresses the diner links use.
    serve_locks: bool = False
    #: Resource name -> owning diner pid (empty: one ``r<pid>`` per
    #: diner).  Each host serves the resources of its local diners.
    lock_resources: Dict[str, int] = field(default_factory=dict)
    #: Membership deltas (dynamic topology): dicts with keys ``time``,
    #: ``verb``, ``pid`` and optionally ``edges`` / ``peer``; times are
    #: seconds after the shared epoch.  Multi-process clusters support
    #: ``join`` and ``leave``; rejoin and edge churn need the loopback
    #: single-host sequence fences.
    membership: List[Dict[str, object]] = field(default_factory=list)
    #: Filled in by :func:`launch` before the spec reaches the children.
    epoch: Optional[float] = None
    addresses: Dict[int, object] = field(default_factory=dict)
    placement: Dict[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.processes < 1:
            raise ConfigurationError(f"need at least one process, got {self.processes}")
        if self.processes > self.n:
            raise ConfigurationError(
                f"{self.processes} processes for {self.n} diners: some would be empty"
            )
        if self.transport not in ("unix", "tcp"):
            raise ConfigurationError(f"cluster transport must be unix or tcp, not {self.transport!r}")
        if self.processes > 1:
            for delta in self.membership:
                if delta.get("verb") in ("rejoin", "add_edge", "remove_edge"):
                    raise ConfigurationError(
                        f"membership verb {delta.get('verb')!r} needs a "
                        "single-process cluster (loopback channel fences)"
                    )

    # ------------------------------------------------------------------
    # Derived structure
    # ------------------------------------------------------------------
    def graph(self) -> ConflictGraph:
        return topologies.by_name(self.topology, self.n, seed=self.seed)

    def membership_log(self):
        """The spec's deltas as a :class:`MembershipLog` (None if static)."""
        if not self.membership:
            return None
        from repro.graphs.membership import MembershipDelta, MembershipLog

        return MembershipLog(
            MembershipDelta(
                time=float(delta["time"]),
                verb=str(delta["verb"]),
                pid=int(delta["pid"]),
                edges=tuple(int(e) for e in (delta.get("edges") or ())),
                peer=int(delta["peer"]) if delta.get("peer") is not None else None,
            )
            for delta in self.membership
        )

    def timeline(self):
        """The epoched view timeline (None if static)."""
        log = self.membership_log()
        if log is None:
            return None
        from repro.graphs.membership import TopologyTimeline

        return TopologyTimeline(self.graph(), log)

    def union_graph(self) -> ConflictGraph:
        """Every node and edge that ever exists during the run."""
        timeline = self.timeline()
        return self.graph() if timeline is None else timeline.union()

    def host_config(self, host_index: Optional[int] = None) -> HostConfig:
        config = HostConfig(
            duration=self.duration,
            seed=self.seed,
            eat_time=self.eat_time,
            think_time=self.think_time,
            heartbeat_interval=self.heartbeat_interval,
            initial_timeout=self.initial_timeout,
            timeout_increment=self.timeout_increment,
            channel_bound=self.channel_bound,
            connect_timeout=self.connect_timeout,
            tracing=self.tracing,
        )
        if host_index is not None:
            if self.scrape_base is not None:
                config.scrape_port = int(self.scrape_base) + host_index
            if self.flight:
                config.flight_dir = os.path.join(self.host_dir(host_index), "flight")
        return config

    def default_placement(self) -> Dict[int, int]:
        """Contiguous blocks of diners per host (balanced, deterministic).

        Blocks beat round-robin for a conflict graph with locality (ring,
        path, grid): adjacent diners land on the same host, so part of
        each host's neighborhood is a *local* edge — observable from both
        endpoints, which is what makes its live per-edge occupancy gauge
        (and the Section 7 bound assertion behind it) exact in that
        host's ``/metrics`` scrape — and only the block boundaries pay a
        socket hop.
        """
        nodes = self.union_graph().nodes
        return {
            pid: index * self.processes // len(nodes)
            for index, pid in enumerate(nodes)
        }

    def host_dir(self, host_index: int) -> str:
        return os.path.join(self.run_dir, f"host-{host_index}")

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_json(self) -> str:
        return json.dumps(asdict(self), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ClusterSpec":
        data = json.loads(text)
        # JSON object keys are strings; the int-keyed maps come back typed.
        for key in ("crash_times", "addresses", "placement"):
            data[key] = {int(k): v for k, v in (data.get(key) or {}).items()}
        return cls(**data)

    @classmethod
    def load(cls, path: str) -> "ClusterSpec":
        with open(path, "r", encoding="utf-8") as stream:
            return cls.from_json(stream.read())


@dataclass
class ClusterVerdict:
    """Merged outcome of one cluster run.

    ``checks`` is the shared :class:`repro.checks.Verdict` — the same
    type every substrate emits — judged over the merged check-event
    stream with the per-host state-based properties adopted in.  The
    legacy summary accessors (``exclusion_total``, ``starving``, …) read
    straight out of it.
    """

    ok: bool
    hosts: List[Dict[str, object]]
    checker_violations: List[str]
    checks: Verdict
    total_meals: int
    prometheus: str
    #: Merged metrics snapshot (the exposition above renders this).
    metrics: Dict[str, object] = field(default_factory=dict)
    #: Stitched cross-process trace: span count and the meals it covers.
    spans: int = 0
    span_meals: int = 0
    #: Aggregated lease-service counters (None when ``--serve-locks``
    #: was off); ``leaked_leases`` here must be zero on a clean run.
    locks: Optional[Dict[str, object]] = None

    def _counter(self, prop: str, name: str) -> int:
        verdict = self.checks.properties.get(prop)
        return int(verdict.counters.get(name, 0)) if verdict is not None else 0

    @property
    def exclusion_total(self) -> int:
        return self._counter(WX_SAFETY, "overlap_windows_total")

    @property
    def exclusion_late(self) -> int:
        return self._counter(WX_SAFETY, "late_windows_total")

    @property
    def starving(self) -> List[int]:
        verdict = self.checks.properties.get(PROGRESS)
        if verdict is None:
            return []
        return list(verdict.details.get("starving", []))

    @property
    def max_in_transit(self) -> int:
        return self._counter(CHANNEL_BOUND, "max_in_transit")

    @property
    def edge_peaks(self) -> Dict[str, int]:
        verdict = self.checks.properties.get(CHANNEL_BOUND)
        if verdict is None:
            return {}
        return dict(verdict.details.get("edge_peaks", {}))

    def describe(self) -> str:
        lines = [
            f"cluster verdict: {'PASS' if self.ok else 'FAIL'}",
            f"  hosts:                 {len(self.hosts)}",
            f"  total meals:           {self.total_meals}",
            f"  checker violations:    {len(self.checker_violations)}",
        ]
        if self.spans:
            lines.append(
                f"  trace spans:           {self.spans} "
                f"(stitched; {self.span_meals} meals)"
            )
        if self.locks is not None:
            counters = self.locks.get("counters", {})
            lines.append(
                "  leases:                "
                f"{counters.get('grants', 0)} granted, "
                f"{counters.get('releases', 0)} released, "
                f"{counters.get('expiries', 0)} expired, "
                f"{sum(self.locks.get('denies', {}).values())} denied, "
                f"{self.locks.get('leaked_leases', 0)} leaked"
            )
        for detail in self.checker_violations[:10]:
            lines.append(f"    ! {detail}")
        lines.extend("  " + line for line in self.checks.describe().splitlines())
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Child entry point
# ----------------------------------------------------------------------
def build_host(spec: ClusterSpec, host_index: int) -> AsyncHost:
    """Rebuild one host (its diners, links, detector) from a launched spec."""
    graph = spec.graph()
    membership = spec.membership_log()
    placement = spec.placement or spec.default_placement()
    local_pids = [
        pid for pid in spec.union_graph().nodes if placement[pid] == host_index
    ]
    if not local_pids:
        raise ConfigurationError(f"host {host_index} owns no diners")
    workload = None
    if spec.serve_locks:
        from repro.locks.service import LeaseWorkload

        workload = LeaseWorkload()
    host = AsyncHost(
        graph,
        local_pids=local_pids,
        config=spec.host_config(host_index),
        placement=placement,
        host_index=host_index,
        addresses=spec.addresses,
        # Lease clients dial the host's listener, so a --serve-locks host
        # binds its socket even when it is the whole cluster.
        transport=spec.transport if (spec.processes > 1 or spec.serve_locks) else "loopback",
        epoch=spec.epoch,
        crash_times=spec.crash_times,
        workload=workload,
        membership=membership,
        run=f"host{host_index}",
    )
    if spec.serve_locks:
        from repro.locks.service import LockService

        resources = None
        if spec.lock_resources:
            resources = {
                name: int(pid)
                for name, pid in spec.lock_resources.items()
                if placement[int(pid)] == host_index
            }
        LockService.install(host, resources=resources)
    return host


def serve(spec_path: str, host_index: int, output_dir: Optional[str] = None) -> int:
    """Run one host of a launched cluster; the ``repro serve`` body."""
    spec = ClusterSpec.load(spec_path)
    host = build_host(spec, host_index)
    run_host(host)
    host.write_outputs(output_dir or spec.host_dir(host_index))
    return 1 if host.violations or not host.verdict().ok else 0


# ----------------------------------------------------------------------
# Launcher
# ----------------------------------------------------------------------
def _allocate_addresses(spec: ClusterSpec) -> Dict[int, object]:
    if spec.transport == "unix":
        return {
            index: os.path.join(spec.run_dir, f"host-{index}.sock")
            for index in range(spec.processes)
        }
    import socket

    addresses: Dict[int, object] = {}
    probes = []
    for index in range(spec.processes):
        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        probe.bind(("127.0.0.1", 0))
        probes.append(probe)
        addresses[index] = ["127.0.0.1", probe.getsockname()[1]]
    for probe in probes:  # release only after all ports are distinct
        probe.close()
    return addresses


@dataclass
class ClusterHandle:
    """A started cluster: children still serving, outputs not yet merged.

    :func:`start_cluster` returns one so a caller (``repro loadgen``) can
    drive live traffic against the hosts *while they run*, then
    :func:`wait_cluster` + :func:`merge_run` to close the books.
    """

    spec: ClusterSpec
    spec_path: str
    children: List[object] = field(default_factory=list)


def start_cluster(spec: ClusterSpec) -> ClusterHandle:
    """Write the spec and spawn every host as its own OS process."""
    os.makedirs(spec.run_dir, exist_ok=True)
    spec.placement = spec.placement or spec.default_placement()
    spec.addresses = _allocate_addresses(spec)
    # Actors on every host start together at the epoch; the margin covers
    # interpreter start-up plus the dial-retry handshake.
    spec.epoch = time.time() + 1.0 + 0.4 * spec.processes
    spec_path = os.path.join(spec.run_dir, "spec.json")
    with open(spec_path, "w", encoding="utf-8") as stream:
        stream.write(spec.to_json())
        stream.write("\n")

    children = []
    for index in range(spec.processes):
        log = open(os.path.join(spec.run_dir, f"host-{index}.log"), "w", encoding="utf-8")
        children.append(
            (
                subprocess.Popen(
                    [sys.executable, "-m", "repro", "serve",
                     "--spec", spec_path, "--host-index", str(index)],
                    stdout=log,
                    stderr=subprocess.STDOUT,
                ),
                log,
            )
        )
    return ClusterHandle(spec=spec, spec_path=spec_path, children=children)


def wait_cluster(handle: ClusterHandle) -> List[str]:
    """Wait for every host; returns launcher-level failures (not merges)."""
    spec = handle.spec
    deadline = spec.epoch + spec.duration + spec.connect_timeout + 30.0
    failures: List[str] = []
    for index, (child, log) in enumerate(handle.children):
        budget = max(1.0, deadline - time.time())
        try:
            code = child.wait(timeout=budget)
        except subprocess.TimeoutExpired:
            child.kill()
            child.wait()
            failures.append(f"host {index} timed out and was killed")
            code = -9
        finally:
            log.close()
        if code not in (0, 1):  # 1 = ran but saw violations; merge reports them
            failures.append(f"host {index} exited with code {code}")
    return failures


def launch(spec: ClusterSpec, *, quiet: bool = False) -> ClusterVerdict:
    """Spawn the cluster, wait for every host, and merge the outputs."""
    handle = start_cluster(spec)
    failures = wait_cluster(handle)
    verdict = merge_run(spec)
    if failures:
        verdict.checker_violations.extend(failures)
        verdict.ok = False
    if not quiet:
        print(verdict.describe())
        print()
        print(verdict.prometheus, end="")
    return verdict


# ----------------------------------------------------------------------
# Merge
# ----------------------------------------------------------------------
def _load_merged_events(host_dirs: List[str]) -> List[object]:
    """Every host's trace and wire log as one time-ordered check-event stream.

    All hosts stamp with the same shared-epoch clock, so
    :func:`repro.checks.merge_events` (time sort, sends before the
    departures they race with) replays each edge's true occupancy
    staircase.
    """
    streams: List[List[object]] = []
    for directory in host_dirs:
        streams.append(
            events_from_trace(load_path(os.path.join(directory, "trace.jsonl")))
        )
        wire: List[dict] = []
        with open(os.path.join(directory, "wire.jsonl"), "r", encoding="utf-8") as stream:
            for line in stream:
                line = line.strip()
                if line:
                    wire.append(json.loads(line))
        streams.append(events_from_wire(wire))
    return merge_events(*streams)


def check_config_for(spec: ClusterSpec) -> CheckConfig:
    """The cluster's judged windows, derived from its timing knobs.

    ◇WX tolerates early violations from detector mistakes; after the
    settle window (time for the adaptive timeouts to absorb start-up
    jitter, plus one meal to drain) none are acceptable.  Patience is
    chosen generously above the wait-free algorithm's observed response
    times, so a diner flagged starving is genuinely blocked, not slow.
    """
    crashed = set(spec.crash_times)
    timeline = spec.timeline()
    settle = spec.initial_timeout + spec.timeout_increment + spec.eat_time
    if timeline is not None:
        # Churn re-arms the clock: nothing settles before the last delta
        # lands and the detector absorbs it.
        log = spec.membership_log()
        settle = max(settle, log.last_time() + spec.initial_timeout + spec.eat_time)
    nodes = spec.graph().nodes if timeline is None else timeline.final().graph.nodes
    return CheckConfig(
        channel_bound=spec.channel_bound,
        settle=min(spec.duration, settle),
        patience=max(0.4 * spec.duration, 20 * spec.eat_time),
        correct=tuple(pid for pid in nodes if pid not in crashed),
        crash_time_of=spec.crash_times.get,
    )


def merge_run(spec: ClusterSpec) -> ClusterVerdict:
    """Combine per-host outputs into the system-wide verdict."""
    timeline = spec.timeline()
    union = spec.union_graph()
    host_dirs = [spec.host_dir(index) for index in range(spec.processes)]

    results: List[Dict[str, object]] = []
    snapshots: List[dict] = []
    host_verdicts: List[Verdict] = []
    checker_violations: List[str] = []
    for index, directory in enumerate(host_dirs):
        with open(os.path.join(directory, "result.json"), "r", encoding="utf-8") as stream:
            result = json.load(stream)
        results.append(result)
        checker_violations.extend(
            f"host {index}: {detail}" for detail in result.get("violations", ())
        )
        if result.get("verdict"):
            host_verdicts.append(Verdict.from_json(result["verdict"]))
        with open(os.path.join(directory, "metrics.json"), "r", encoding="utf-8") as stream:
            snapshots.append(json.load(stream))

    # One suite, the same one every substrate runs, over the merged
    # stream — the authoritative judgement for cross-host edges no
    # single host can see.
    suite = standard_suite(
        sorted(union.edges),
        check_config_for(spec),
        dynamic=timeline is not None,
        membership=timeline,
    )
    suite.feed(_load_merged_events(host_dirs))
    checks = suite.finalize(spec.duration)

    # Fork uniqueness and the diner-local invariants need live state
    # probes; adopt each host's judgement of its own diners.
    for prop in (FORK_UNIQUENESS, DINER_LOCAL):
        judged = [
            v.properties[prop] for v in host_verdicts if prop in v.properties
        ]
        if judged:
            checks = checks.with_property(PropertyVerdict.merge(judged))

    # Stitch the per-host span logs into one cross-process trace.  The
    # deterministic ids make this a sort; the stitched trace is the
    # cluster's request-level record (``repro trace <run>/spans.jsonl``)
    # and names the request behind every violation witness.
    merged_spans = []
    for directory in host_dirs:
        spans_path = os.path.join(directory, "spans.jsonl")
        if os.path.exists(spans_path):
            merged_spans.append(load_spans(spans_path))
    stitched = stitch_spans(*merged_spans)
    if stitched:
        dump_spans(os.path.join(spec.run_dir, "spans.jsonl"), stitched)
        checks = annotate_violations(checks, stitched)

    # The authoritative per-edge gauge comes from the merged staircase —
    # cross-host edges are invisible to any single host's registry.
    occupancy = suite.checker(CHANNEL_BOUND).occupancy
    cluster_registry = MetricsRegistry(profile=False)
    for (a, b), peak in sorted(occupancy.peak.items()):
        gauge = cluster_registry.gauge(
            "net.in_transit", edge=f"{a}-{b}", layer="dining", run="cluster"
        )
        gauge.set(peak, occupancy.peak_time.get((a, b), 0.0))
        gauge.set(occupancy.current.get((a, b), 0))
    merged_metrics = merge_snapshots([*snapshots, cluster_registry.snapshot()])

    # Aggregate the per-host lease-service books (``--serve-locks`` runs).
    locks: Optional[Dict[str, object]] = None
    lock_snapshots = [r["locks"] for r in results if r.get("locks") is not None]
    if lock_snapshots:
        counters: Dict[str, int] = {}
        denies: Dict[str, int] = {}
        locks = {
            "resources": {},
            "counters": counters,
            "denies": denies,
            "active_leases": 0,
            "waiting_sessions": 0,
            "leaked_leases": 0,
        }
        for snap in lock_snapshots:
            locks["resources"].update(snap.get("resources", {}))
            for name, value in snap.get("counters", {}).items():
                counters[name] = counters.get(name, 0) + int(value)
            for reason, value in snap.get("denies", {}).items():
                denies[reason] = denies.get(reason, 0) + int(value)
            for key in ("active_leases", "waiting_sessions", "leaked_leases"):
                locks[key] += int(snap.get(key, 0))

    total_meals = sum(
        int(count) for result in results for count in result.get("meals", {}).values()
    )
    gauge_ceiling = gauge_max(merged_metrics, "net.in_transit")
    if gauge_ceiling is not None and not math.isfinite(gauge_ceiling):
        checker_violations.append("non-finite in-transit gauge")

    return ClusterVerdict(
        ok=not checker_violations and checks.ok,
        hosts=results,
        checker_violations=checker_violations,
        checks=checks,
        total_meals=total_meals,
        prometheus=render_prometheus(merged_metrics),
        metrics=merged_metrics,
        spans=len(stitched),
        span_meals=completed_meals(stitched),
        locks=locks,
    )


def placement_summary(spec: ClusterSpec) -> str:
    """Human-readable diner-to-host assignment, e.g. ``host 0: [0, 2]``."""
    placement = spec.placement or spec.default_placement()
    by_host: Dict[int, List[int]] = {}
    for pid, host in sorted(placement.items()):
        by_host.setdefault(host, []).append(pid)
    return ", ".join(f"host {host}: {pids}" for host, pids in sorted(by_host.items()))
