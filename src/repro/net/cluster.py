"""Multi-process cluster launcher and post-run verdict.

``repro cluster`` turns a topology spec into *n* OS processes, each an
:class:`~repro.net.host.AsyncHost` running its share of the diners over
real sockets, then merges what every host recorded into one verdict:

1. **Launch** — :func:`launch` writes ``spec.json`` into a run directory
   (topology, placement, per-host addresses, shared epoch), spawns one
   ``repro serve`` process per host, and waits for them all.
2. **Serve** — :func:`serve` (the child entry point) rebuilds the host
   from the spec, runs it, and dumps ``trace.jsonl`` / ``wire.jsonl`` /
   ``metrics.json`` / ``result.json`` into its own output directory.
3. **Merge** — :func:`merge_run` recombines the per-host outputs.  Trace
   records carry the shared-epoch clock, so sorting by time yields one
   system-wide trace for the standard analysis (exclusion violations,
   starvation).  Wire logs from both endpoints of every cross-host edge
   are replayed into an exact per-edge in-transit staircase — the
   authoritative Section 7 check for edges no single host can see — and
   the per-host metric snapshots merge into one Prometheus exposition.

The verdict is strict: any live checker violation (fork/token
uniqueness, channel bound, FIFO sequence gap), any merged-log channel
excursion above the bound, any starving correct diner, or any exclusion
violation past the detector settle window fails the run.
"""

from __future__ import annotations

import json
import math
import os
import subprocess
import sys
import time
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.graphs import topologies
from repro.graphs.conflict import ConflictGraph, ProcessId
from repro.net.host import AsyncHost, HostConfig, run_host
from repro.obs.metrics import MetricsRegistry, gauge_max, merge_snapshots
from repro.obs.report import render_prometheus
from repro.trace import analysis
from repro.trace.recorder import TraceRecorder
from repro.trace.serialize import load_path

__all__ = ["ClusterSpec", "ClusterVerdict", "launch", "merge_run", "placement_summary", "serve"]

Edge = Tuple[ProcessId, ProcessId]


@dataclass
class ClusterSpec:
    """Everything a cluster run needs, JSON-serializable for the children."""

    topology: str = "ring"
    n: int = 3
    processes: int = 3
    duration: float = 2.0
    seed: int = 0
    eat_time: float = 0.05
    think_time: float = 0.01
    heartbeat_interval: float = 0.25
    initial_timeout: float = 0.75
    timeout_increment: float = 0.25
    channel_bound: int = 4
    connect_timeout: float = 10.0
    transport: str = "unix"
    crash_times: Dict[int, float] = field(default_factory=dict)
    run_dir: str = "cluster-run"
    #: Filled in by :func:`launch` before the spec reaches the children.
    epoch: Optional[float] = None
    addresses: Dict[int, object] = field(default_factory=dict)
    placement: Dict[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.processes < 1:
            raise ConfigurationError(f"need at least one process, got {self.processes}")
        if self.processes > self.n:
            raise ConfigurationError(
                f"{self.processes} processes for {self.n} diners: some would be empty"
            )
        if self.transport not in ("unix", "tcp"):
            raise ConfigurationError(f"cluster transport must be unix or tcp, not {self.transport!r}")

    # ------------------------------------------------------------------
    # Derived structure
    # ------------------------------------------------------------------
    def graph(self) -> ConflictGraph:
        return topologies.by_name(self.topology, self.n, seed=self.seed)

    def host_config(self) -> HostConfig:
        return HostConfig(
            duration=self.duration,
            seed=self.seed,
            eat_time=self.eat_time,
            think_time=self.think_time,
            heartbeat_interval=self.heartbeat_interval,
            initial_timeout=self.initial_timeout,
            timeout_increment=self.timeout_increment,
            channel_bound=self.channel_bound,
            connect_timeout=self.connect_timeout,
        )

    def default_placement(self) -> Dict[int, int]:
        """Round-robin diners over hosts (balanced, deterministic)."""
        nodes = self.graph().nodes
        return {pid: index % self.processes for index, pid in enumerate(nodes)}

    def host_dir(self, host_index: int) -> str:
        return os.path.join(self.run_dir, f"host-{host_index}")

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_json(self) -> str:
        return json.dumps(asdict(self), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ClusterSpec":
        data = json.loads(text)
        # JSON object keys are strings; the int-keyed maps come back typed.
        for key in ("crash_times", "addresses", "placement"):
            data[key] = {int(k): v for k, v in (data.get(key) or {}).items()}
        return cls(**data)

    @classmethod
    def load(cls, path: str) -> "ClusterSpec":
        with open(path, "r", encoding="utf-8") as stream:
            return cls.from_json(stream.read())


@dataclass
class ClusterVerdict:
    """Merged outcome of one cluster run."""

    ok: bool
    hosts: List[Dict[str, object]]
    checker_violations: List[str]
    exclusion_total: int
    exclusion_late: int
    starving: List[int]
    total_meals: int
    max_in_transit: int
    edge_peaks: Dict[str, int]
    prometheus: str

    def describe(self) -> str:
        lines = [
            f"cluster verdict: {'PASS' if self.ok else 'FAIL'}",
            f"  hosts:                 {len(self.hosts)}",
            f"  total meals:           {self.total_meals}",
            f"  checker violations:    {len(self.checker_violations)}",
            f"  exclusion violations:  {self.exclusion_total} total, "
            f"{self.exclusion_late} after settle",
            f"  starving correct:      {self.starving or 'none'}",
            f"  peak msgs per edge:    {self.max_in_transit} (bound 4)",
        ]
        for detail in self.checker_violations[:10]:
            lines.append(f"    ! {detail}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Child entry point
# ----------------------------------------------------------------------
def build_host(spec: ClusterSpec, host_index: int) -> AsyncHost:
    """Rebuild one host (its diners, links, detector) from a launched spec."""
    graph = spec.graph()
    placement = spec.placement or spec.default_placement()
    local_pids = [pid for pid in graph.nodes if placement[pid] == host_index]
    if not local_pids:
        raise ConfigurationError(f"host {host_index} owns no diners")
    return AsyncHost(
        graph,
        local_pids=local_pids,
        config=spec.host_config(),
        placement=placement,
        host_index=host_index,
        addresses=spec.addresses,
        transport=spec.transport if spec.processes > 1 else "loopback",
        epoch=spec.epoch,
        crash_times=spec.crash_times,
        run=f"host{host_index}",
    )


def serve(spec_path: str, host_index: int, output_dir: Optional[str] = None) -> int:
    """Run one host of a launched cluster; the ``repro serve`` body."""
    spec = ClusterSpec.load(spec_path)
    host = build_host(spec, host_index)
    run_host(host)
    host.write_outputs(output_dir or spec.host_dir(host_index))
    return 1 if host.violations else 0


# ----------------------------------------------------------------------
# Launcher
# ----------------------------------------------------------------------
def _allocate_addresses(spec: ClusterSpec) -> Dict[int, object]:
    if spec.transport == "unix":
        return {
            index: os.path.join(spec.run_dir, f"host-{index}.sock")
            for index in range(spec.processes)
        }
    import socket

    addresses: Dict[int, object] = {}
    probes = []
    for index in range(spec.processes):
        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        probe.bind(("127.0.0.1", 0))
        probes.append(probe)
        addresses[index] = ["127.0.0.1", probe.getsockname()[1]]
    for probe in probes:  # release only after all ports are distinct
        probe.close()
    return addresses


def launch(spec: ClusterSpec, *, quiet: bool = False) -> ClusterVerdict:
    """Spawn the cluster, wait for every host, and merge the outputs."""
    os.makedirs(spec.run_dir, exist_ok=True)
    spec.placement = spec.placement or spec.default_placement()
    spec.addresses = _allocate_addresses(spec)
    # Actors on every host start together at the epoch; the margin covers
    # interpreter start-up plus the dial-retry handshake.
    spec.epoch = time.time() + 1.0 + 0.4 * spec.processes
    spec_path = os.path.join(spec.run_dir, "spec.json")
    with open(spec_path, "w", encoding="utf-8") as stream:
        stream.write(spec.to_json())
        stream.write("\n")

    if spec.processes == 1:
        serve(spec_path, 0)
        return merge_run(spec)

    children = []
    for index in range(spec.processes):
        log = open(os.path.join(spec.run_dir, f"host-{index}.log"), "w", encoding="utf-8")
        children.append(
            (
                subprocess.Popen(
                    [sys.executable, "-m", "repro", "serve",
                     "--spec", spec_path, "--host-index", str(index)],
                    stdout=log,
                    stderr=subprocess.STDOUT,
                ),
                log,
            )
        )
    deadline = spec.epoch + spec.duration + spec.connect_timeout + 30.0
    failures: List[str] = []
    for index, (child, log) in enumerate(children):
        budget = max(1.0, deadline - time.time())
        try:
            code = child.wait(timeout=budget)
        except subprocess.TimeoutExpired:
            child.kill()
            child.wait()
            failures.append(f"host {index} timed out and was killed")
            code = -9
        finally:
            log.close()
        if code not in (0, 1):  # 1 = ran but saw violations; merge reports them
            failures.append(f"host {index} exited with code {code}")

    verdict = merge_run(spec)
    if failures:
        verdict.checker_violations.extend(failures)
        verdict.ok = False
    if not quiet:
        print(verdict.describe())
        print()
        print(verdict.prometheus, end="")
    return verdict


# ----------------------------------------------------------------------
# Merge
# ----------------------------------------------------------------------
def _merge_traces(host_dirs: List[str]) -> TraceRecorder:
    records: List[object] = []
    for directory in host_dirs:
        records.extend(load_path(os.path.join(directory, "trace.jsonl")))
    records.sort(key=lambda record: record.time)
    merged = TraceRecorder()
    for record in records:
        merged.record(record)
    return merged


def _load_wire_events(host_dirs: List[str]) -> List[dict]:
    events: List[dict] = []
    for directory in host_dirs:
        with open(os.path.join(directory, "wire.jsonl"), "r", encoding="utf-8") as stream:
            for line in stream:
                line = line.strip()
                if line:
                    events.append(json.loads(line))
    # Deliveries physically follow their sends and every host stamps with
    # the same machine clock, so a time sort (sends first on exact ties)
    # replays each edge's true occupancy staircase.
    events.sort(key=lambda e: (e["time"], 0 if e["kind"] == "send" else 1, e["seq"]))
    return events


def _edge_occupancy(events: List[dict]) -> Dict[Edge, Tuple[int, float, int]]:
    """Exact dining-layer occupancy per undirected edge: (peak, at, final)."""
    state: Dict[Edge, List] = {}
    for event in events:
        if event["layer"] != "dining":
            continue
        a, b = event["src"], event["dst"]
        edge = (a, b) if a <= b else (b, a)
        entry = state.setdefault(edge, [0, 0, 0.0])
        if event["kind"] == "send":
            entry[0] += 1
            if entry[0] > entry[1]:
                entry[1] = entry[0]
                entry[2] = event["time"]
        else:  # deliver or drop both vacate the channel
            entry[0] -= 1
    return {edge: (entry[1], entry[2], entry[0]) for edge, entry in state.items()}


def merge_run(spec: ClusterSpec) -> ClusterVerdict:
    """Combine per-host outputs into the system-wide verdict."""
    graph = spec.graph()
    host_dirs = [spec.host_dir(index) for index in range(spec.processes)]

    results: List[Dict[str, object]] = []
    snapshots: List[dict] = []
    checker_violations: List[str] = []
    for index, directory in enumerate(host_dirs):
        with open(os.path.join(directory, "result.json"), "r", encoding="utf-8") as stream:
            result = json.load(stream)
        results.append(result)
        checker_violations.extend(
            f"host {index}: {detail}" for detail in result.get("violations", ())
        )
        with open(os.path.join(directory, "metrics.json"), "r", encoding="utf-8") as stream:
            snapshots.append(json.load(stream))

    trace = _merge_traces(host_dirs)
    occupancy = _edge_occupancy(_load_wire_events(host_dirs))
    max_in_transit = max((peak for peak, _, _ in occupancy.values()), default=0)
    for edge, (peak, _, _) in sorted(occupancy.items()):
        if peak > spec.channel_bound:
            checker_violations.append(
                f"merged wire log: {peak} dining messages in transit on edge "
                f"{edge}, bound is {spec.channel_bound}"
            )

    # The authoritative per-edge gauge comes from the merged staircase —
    # cross-host edges are invisible to any single host's registry.
    cluster_registry = MetricsRegistry(profile=False)
    for (a, b), (peak, at, final) in sorted(occupancy.items()):
        gauge = cluster_registry.gauge(
            "net.in_transit", edge=f"{a}-{b}", layer="dining", run="cluster"
        )
        gauge.set(peak, at)
        gauge.set(final)
    merged_metrics = merge_snapshots([*snapshots, cluster_registry.snapshot()])

    horizon = spec.duration
    violations = analysis.exclusion_violations(trace, graph, horizon=horizon)
    # ◇WX tolerates early violations from detector mistakes; after the
    # settle window (time for the adaptive timeouts to absorb start-up
    # jitter, plus one meal to drain) none are acceptable.
    settle = min(
        horizon, spec.initial_timeout + spec.timeout_increment + spec.eat_time
    )
    late = [v for v in violations if v.end > settle]
    crashed = set(spec.crash_times)
    correct = [pid for pid in graph.nodes if pid not in crashed]
    patience = max(0.4 * spec.duration, 20 * spec.eat_time)
    starving = analysis.starving_processes(
        trace, correct, horizon=horizon, patience=patience
    )

    total_meals = sum(
        int(count) for result in results for count in result.get("meals", {}).values()
    )
    gauge_ceiling = gauge_max(merged_metrics, "net.in_transit")
    if gauge_ceiling is not None and not math.isfinite(gauge_ceiling):
        checker_violations.append("non-finite in-transit gauge")

    ok = not checker_violations and not late and not starving and (
        max_in_transit <= spec.channel_bound
    )
    return ClusterVerdict(
        ok=ok,
        hosts=results,
        checker_violations=checker_violations,
        exclusion_total=len(violations),
        exclusion_late=len(late),
        starving=starving,
        total_meals=total_meals,
        max_in_transit=max_in_transit,
        edge_peaks={f"{a}-{b}": peak for (a, b), (peak, _, _) in sorted(occupancy.items())},
        prometheus=render_prometheus(merged_metrics),
    )


def placement_summary(spec: ClusterSpec) -> str:
    """Human-readable diner-to-host assignment, e.g. ``host 0: [0, 2]``."""
    placement = spec.placement or spec.default_placement()
    by_host: Dict[int, List[int]] = {}
    for pid, host in sorted(placement.items()):
        by_host.setdefault(host, []).append(pid)
    return ", ".join(f"host {host}: {pids}" for host, pids in sorted(by_host.items()))
