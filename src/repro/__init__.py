"""repro — Eventually k-bounded wait-free distributed daemons.

A full reproduction of Song & Pike, *"Eventually k-bounded Wait-Free
Distributed Daemons"* (DSN 2007): a dining-philosophers algorithm over the
eventually perfect failure detector ◇P₁ that is wait-free under arbitrarily
many crash faults, safe under eventual weak exclusion, eventually
2-bounded-waiting, bounded in space and channel capacity, and quiescent
toward crashed processes — plus the distributed-daemon application that
schedules self-stabilizing protocols despite crashes.

Quickstart::

    from repro import DiningTable, scripted_detector, CrashPlan
    from repro.graphs import ring

    table = DiningTable(
        ring(8),
        seed=7,
        detector=scripted_detector(convergence_time=40.0, random_mistakes=True),
        crash_plan=CrashPlan.scripted({3: 25.0}),
    )
    table.run(until=400.0)
    assert table.starving_correct(patience=150.0) == []     # wait-free
    assert not table.violations_after(60.0)                 # eventual WX
    assert table.max_overtaking(after=120.0) <= 2           # eventual 2-BW

Packages: :mod:`repro.core` (Algorithm 1, daemon), :mod:`repro.detectors`
(◇P₁ oracles and a heartbeat implementation), :mod:`repro.sim`
(deterministic discrete-event substrate), :mod:`repro.graphs`,
:mod:`repro.baselines`, :mod:`repro.stabilization`, :mod:`repro.trace`,
:mod:`repro.experiments`.
"""

from repro.core import (
    AlwaysHungry,
    DinerActor,
    DinerState,
    DiningTable,
    DistributedDaemon,
    PoissonWorkload,
    ScriptedWorkload,
    Workload,
    heartbeat_detector,
    null_detector,
    perfect_detector,
    scripted_detector,
)
from repro.errors import (
    ChannelCapacityError,
    ConfigurationError,
    ForkDuplicationError,
    InvariantViolation,
    ReproError,
)
from repro.graphs import ConflictGraph
from repro.sim import CrashPlan, PartialSynchronyLatency, Simulator

__version__ = "1.0.0"

__all__ = [
    "AlwaysHungry",
    "ChannelCapacityError",
    "ConfigurationError",
    "ConflictGraph",
    "CrashPlan",
    "DinerActor",
    "DinerState",
    "DiningTable",
    "DistributedDaemon",
    "ForkDuplicationError",
    "InvariantViolation",
    "PartialSynchronyLatency",
    "PoissonWorkload",
    "ReproError",
    "ScriptedWorkload",
    "Simulator",
    "Workload",
    "__version__",
    "heartbeat_detector",
    "null_detector",
    "perfect_detector",
    "scripted_detector",
]
