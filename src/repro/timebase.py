"""Time as the algorithms see it — shared by every substrate.

Both substrates that can host the actors (the discrete-event kernel in
:mod:`repro.sim` and the live asyncio runtime in :mod:`repro.net`) model
time as a nonnegative float number of seconds.  The helpers here
centralize the conventions the rest of the library relies on:

* :data:`START_OF_TIME` is the clock value at substrate construction.
* :data:`END_OF_TIME` sorts after every reachable instant and is used for
  "never" deadlines (for example, the convergence time of a detector that
  is configured to never converge).
* :func:`validate_instant` and :func:`validate_duration` normalize the
  error behaviour of every public API that accepts times.

Keeping time a plain float (instead of a wrapper class) keeps the event
queue allocation-free on the hot path; the type alias :data:`Instant`
documents intent in signatures.  :mod:`repro.sim.time` re-exports these
names, so kernel-side code may keep importing from there.
"""

from __future__ import annotations

import math

from repro.errors import ConfigurationError

Instant = float
Duration = float

START_OF_TIME: Instant = 0.0
END_OF_TIME: Instant = math.inf


def validate_instant(value: float, *, name: str = "time") -> Instant:
    """Return ``value`` as an :data:`Instant`, rejecting negatives and NaN.

    ``END_OF_TIME`` (infinity) is accepted: it is the canonical "never".
    """
    value = float(value)
    if math.isnan(value) or value < START_OF_TIME:
        raise ConfigurationError(f"{name} must be a nonnegative number, got {value!r}")
    return value


def validate_duration(value: float, *, name: str = "duration", allow_zero: bool = True) -> Duration:
    """Return ``value`` as a :data:`Duration`, rejecting negatives and NaN."""
    value = float(value)
    if math.isnan(value) or value < 0.0:
        raise ConfigurationError(f"{name} must be a nonnegative number, got {value!r}")
    if not allow_zero and value == 0.0:
        raise ConfigurationError(f"{name} must be strictly positive, got {value!r}")
    return value
