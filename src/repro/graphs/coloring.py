"""Node colorings: the static priority scheme of Algorithm 1.

Section 3.1: "Upon initialization, we assume that each color variable is
assigned a locally-unique value so that no two neighbors have the same
color. ... Color values denote process priority and are static after
initialization."  The paper points at standard polynomial-time coloring
algorithms using O(δ) distinct values; this module provides two —
first-fit greedy and DSATUR — plus validation.

Colors are nonnegative integers; between neighbors, the *higher* color has
priority (Section 3.1: ``color_i > color_j`` means ``i`` beats ``j``).
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping

from repro.errors import ColoringError
from repro.graphs.conflict import ConflictGraph, ProcessId

Coloring = Dict[ProcessId, int]


def validate_coloring(graph: ConflictGraph, coloring: Mapping[ProcessId, int]) -> None:
    """Raise :class:`ColoringError` unless ``coloring`` is proper and total."""
    for node in graph.nodes:
        if node not in coloring:
            raise ColoringError(f"process {node} has no color")
        if int(coloring[node]) < 0:
            raise ColoringError(f"process {node} has negative color {coloring[node]}")
    for a, b in graph.edges:
        if coloring[a] == coloring[b]:
            raise ColoringError(
                f"neighbors {a} and {b} share color {coloring[a]}; priorities must differ"
            )


def _smallest_free_color(used: Iterable[int]) -> int:
    taken = set(used)
    color = 0
    while color in taken:
        color += 1
    return color


def greedy_coloring(graph: ConflictGraph) -> Coloring:
    """First-fit greedy coloring in ascending id order.

    Uses at most δ + 1 colors — the O(δ) bound the paper's space analysis
    (Section 7) relies on.
    """
    coloring: Coloring = {}
    for node in graph.nodes:
        coloring[node] = _smallest_free_color(
            coloring[nbr] for nbr in graph.neighbors(node) if nbr in coloring
        )
    validate_coloring(graph, coloring)
    return coloring


def dsatur_coloring(graph: ConflictGraph) -> Coloring:
    """DSATUR (Brélaz 1979): color the most saturation-constrained node first.

    Typically uses fewer colors than first-fit on irregular graphs, which
    shortens the priority chains the progress proof inducts over.
    Deterministic: ties break by (degree, then id).
    """
    coloring: Coloring = {}
    saturation: Dict[ProcessId, set] = {node: set() for node in graph.nodes}
    uncolored = set(graph.nodes)

    while uncolored:
        node = max(
            uncolored,
            key=lambda n: (len(saturation[n]), graph.degree(n), -n),
        )
        color = _smallest_free_color(saturation[node])
        coloring[node] = color
        uncolored.discard(node)
        for nbr in graph.neighbors(node):
            if nbr in uncolored:
                saturation[nbr].add(color)

    validate_coloring(graph, coloring)
    return coloring


def color_count(coloring: Mapping[ProcessId, int]) -> int:
    """Number of distinct colors used."""
    return len(set(coloring.values()))
