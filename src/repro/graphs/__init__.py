"""Conflict-graph substrate: graphs, topologies, and priority colorings."""

from repro.graphs.coloring import (
    Coloring,
    color_count,
    dsatur_coloring,
    greedy_coloring,
    validate_coloring,
)
from repro.graphs.conflict import ConflictGraph, Edge, ProcessId
from repro.graphs.membership import (
    MembershipDelta,
    MembershipLog,
    TopologyTimeline,
    TopologyView,
)
from repro.graphs.topologies import (
    binary_tree,
    by_name,
    clique,
    grid,
    hypercube,
    path,
    random_geometric,
    random_graph,
    ring,
    scale_free,
    star,
    torus,
)

__all__ = [
    "Coloring",
    "ConflictGraph",
    "Edge",
    "MembershipDelta",
    "MembershipLog",
    "ProcessId",
    "TopologyTimeline",
    "TopologyView",
    "binary_tree",
    "by_name",
    "clique",
    "color_count",
    "dsatur_coloring",
    "greedy_coloring",
    "grid",
    "hypercube",
    "path",
    "random_geometric",
    "random_graph",
    "ring",
    "scale_free",
    "star",
    "torus",
    "validate_coloring",
]
