"""Conflict graphs.

A dining instance is an undirected graph ``C = (Π, E)`` whose vertices are
processes and whose edges mark pairs that must not be scheduled (eat)
simultaneously.  :class:`ConflictGraph` is a small immutable adjacency
structure with the validation and queries the rest of the library needs;
standard topologies live in :mod:`repro.graphs.topologies`.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Tuple

from repro.errors import ConfigurationError

ProcessId = int
Edge = Tuple[ProcessId, ProcessId]


def _normalize_edge(a: ProcessId, b: ProcessId) -> Edge:
    if a == b:
        raise ConfigurationError(f"self-loop on process {a}: a process cannot conflict with itself")
    return (a, b) if a < b else (b, a)


class ConflictGraph:
    """Immutable undirected conflict graph.

    Parameters
    ----------
    nodes:
        Process ids.  Isolated processes (no conflicts) are permitted —
        they may always eat.
    edges:
        Pairs of distinct process ids; order within a pair and duplicate
        pairs are normalized away.
    """

    def __init__(self, nodes: Iterable[ProcessId], edges: Iterable[Tuple[ProcessId, ProcessId]]) -> None:
        self._nodes: Tuple[ProcessId, ...] = tuple(sorted(set(int(n) for n in nodes)))
        node_set = set(self._nodes)
        if not node_set:
            raise ConfigurationError("a conflict graph needs at least one process")

        normalized = set()
        for a, b in edges:
            edge = _normalize_edge(int(a), int(b))
            if edge[0] not in node_set or edge[1] not in node_set:
                raise ConfigurationError(f"edge {edge} mentions an unknown process")
            normalized.add(edge)
        self._edges: FrozenSet[Edge] = frozenset(normalized)

        adjacency: Dict[ProcessId, List[ProcessId]] = {n: [] for n in self._nodes}
        for a, b in self._edges:
            adjacency[a].append(b)
            adjacency[b].append(a)
        self._neighbors: Dict[ProcessId, Tuple[ProcessId, ...]] = {
            n: tuple(sorted(adj)) for n, adj in adjacency.items()
        }

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> Tuple[ProcessId, ...]:
        return self._nodes

    @property
    def edges(self) -> FrozenSet[Edge]:
        return self._edges

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, pid: ProcessId) -> bool:
        return pid in self._neighbors

    def __iter__(self) -> Iterator[ProcessId]:
        return iter(self._nodes)

    def neighbors(self, pid: ProcessId) -> Tuple[ProcessId, ...]:
        """Neighbors of ``pid`` in ascending id order."""
        try:
            return self._neighbors[pid]
        except KeyError:
            raise ConfigurationError(f"unknown process id {pid}") from None

    def are_neighbors(self, a: ProcessId, b: ProcessId) -> bool:
        return a != b and _normalize_edge(a, b) in self._edges

    def degree(self, pid: ProcessId) -> int:
        return len(self.neighbors(pid))

    @property
    def max_degree(self) -> int:
        """δ — the maximum degree, which bounds colors and local state."""
        return max((len(adj) for adj in self._neighbors.values()), default=0)

    # ------------------------------------------------------------------
    # Structural-sharing snapshots
    # ------------------------------------------------------------------
    def with_delta(
        self,
        *,
        add_nodes: Iterable[ProcessId] = (),
        remove_nodes: Iterable[ProcessId] = (),
        add_edges: Iterable[Tuple[ProcessId, ProcessId]] = (),
        remove_edges: Iterable[Tuple[ProcessId, ProcessId]] = (),
    ) -> "ConflictGraph":
        """A new snapshot sharing every untouched adjacency tuple.

        Per-epoch views of a churning topology are produced by replaying
        small deltas against the previous snapshot; rebuilding the full
        adjacency dict per epoch is O(n + m) regardless of delta size,
        which at n=10,000 dominates the replay.  This constructor copies
        the node tuple, the edge set, and the neighbor *dict* but reuses
        the per-node neighbor tuples of every node the delta does not
        touch, so cost scales with the delta, not the graph (see
        docs/PERFORMANCE.md).
        """
        added_nodes = {int(n) for n in add_nodes}
        removed_nodes = {int(n) for n in remove_nodes}
        overlap = added_nodes & removed_nodes
        if overlap:
            raise ConfigurationError(
                f"delta both adds and removes node(s) {sorted(overlap)}"
            )
        node_set = (set(self._nodes) | added_nodes) - removed_nodes
        if not node_set:
            raise ConfigurationError("delta removes every process")

        added_edges = {_normalize_edge(int(a), int(b)) for a, b in add_edges}
        removed_edges = {_normalize_edge(int(a), int(b)) for a, b in remove_edges}
        old = self._neighbors
        # An edge incident to a removed node goes with the node; its
        # incidence comes from the adjacency, not an O(m) edge scan.
        for r in removed_nodes:
            for p in old.get(r, ()):
                removed_edges.add(_normalize_edge(r, p))
        for edge in added_edges:
            if edge[0] not in node_set or edge[1] not in node_set:
                raise ConfigurationError(f"edge {edge} mentions an unknown process")

        # Per-endpoint adjacency patches: only these nodes get a rebuilt
        # neighbor tuple, everyone else shares theirs with ``self``.
        removed_adj: Dict[ProcessId, set] = {}
        added_adj: Dict[ProcessId, set] = {}
        for a, b in removed_edges:
            removed_adj.setdefault(a, set()).add(b)
            removed_adj.setdefault(b, set()).add(a)
        for a, b in added_edges:
            added_adj.setdefault(a, set()).add(b)
            added_adj.setdefault(b, set()).add(a)
        touched = (added_nodes | set(removed_adj) | set(added_adj)) & node_set

        graph = ConflictGraph.__new__(ConflictGraph)
        graph._nodes = tuple(sorted(node_set))
        # Frozenset difference/union run at C speed; an added edge that
        # was also removed ends up present, matching the patch order.
        graph._edges = (self._edges - removed_edges) | added_edges
        neighbors: Dict[ProcessId, Tuple[ProcessId, ...]] = dict(old)
        for r in removed_nodes:
            neighbors.pop(r, None)
        for n in touched:
            adj = (set(old.get(n, ())) - removed_adj.get(n, set())) | added_adj.get(
                n, set()
            )
            neighbors[n] = tuple(sorted(adj))
        graph._neighbors = neighbors
        return graph

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"ConflictGraph(n={len(self._nodes)}, m={len(self._edges)}, delta={self.max_degree})"
