"""Conflict graphs.

A dining instance is an undirected graph ``C = (Π, E)`` whose vertices are
processes and whose edges mark pairs that must not be scheduled (eat)
simultaneously.  :class:`ConflictGraph` is a small immutable adjacency
structure with the validation and queries the rest of the library needs;
standard topologies live in :mod:`repro.graphs.topologies`.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Tuple

from repro.errors import ConfigurationError

ProcessId = int
Edge = Tuple[ProcessId, ProcessId]


def _normalize_edge(a: ProcessId, b: ProcessId) -> Edge:
    if a == b:
        raise ConfigurationError(f"self-loop on process {a}: a process cannot conflict with itself")
    return (a, b) if a < b else (b, a)


class ConflictGraph:
    """Immutable undirected conflict graph.

    Parameters
    ----------
    nodes:
        Process ids.  Isolated processes (no conflicts) are permitted —
        they may always eat.
    edges:
        Pairs of distinct process ids; order within a pair and duplicate
        pairs are normalized away.
    """

    def __init__(self, nodes: Iterable[ProcessId], edges: Iterable[Tuple[ProcessId, ProcessId]]) -> None:
        self._nodes: Tuple[ProcessId, ...] = tuple(sorted(set(int(n) for n in nodes)))
        node_set = set(self._nodes)
        if not node_set:
            raise ConfigurationError("a conflict graph needs at least one process")

        normalized = set()
        for a, b in edges:
            edge = _normalize_edge(int(a), int(b))
            if edge[0] not in node_set or edge[1] not in node_set:
                raise ConfigurationError(f"edge {edge} mentions an unknown process")
            normalized.add(edge)
        self._edges: FrozenSet[Edge] = frozenset(normalized)

        adjacency: Dict[ProcessId, List[ProcessId]] = {n: [] for n in self._nodes}
        for a, b in self._edges:
            adjacency[a].append(b)
            adjacency[b].append(a)
        self._neighbors: Dict[ProcessId, Tuple[ProcessId, ...]] = {
            n: tuple(sorted(adj)) for n, adj in adjacency.items()
        }

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> Tuple[ProcessId, ...]:
        return self._nodes

    @property
    def edges(self) -> FrozenSet[Edge]:
        return self._edges

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, pid: ProcessId) -> bool:
        return pid in self._neighbors

    def __iter__(self) -> Iterator[ProcessId]:
        return iter(self._nodes)

    def neighbors(self, pid: ProcessId) -> Tuple[ProcessId, ...]:
        """Neighbors of ``pid`` in ascending id order."""
        try:
            return self._neighbors[pid]
        except KeyError:
            raise ConfigurationError(f"unknown process id {pid}") from None

    def are_neighbors(self, a: ProcessId, b: ProcessId) -> bool:
        return a != b and _normalize_edge(a, b) in self._edges

    def degree(self, pid: ProcessId) -> int:
        return len(self.neighbors(pid))

    @property
    def max_degree(self) -> int:
        """δ — the maximum degree, which bounds colors and local state."""
        return max((len(adj) for adj in self._neighbors.values()), default=0)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"ConflictGraph(n={len(self._nodes)}, m={len(self._edges)}, delta={self.max_degree})"
