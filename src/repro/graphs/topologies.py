"""Standard conflict-graph topologies.

Dijkstra's original dining problem is a ring; Lynch generalized it to
arbitrary conflict graphs.  The experiments sweep the shapes below, which
cover the interesting regimes: sparse vs. dense, symmetric vs. hub-like,
bounded vs. linear degree.
"""

from __future__ import annotations

import math
import random
from typing import Optional

from repro.errors import ConfigurationError
from repro.graphs.conflict import ConflictGraph


def _require(count: int, minimum: int, what: str) -> int:
    count = int(count)
    if count < minimum:
        raise ConfigurationError(f"{what} needs at least {minimum} processes, got {count}")
    return count


def ring(n: int) -> ConflictGraph:
    """Cycle of ``n`` diners (Dijkstra's round table)."""
    n = _require(n, 3, "ring")
    return ConflictGraph(range(n), [(i, (i + 1) % n) for i in range(n)])


def path(n: int) -> ConflictGraph:
    """Line of ``n`` diners; the two ends have degree one."""
    n = _require(n, 2, "path")
    return ConflictGraph(range(n), [(i, i + 1) for i in range(n - 1)])


def star(n: int) -> ConflictGraph:
    """One hub (process 0) in conflict with ``n - 1`` leaves."""
    n = _require(n, 2, "star")
    return ConflictGraph(range(n), [(0, i) for i in range(1, n)])


def clique(n: int) -> ConflictGraph:
    """Complete graph: global mutual exclusion, the worst case δ = n - 1."""
    n = _require(n, 2, "clique")
    return ConflictGraph(range(n), [(i, j) for i in range(n) for j in range(i + 1, n)])


def grid(rows: int, cols: int) -> ConflictGraph:
    """rows × cols mesh with 4-neighborhood conflicts."""
    rows, cols = int(rows), int(cols)
    if rows < 1 or cols < 1:
        raise ConfigurationError("grid needs positive dimensions")
    if rows * cols < 2:
        raise ConfigurationError("grid needs at least 2 processes")

    def pid(r: int, c: int) -> int:
        return r * cols + c

    edges = []
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                edges.append((pid(r, c), pid(r, c + 1)))
            if r + 1 < rows:
                edges.append((pid(r, c), pid(r + 1, c)))
    return ConflictGraph(range(rows * cols), edges)


def binary_tree(n: int) -> ConflictGraph:
    """Complete binary tree on ``n`` nodes (heap numbering)."""
    n = _require(n, 2, "binary tree")
    edges = [(child, (child - 1) // 2) for child in range(1, n)]
    return ConflictGraph(range(n), edges)


def hypercube(dimension: int) -> ConflictGraph:
    """d-dimensional hypercube: 2^d processes, neighbors differ in one bit.

    The standard symmetric bounded-degree interconnect: δ = d = log₂ n,
    so dining state stays logarithmic while diameter stays low.
    """
    dimension = int(dimension)
    if dimension < 1:
        raise ConfigurationError("hypercube needs dimension >= 1")
    if dimension > 10:
        raise ConfigurationError("hypercube dimension > 10 is unreasonably large here")
    n = 1 << dimension
    edges = [
        (node, node ^ (1 << bit))
        for node in range(n)
        for bit in range(dimension)
        if node < node ^ (1 << bit)
    ]
    return ConflictGraph(range(n), edges)


def torus(rows: int, cols: int) -> ConflictGraph:
    """rows × cols grid with wraparound (4-regular for rows, cols ≥ 3)."""
    rows, cols = int(rows), int(cols)
    if rows < 3 or cols < 3:
        raise ConfigurationError("torus needs rows, cols >= 3 (else edges collapse)")

    def pid(r: int, c: int) -> int:
        return r * cols + c

    edges = []
    for r in range(rows):
        for c in range(cols):
            edges.append((pid(r, c), pid(r, (c + 1) % cols)))
            edges.append((pid(r, c), pid((r + 1) % rows, c)))
    return ConflictGraph(range(rows * cols), edges)


def random_graph(n: int, edge_probability: float, seed: int = 0) -> ConflictGraph:
    """Erdős–Rényi G(n, p) conflict graph from a local seed.

    Uses its own :class:`random.Random` so topology generation never
    couples with simulation randomness.
    """
    n = _require(n, 2, "random graph")
    if not 0.0 <= edge_probability <= 1.0:
        raise ConfigurationError(f"edge probability must be in [0, 1], got {edge_probability!r}")
    rng = random.Random(seed)
    edges = [
        (i, j)
        for i in range(n)
        for j in range(i + 1, n)
        if rng.random() < edge_probability
    ]
    return ConflictGraph(range(n), edges)


def random_geometric(n: int, radius: Optional[float] = None, *, seed: int = 0) -> ConflictGraph:
    """Random geometric graph: ``n`` points in the unit square, conflicts
    between every pair closer than ``radius``.

    The scale-out workhorse: degree stays O(n·r²) — locally bounded, like
    a sensor field or a wireless mesh — so the paper's O(δ) state and
    ≤4-per-edge channel claims can be measured at n in the thousands.
    ``radius=None`` picks ~1.2× the connectivity threshold
    √(ln n / πn), giving an (almost surely) connected graph whose mean
    degree grows only logarithmically.

    Edge discovery uses a uniform cell grid (cell side = radius, candidate
    pairs only within the 3×3 neighborhood), so building n=10,000 costs
    O(n·δ) instead of the naive O(n²) distance matrix.
    """
    n = _require(n, 2, "random geometric graph")
    if radius is None:
        radius = 1.2 * math.sqrt(math.log(n) / (math.pi * n))
    radius = float(radius)
    if not 0.0 < radius <= math.sqrt(2.0):
        raise ConfigurationError(f"geometric radius must be in (0, sqrt(2)], got {radius!r}")
    rng = random.Random(seed)
    points = [(rng.random(), rng.random()) for _ in range(n)]

    inv = 1.0 / radius
    cells: dict = {}
    for pid, (x, y) in enumerate(points):
        cells.setdefault((int(x * inv), int(y * inv)), []).append(pid)

    r2 = radius * radius
    edges = []
    # Each unordered cell pair is visited once: within-cell pairs i<j, and
    # the four "forward" neighbor offsets of the eight surrounding cells.
    forward = ((0, 1), (1, -1), (1, 0), (1, 1))
    for (cx, cy), members in cells.items():
        for a in range(len(members)):
            i = members[a]
            xi, yi = points[i]
            for b in range(a + 1, len(members)):
                j = members[b]
                dx = xi - points[j][0]
                dy = yi - points[j][1]
                if dx * dx + dy * dy <= r2:
                    edges.append((i, j))
        for ox, oy in forward:
            others = cells.get((cx + ox, cy + oy))
            if others:
                for i in members:
                    xi, yi = points[i]
                    for j in others:
                        dx = xi - points[j][0]
                        dy = yi - points[j][1]
                        if dx * dx + dy * dy <= r2:
                            edges.append((i, j))
    return ConflictGraph(range(n), edges)


def scale_free(n: int, attachment: int = 2, *, seed: int = 0) -> ConflictGraph:
    """Barabási–Albert preferential-attachment graph.

    Each arriving node attaches to ``attachment`` distinct existing nodes
    chosen proportionally to their current degree, yielding the power-law
    hubs of real-world conflict structure.  δ grows with n (hub degree
    ~√n), which is exactly the stress the O(δ) per-diner state and the
    hub's fork fan-in need: the opposite regime from the bounded-degree
    geometric mesh.

    Preferential selection uses the standard repeated-endpoints list (one
    entry per edge endpoint), so sampling is O(1) per draw and the whole
    construction is O(n·attachment).
    """
    n = _require(n, 3, "scale-free graph")
    m = int(attachment)
    if not 1 <= m < n:
        raise ConfigurationError(f"attachment must be in [1, n), got {attachment!r}")
    rng = random.Random(seed)
    edges = []
    # Endpoint multiset: node k appears degree(k) times; drawing uniformly
    # from it IS degree-proportional selection.
    endpoints: list = []
    targets = list(range(m))  # the first arrival wires to the m founders
    for new in range(m, n):
        for t in targets:
            edges.append((new, t))
            endpoints.append(new)
            endpoints.append(t)
        if new + 1 < n:
            chosen = set()
            while len(chosen) < m:
                chosen.add(endpoints[rng.randrange(len(endpoints))])
            targets = sorted(chosen)  # sorted: iteration order never depends on set hashing
    return ConflictGraph(range(n), edges)


def by_name(
    name: str,
    n: int,
    *,
    seed: int = 0,
    edge_probability: float = 0.3,
    radius: Optional[float] = None,
    attachment: int = 2,
) -> ConflictGraph:
    """Topology factory keyed by name, for parameter sweeps.

    Grid dimensions are the squarest factorization of ``n``.
    """
    name = name.lower()
    if name == "ring":
        return ring(n)
    if name == "path":
        return path(n)
    if name == "star":
        return star(n)
    if name == "clique":
        return clique(n)
    if name == "tree":
        return binary_tree(n)
    if name == "random":
        return random_graph(n, edge_probability, seed=seed)
    if name in ("geometric", "random_geometric"):
        return random_geometric(n, radius, seed=seed)
    if name in ("scale_free", "scalefree", "barabasi_albert"):
        return scale_free(n, attachment, seed=seed)
    if name == "hypercube":
        dimension = n.bit_length() - 1
        if 1 << dimension != n:
            raise ConfigurationError(f"hypercube needs a power-of-two size, got {n}")
        return hypercube(dimension)
    if name == "torus":
        best: Optional[int] = None
        for rows in range(3, int(n ** 0.5) + 1):
            if n % rows == 0 and n // rows >= 3:
                best = rows
        if best is None:
            raise ConfigurationError(f"cannot factor {n} into a torus with sides >= 3")
        return torus(best, n // best)
    if name == "grid":
        best: Optional[int] = None
        for rows in range(1, int(n ** 0.5) + 1):
            if n % rows == 0:
                best = rows
        if best is None or best == 1:
            raise ConfigurationError(f"cannot factor {n} into a non-trivial grid")
        return grid(best, n // best)
    raise ConfigurationError(f"unknown topology {name!r}")
