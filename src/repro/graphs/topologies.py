"""Standard conflict-graph topologies.

Dijkstra's original dining problem is a ring; Lynch generalized it to
arbitrary conflict graphs.  The experiments sweep the shapes below, which
cover the interesting regimes: sparse vs. dense, symmetric vs. hub-like,
bounded vs. linear degree.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.errors import ConfigurationError
from repro.graphs.conflict import ConflictGraph


def _require(count: int, minimum: int, what: str) -> int:
    count = int(count)
    if count < minimum:
        raise ConfigurationError(f"{what} needs at least {minimum} processes, got {count}")
    return count


def ring(n: int) -> ConflictGraph:
    """Cycle of ``n`` diners (Dijkstra's round table)."""
    n = _require(n, 3, "ring")
    return ConflictGraph(range(n), [(i, (i + 1) % n) for i in range(n)])


def path(n: int) -> ConflictGraph:
    """Line of ``n`` diners; the two ends have degree one."""
    n = _require(n, 2, "path")
    return ConflictGraph(range(n), [(i, i + 1) for i in range(n - 1)])


def star(n: int) -> ConflictGraph:
    """One hub (process 0) in conflict with ``n - 1`` leaves."""
    n = _require(n, 2, "star")
    return ConflictGraph(range(n), [(0, i) for i in range(1, n)])


def clique(n: int) -> ConflictGraph:
    """Complete graph: global mutual exclusion, the worst case δ = n - 1."""
    n = _require(n, 2, "clique")
    return ConflictGraph(range(n), [(i, j) for i in range(n) for j in range(i + 1, n)])


def grid(rows: int, cols: int) -> ConflictGraph:
    """rows × cols mesh with 4-neighborhood conflicts."""
    rows, cols = int(rows), int(cols)
    if rows < 1 or cols < 1:
        raise ConfigurationError("grid needs positive dimensions")
    if rows * cols < 2:
        raise ConfigurationError("grid needs at least 2 processes")

    def pid(r: int, c: int) -> int:
        return r * cols + c

    edges = []
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                edges.append((pid(r, c), pid(r, c + 1)))
            if r + 1 < rows:
                edges.append((pid(r, c), pid(r + 1, c)))
    return ConflictGraph(range(rows * cols), edges)


def binary_tree(n: int) -> ConflictGraph:
    """Complete binary tree on ``n`` nodes (heap numbering)."""
    n = _require(n, 2, "binary tree")
    edges = [(child, (child - 1) // 2) for child in range(1, n)]
    return ConflictGraph(range(n), edges)


def hypercube(dimension: int) -> ConflictGraph:
    """d-dimensional hypercube: 2^d processes, neighbors differ in one bit.

    The standard symmetric bounded-degree interconnect: δ = d = log₂ n,
    so dining state stays logarithmic while diameter stays low.
    """
    dimension = int(dimension)
    if dimension < 1:
        raise ConfigurationError("hypercube needs dimension >= 1")
    if dimension > 10:
        raise ConfigurationError("hypercube dimension > 10 is unreasonably large here")
    n = 1 << dimension
    edges = [
        (node, node ^ (1 << bit))
        for node in range(n)
        for bit in range(dimension)
        if node < node ^ (1 << bit)
    ]
    return ConflictGraph(range(n), edges)


def torus(rows: int, cols: int) -> ConflictGraph:
    """rows × cols grid with wraparound (4-regular for rows, cols ≥ 3)."""
    rows, cols = int(rows), int(cols)
    if rows < 3 or cols < 3:
        raise ConfigurationError("torus needs rows, cols >= 3 (else edges collapse)")

    def pid(r: int, c: int) -> int:
        return r * cols + c

    edges = []
    for r in range(rows):
        for c in range(cols):
            edges.append((pid(r, c), pid(r, (c + 1) % cols)))
            edges.append((pid(r, c), pid((r + 1) % rows, c)))
    return ConflictGraph(range(rows * cols), edges)


def random_graph(n: int, edge_probability: float, seed: int = 0) -> ConflictGraph:
    """Erdős–Rényi G(n, p) conflict graph from a local seed.

    Uses its own :class:`random.Random` so topology generation never
    couples with simulation randomness.
    """
    n = _require(n, 2, "random graph")
    if not 0.0 <= edge_probability <= 1.0:
        raise ConfigurationError(f"edge probability must be in [0, 1], got {edge_probability!r}")
    rng = random.Random(seed)
    edges = [
        (i, j)
        for i in range(n)
        for j in range(i + 1, n)
        if rng.random() < edge_probability
    ]
    return ConflictGraph(range(n), edges)


def by_name(name: str, n: int, *, seed: int = 0, edge_probability: float = 0.3) -> ConflictGraph:
    """Topology factory keyed by name, for parameter sweeps.

    Grid dimensions are the squarest factorization of ``n``.
    """
    name = name.lower()
    if name == "ring":
        return ring(n)
    if name == "path":
        return path(n)
    if name == "star":
        return star(n)
    if name == "clique":
        return clique(n)
    if name == "tree":
        return binary_tree(n)
    if name == "random":
        return random_graph(n, edge_probability, seed=seed)
    if name == "hypercube":
        dimension = n.bit_length() - 1
        if 1 << dimension != n:
            raise ConfigurationError(f"hypercube needs a power-of-two size, got {n}")
        return hypercube(dimension)
    if name == "torus":
        best: Optional[int] = None
        for rows in range(3, int(n ** 0.5) + 1):
            if n % rows == 0 and n // rows >= 3:
                best = rows
        if best is None:
            raise ConfigurationError(f"cannot factor {n} into a torus with sides >= 3")
        return torus(best, n // best)
    if name == "grid":
        best: Optional[int] = None
        for rows in range(1, int(n ** 0.5) + 1):
            if n % rows == 0:
                best = rows
        if best is None or best == 1:
            raise ConfigurationError(f"cannot factor {n} into a non-trivial grid")
        return grid(best, n // best)
    raise ConfigurationError(f"unknown topology {name!r}")
