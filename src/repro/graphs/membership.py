"""Epoched topology views over a log of membership deltas.

The paper fixes the conflict graph ``C = (Π, E)`` for the lifetime of
the system; real daemon deployments see joins, leaves,
recover-and-rejoin, and edges that appear and disappear.  This module
lifts the static assumption without touching :class:`ConflictGraph`
itself: the immutable graph stays the *per-epoch snapshot*, and a
:class:`MembershipLog` of timestamped :class:`MembershipDelta` records
produces the view at any instant, with a monotone epoch counter (epoch 0
is the initial graph; every applied delta increments it).

The replay model keeps, per node, a *latent* neighbor set plus an
*active* flag:

* ``join(pid, edges)`` — a brand-new process arrives; its edges define
  its latent neighbor set, and any edge whose other endpoint is active
  materializes immediately.
* ``leave(pid)`` — the process departs; every incident edge leaves the
  view but its latent neighbor set survives (what a ``rejoin`` restores).
* ``rejoin(pid)`` — a departed process returns with fresh (hygienically
  re-initialized) per-edge state; latent edges to active endpoints
  rematerialize.
* ``add_edge(a, b)`` / ``remove_edge(a, b)`` — the latent edge set
  changes; the live view changes iff both endpoints are active.

:class:`TopologyTimeline` binds an initial graph to a log and answers
the queries the rest of the stack needs: the view (and epoch) at an
instant, per-edge existence intervals, per-node residency intervals,
and the *union graph* — every node and edge that ever exists, which is
what colorings and failure detectors are built over so that a process
joining at epoch 7 already has a priority color distinct from all its
eventual neighbors.  When the log is empty the union **is** the initial
graph object, so static runs are wired bit-identically to a world where
this module does not exist.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.graphs.conflict import ConflictGraph, Edge, ProcessId, _normalize_edge

#: The membership verbs, in the vocabulary both substrates execute.
VERBS = ("join", "leave", "rejoin", "add_edge", "remove_edge")


@dataclass(frozen=True)
class MembershipDelta:
    """One timestamped membership change.

    ``pid`` is the subject process for ``join``/``leave``/``rejoin``;
    for the edge verbs the subject pair is ``(pid, peer)``.  ``edges``
    carries a ``join``'s initial neighbor list.
    """

    time: float
    verb: str
    pid: ProcessId
    edges: Tuple[ProcessId, ...] = ()
    peer: Optional[ProcessId] = None

    def __post_init__(self) -> None:
        if self.verb not in VERBS:
            raise ConfigurationError(
                f"unknown membership verb {self.verb!r}; known: {VERBS}"
            )
        if self.time < 0:
            raise ConfigurationError(f"membership delta before t=0: {self.time!r}")
        if self.verb in ("add_edge", "remove_edge"):
            if self.peer is None:
                raise ConfigurationError(f"{self.verb} of {self.pid} needs a peer")
            _normalize_edge(self.pid, self.peer)  # rejects self-loops
        elif self.verb == "join" and not self.edges:
            raise ConfigurationError(
                f"join of {self.pid} needs at least one edge (an isolated "
                "diner never conflicts and never exercises the protocol)"
            )

    def describe(self) -> str:
        if self.verb == "join":
            return f"join {self.pid}~{list(self.edges)}@{self.time:g}"
        if self.peer is not None:
            return f"{self.verb} {self.pid}-{self.peer}@{self.time:g}"
        return f"{self.verb} {self.pid}@{self.time:g}"

    def to_json(self) -> dict:
        data = {"time": self.time, "verb": self.verb, "pid": self.pid}
        if self.edges:
            data["edges"] = list(self.edges)
        if self.peer is not None:
            data["peer"] = self.peer
        return data

    @classmethod
    def from_json(cls, data: dict) -> "MembershipDelta":
        return cls(
            time=float(data["time"]),
            verb=str(data["verb"]),
            pid=int(data["pid"]),
            edges=tuple(int(e) for e in data.get("edges", ())),
            peer=int(data["peer"]) if data.get("peer") is not None else None,
        )


class MembershipLog:
    """An ordered, validated sequence of deltas.

    Construction sorts by ``(time, original position)`` — same-instant
    deltas apply in the order given — and rejects sequences that cannot
    replay (leaving a node that is not active, rejoining one that never
    left, joining an existing pid, …), so every log that constructs is
    replayable on both substrates.
    """

    def __init__(self, deltas: Iterable[MembershipDelta] = ()) -> None:
        ordered = sorted(enumerate(deltas), key=lambda item: (item[1].time, item[0]))
        self._deltas: Tuple[MembershipDelta, ...] = tuple(d for _, d in ordered)

    @property
    def deltas(self) -> Tuple[MembershipDelta, ...]:
        return self._deltas

    def __len__(self) -> int:
        return len(self._deltas)

    def __iter__(self) -> Iterator[MembershipDelta]:
        return iter(self._deltas)

    def __bool__(self) -> bool:
        return bool(self._deltas)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, MembershipLog) and self._deltas == other._deltas

    def __hash__(self) -> int:
        return hash(self._deltas)

    def last_time(self) -> float:
        return self._deltas[-1].time if self._deltas else 0.0

    def to_json(self) -> List[dict]:
        return [d.to_json() for d in self._deltas]

    @classmethod
    def from_json(cls, data: Sequence[dict]) -> "MembershipLog":
        return cls(MembershipDelta.from_json(d) for d in data)

    def describe(self) -> str:
        return "; ".join(d.describe() for d in self._deltas) or "(static)"


class _Replay:
    """Mutable replay state: latent neighbor sets + the active set."""

    def __init__(self, initial: ConflictGraph) -> None:
        self.active = set(initial.nodes)
        self.latent: Dict[ProcessId, set] = {
            pid: set(initial.neighbors(pid)) for pid in initial.nodes
        }

    def apply(self, delta: MembershipDelta) -> None:
        pid = delta.pid
        if delta.verb == "join":
            if pid in self.latent:
                raise ConfigurationError(
                    f"{delta.describe()}: pid {pid} already exists (use rejoin)"
                )
            self.latent[pid] = set()
            for peer in delta.edges:
                if peer == pid:
                    raise ConfigurationError(f"{delta.describe()}: self-loop")
                if peer not in self.latent:
                    raise ConfigurationError(
                        f"{delta.describe()}: unknown neighbor {peer}"
                    )
                self.latent[pid].add(peer)
                self.latent[peer].add(pid)
            self.active.add(pid)
        elif delta.verb == "leave":
            if pid not in self.active:
                raise ConfigurationError(
                    f"{delta.describe()}: pid {pid} is not active"
                )
            self.active.discard(pid)
        elif delta.verb == "rejoin":
            if pid not in self.latent:
                raise ConfigurationError(
                    f"{delta.describe()}: pid {pid} never existed (use join)"
                )
            if pid in self.active:
                raise ConfigurationError(
                    f"{delta.describe()}: pid {pid} is already active"
                )
            self.active.add(pid)
        elif delta.verb == "add_edge":
            peer = delta.peer
            if pid not in self.latent or peer not in self.latent:
                raise ConfigurationError(
                    f"{delta.describe()}: unknown endpoint"
                )
            self.latent[pid].add(peer)
            self.latent[peer].add(pid)
        else:  # remove_edge
            peer = delta.peer
            if peer not in self.latent.get(pid, ()):
                raise ConfigurationError(
                    f"{delta.describe()}: edge does not exist"
                )
            self.latent[pid].discard(peer)
            self.latent[peer].discard(pid)

    def view_edges(self) -> set:
        edges = set()
        for pid in self.active:
            for peer in self.latent[pid]:
                if peer in self.active and pid < peer:
                    edges.add((pid, peer))
        return edges

    def snapshot(self) -> ConflictGraph:
        return ConflictGraph(self.active, self.view_edges())


@dataclass(frozen=True)
class TopologyView:
    """The conflict graph as it stands at one instant."""

    epoch: int
    time: float
    graph: ConflictGraph


class TopologyTimeline:
    """An initial graph bound to a membership log.

    Snapshots are materialized lazily-once at construction (the log is
    validated by replaying it); every query after that is a lookup.
    Epoch ``k`` is the view after the first ``k`` deltas; epoch 0 is the
    initial graph *object* — static callers holding the timeline of an
    empty log observe the exact graph they passed in.
    """

    def __init__(self, initial: ConflictGraph, log: Optional[MembershipLog] = None) -> None:
        self.initial = initial
        self.log = log if log is not None else MembershipLog()
        self._views: List[TopologyView] = [TopologyView(0, 0.0, initial)]
        replay = _Replay(initial)
        previous = initial
        for epoch, delta in enumerate(self.log, start=1):
            replay.apply(delta)
            previous = self._snapshot_after(previous, replay, delta)
            self._views.append(TopologyView(epoch, delta.time, previous))

    @staticmethod
    def _snapshot_after(
        previous: ConflictGraph, replay: _Replay, delta: MembershipDelta
    ) -> ConflictGraph:
        """The next snapshot via the structural-sharing delta constructor."""
        want_nodes = replay.active
        want_edges = replay.view_edges()
        have_nodes = set(previous.nodes)
        have_edges = set(previous.edges)
        return previous.with_delta(
            add_nodes=want_nodes - have_nodes,
            remove_nodes=have_nodes - want_nodes,
            add_edges=want_edges - have_edges,
            remove_edges={
                e
                for e in have_edges - want_edges
                # with_delta removes a dropped node's edges implicitly.
                if e[0] in want_nodes and e[1] in want_nodes
            },
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def dynamic(self) -> bool:
        return bool(self.log)

    @property
    def final_epoch(self) -> int:
        return len(self._views) - 1

    def snapshots(self) -> Tuple[TopologyView, ...]:
        return tuple(self._views)

    def view_at(self, time: float) -> TopologyView:
        """The view in force at ``time`` (deltas apply at their instant)."""
        current = self._views[0]
        for view in self._views[1:]:
            if view.time <= time:
                current = view
            else:
                break
        return current

    def epoch_at(self, time: float) -> int:
        return self.view_at(time).epoch

    def graph_at(self, time: float) -> ConflictGraph:
        return self.view_at(time).graph

    def final(self) -> TopologyView:
        return self._views[-1]

    def union(self) -> ConflictGraph:
        """Every node and edge that ever exists on this timeline.

        With an empty log this is the initial graph *object* — callers
        wiring colorings/detectors from the union are bit-identical to
        static construction.
        """
        if not self.log:
            return self.initial
        nodes = set(self.initial.nodes)
        edges = {tuple(e) for e in self.initial.edges}
        latent: Dict[ProcessId, set] = {
            pid: set(self.initial.neighbors(pid)) for pid in self.initial.nodes
        }
        for delta in self.log:
            if delta.verb == "join":
                nodes.add(delta.pid)
                latent.setdefault(delta.pid, set())
                for peer in delta.edges:
                    edges.add(_normalize_edge(delta.pid, peer))
            elif delta.verb == "add_edge":
                edges.add(_normalize_edge(delta.pid, delta.peer))
        return ConflictGraph(nodes, edges)

    def edge_intervals(self) -> Dict[Edge, List[Tuple[float, Optional[float]]]]:
        """Per-edge existence intervals ``[(start, end-or-None), ...]``.

        ``None`` ends an interval still open at the final epoch.  The
        dynamic edge-scoped exclusion checker judges overlap windows
        against these.
        """
        intervals: Dict[Edge, List[Tuple[float, Optional[float]]]] = {}
        open_since: Dict[Edge, float] = {}
        current: set = set()
        for view in self._views:
            edges = set(view.graph.edges)
            for edge in edges - current:
                open_since[edge] = view.time
            for edge in current - edges:
                intervals.setdefault(edge, []).append((open_since.pop(edge), view.time))
            current = edges
        for edge, start in sorted(open_since.items()):
            intervals.setdefault(edge, []).append((start, None))
        return intervals

    def residency_intervals(self) -> Dict[ProcessId, List[Tuple[float, Optional[float]]]]:
        """Per-node residency intervals, same shape as edge intervals."""
        intervals: Dict[ProcessId, List[Tuple[float, Optional[float]]]] = {}
        open_since: Dict[ProcessId, float] = {}
        current: set = set()
        for view in self._views:
            nodes = set(view.graph.nodes)
            for pid in nodes - current:
                open_since[pid] = view.time
            for pid in current - nodes:
                intervals.setdefault(pid, []).append((open_since.pop(pid), view.time))
            current = nodes
        for pid, start in sorted(open_since.items()):
            intervals.setdefault(pid, []).append((start, None))
        return intervals

    def residents_throughout(self, start: float = 0.0) -> Tuple[ProcessId, ...]:
        """Nodes continuously resident from ``start`` to the final epoch.

        The residency-conditioned progress judgement holds only these
        to the starvation-freedom standard; a process that departs (or
        arrives late and departs again) is excluded the way a crashed
        process is.
        """
        out = []
        for pid, spans in sorted(self.residency_intervals().items()):
            last = spans[-1]
            if last[1] is None and last[0] <= start:
                out.append(pid)
        return tuple(out)

    def stable_window(self) -> float:
        """When the final (stable) epoch begins — 0.0 for a static log.

        Judgement windows for eventual properties are anchored past
        this: fairness/progress are conditioned on the topology's last
        stable interval, per the Daymude–Richa framing.
        """
        return self.log.last_time()

    def describe(self) -> str:
        return (
            f"timeline: {len(self.initial)} node(s) initially, "
            f"{self.final_epoch} delta(s), {self.log.describe()}"
        )
