"""``repro.locks``: a lease service riding Algorithm 1.

The dining daemon becomes a client-serving lock manager: named resources
map onto conflict-graph nodes, a client session acquires a TTL lease on
a resource, and the grant fires exactly when that resource's (unchanged)
:class:`~repro.core.diner.DinerActor` enters *eating* — Algorithm 1 is
the scheduler, so every safety and fairness property the checkers judge
for dining transfers verbatim to the lease API (no double grants, 2
-bounded overtaking between contending sessions, progress across diner
crashes via ◇P₁).

Modules:

* :mod:`repro.locks.messages` — the four wire message types;
* :mod:`repro.locks.service`  — :class:`LockCore` (transport-agnostic
  brain), :class:`LeaseWorkload`, and :class:`LockService` (the live
  :class:`~repro.net.host.AsyncHost` adapter);
* :mod:`repro.locks.client`   — async :class:`LockClient`;
* :mod:`repro.locks.loadgen`  — the ``repro loadgen`` session driver.

Only :mod:`messages` is imported eagerly: :mod:`repro.net.codec` imports
it while defining the lease frame tags, so pulling the service (which
imports the codec back) at package-import time would be a cycle.
"""

from repro.locks.messages import (
    LEASE_MESSAGE_TYPES,
    SESSION_BASE,
    LeaseDenied,
    LeaseGrant,
    LeaseRelease,
    LeaseRequest,
)

__all__ = [
    "LEASE_MESSAGE_TYPES",
    "SESSION_BASE",
    "LeaseDenied",
    "LeaseGrant",
    "LeaseRelease",
    "LeaseRequest",
    "LeaseWorkload",
    "LockClient",
    "LockCore",
    "LockService",
    "default_resources",
]

_LAZY = {
    "LeaseWorkload": "repro.locks.service",
    "LockCore": "repro.locks.service",
    "LockService": "repro.locks.service",
    "LockClient": "repro.locks.client",
    "default_resources": "repro.locks.service",
}


def __getattr__(name):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
