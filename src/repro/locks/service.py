"""The lease service: Algorithm 1 as a client-facing lock manager.

Three pieces, layered so the scheduling brain never touches a socket:

* :class:`LockCore` — transport-agnostic.  Maps resource names onto
  conflict-graph pids, queues client sessions per resource, and converts
  the unchanged diner lifecycle into leases: a diner entering *eating*
  grants the head waiter; the eat duration **is** the lease TTL (via
  :class:`LeaseWorkload`), so the TTL lapsing is exactly Action 10
  firing and an early release is Action 10 run ahead of its timer
  (:meth:`~repro.core.diner.DinerActor.finish_eating_early`).  A client
  that vanishes mid-lease simply never releases: the TTL reclaims the
  resource and the next contender is granted onward — crash tolerance
  for free, judged by the same ``checks.standard_suite`` as every dining
  run.
* :class:`LeaseWorkload` — the workload that makes diners serve demand:
  ``think_duration`` is ``None`` (a diner stays thinking until a session
  queues — Action 1 stays external, the service just drives it) and
  ``eat_duration`` returns the just-granted lease's TTL.
* :class:`LockService` — the live-host adapter: binds client sessions to
  connections, frames replies over the LEB128 wire, and stamps every
  grant with the serving diner's **eating-span** trace context, which is
  how a load generator proves each grant is backed by a dining critical
  section.

Concurrency model: :class:`LockCore` is single-threaded and re-entrant
only through the diner's trace listeners.  Anything that needs to *drive*
a diner (wake a thinking diner, exit an eating one) goes through the two
injected callables — ``defer(fn)`` schedules ``fn`` on the substrate's
event loop soon, ``step(fn)`` runs ``fn`` now inside the substrate's
guarded context — so the same core serves the asyncio host and the
deterministic kernel (fuzz ``client_storm`` drives it directly).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional

from repro.core.workload import Workload
from repro.locks.messages import (
    SESSION_BASE,
    LeaseDenied,
    LeaseGrant,
    LeaseRelease,
    LeaseRequest,
)

__all__ = [
    "Lease",
    "LeaseWorkload",
    "LockCore",
    "LockService",
    "default_resources",
]

#: Deny reasons (machine-readable words carried by :class:`LeaseDenied`).
DENY_BUSY = "busy"
DENY_UNKNOWN = "unknown-resource"
DENY_NOT_LOCAL = "not-local"
DENY_CRASHED = "crashed"
DENY_SHUTDOWN = "shutdown"
DENY_BAD_TTL = "bad-ttl"
DENY_BAD_SESSION = "bad-session"
DENY_SESSION_BUSY = "session-busy"
DENY_NO_SERVICE = "no-service"


def default_resources(graph, placement=None, host_index=None) -> Dict[str, int]:
    """The canonical resource table: one resource ``r<pid>`` per node.

    With ``placement``/``host_index``, restricted to the pids that host
    serves (a lease request must land on the process running the diner).
    """
    pids = list(graph.nodes)
    if placement is not None and host_index is not None:
        pids = [pid for pid in pids if placement[pid] == host_index]
    return {f"r{pid}": pid for pid in pids}


class LeaseWorkload(Workload):
    """Demand-driven dining: think forever, eat for the granted TTL.

    ``think_duration`` returning ``None`` means a diner never self
    -hungers; the service calls
    :meth:`~repro.core.diner.DinerActor.become_hungry_now` when a session
    queues.  ``eat_duration`` is sampled by Action 9 *after* the
    phase-change listener has granted the head waiter, so the active
    lease's TTL is already installed when the diner asks how long to eat.
    ``idle_eat_time`` covers the race where every queued session
    abandoned between wake and grant (the meal runs, briefly, unleased).
    """

    def __init__(self, *, idle_eat_time: float = 0.005) -> None:
        if idle_eat_time <= 0:
            raise ValueError(f"idle_eat_time must be positive, got {idle_eat_time}")
        self.idle_eat_time = float(idle_eat_time)
        self._core: Optional["LockCore"] = None

    def bind(self, core: "LockCore") -> None:
        self._core = core

    def think_duration(self, pid, streams):
        return None

    def eat_duration(self, pid, streams):
        core = self._core
        if core is not None:
            ttl = core.active_ttl(pid)
            if ttl is not None:
                return ttl
        return self.idle_eat_time


class _PendingRequest:
    """One queued acquire: who asked, for what, and how to answer."""

    __slots__ = ("session", "resource", "ttl_ms", "reply", "enqueued_at")

    def __init__(self, session, resource, ttl_ms, reply, enqueued_at):
        self.session = session
        self.resource = resource
        self.ttl_ms = ttl_ms
        self.reply = reply
        self.enqueued_at = enqueued_at


@dataclass(slots=True)
class Lease:
    """One granted lease; lives exactly as long as its diner's meal."""

    lease_id: int
    session: int
    resource: str
    pid: int
    ttl_ms: int
    granted_at: float
    released: bool = False


class LockCore:
    """Transport-agnostic lease brain over a set of local diners.

    Parameters
    ----------
    resources:
        ``name -> pid`` for the resources this process serves; every pid
        must be a key of ``diners``.
    diners:
        The local :class:`~repro.core.diner.DinerActor` map.
    clock:
        Zero-argument current-time callable (host ``now`` / sim clock).
    defer:
        Schedules a callable to run soon on the substrate's event loop,
        inside its guarded/checked context.  Used for hunger nudges,
        which must never run inside another action of the same diner.
    step:
        Runs a callable immediately inside the guarded context (early
        releases want the diner to exit *now*, not a tick later).
        Defaults to direct invocation.
    registry:
        Optional :class:`~repro.obs.metrics.MetricsRegistry`; when given,
        grant/deny/expiry counters, wait/hold histograms, and live
        active/waiting gauges ride the ``/metrics`` scrape.
    """

    def __init__(
        self,
        resources: Mapping[str, int],
        diners: Mapping[int, object],
        *,
        clock: Callable[[], float],
        defer: Callable[[Callable[[], None]], None],
        step: Optional[Callable[[Callable[[], None]], None]] = None,
        registry=None,
        max_waiters: int = 512,
        max_ttl_ms: int = 60_000,
    ) -> None:
        for name, pid in resources.items():
            if pid not in diners:
                raise ValueError(f"resource {name!r} maps to non-local diner {pid}")
        self.resources: Dict[str, int] = dict(resources)
        self._diners = diners
        self._clock = clock
        self._defer = defer
        self._step = step if step is not None else (lambda fn: fn())
        self.max_waiters = int(max_waiters)
        self.max_ttl_ms = int(max_ttl_ms)

        self._queues: Dict[int, deque] = {}
        self._active: Dict[int, Lease] = {}
        self._active_by_pid: Dict[int, Lease] = {}
        #: session -> _PendingRequest (queued) or Lease (granted).
        self._session_state: Dict[int, object] = {}
        #: sessions that abandoned while queued; skipped at grant time.
        self._gone: set = set()
        self._wake_pending: set = set()
        self._next_lease_id = 1
        self._shut_down = False

        self.counters: Dict[str, int] = {
            "requests": 0,
            "grants": 0,
            "releases": 0,
            "expiries": 0,
            "stale_releases": 0,
            "abandons": 0,
            "abandoned_waiting": 0,
            "crash_reclaims": 0,
            "idle_meals": 0,
            "reply_drops": 0,
        }
        self.denies: Dict[str, int] = {}

        self._registry = registry
        if registry is not None:
            self._c_grants = registry.counter("locks.grants_total")
            self._c_requests = registry.counter("locks.requests_total")
            self._c_releases = registry.counter("locks.releases_total")
            self._c_expiries = registry.counter("locks.expiries_total")
            self._h_wait = registry.histogram("locks.wait_seconds")
            self._h_hold = registry.histogram("locks.hold_seconds")
            self._g_active = registry.gauge("locks.active_leases")
            self._g_waiting = registry.gauge("locks.waiting_sessions")
        self._waiting_total = 0

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach(self, trace) -> None:
        """Subscribe to the diners' lifecycle on ``trace`` (a recorder)."""
        from repro.trace.events import Crash, PhaseChange

        trace.add_listener(self._on_phase, types=(PhaseChange,))
        trace.add_listener(self._on_crash, types=(Crash,))

    # ------------------------------------------------------------------
    # Client-facing operations
    # ------------------------------------------------------------------
    def request(self, session: int, resource: str, ttl_ms: int, reply) -> None:
        """Queue an acquire; replies (possibly synchronously) via ``reply``."""
        self.counters["requests"] += 1
        if self._registry is not None:
            self._c_requests.inc()
        if self._shut_down:
            return self._deny(reply, 0, DENY_SHUTDOWN)
        if session < SESSION_BASE:
            return self._deny(reply, 0, DENY_BAD_SESSION)
        if session in self._session_state:
            return self._deny(reply, 0, DENY_SESSION_BUSY)
        pid = self.resources.get(resource)
        if pid is None:
            return self._deny(reply, 0, DENY_UNKNOWN)
        if ttl_ms < 1 or ttl_ms > self.max_ttl_ms:
            return self._deny(reply, pid, DENY_BAD_TTL)
        diner = self._diners[pid]
        if diner.crashed:
            return self._deny(reply, pid, DENY_CRASHED)
        queue = self._queues.get(pid)
        if queue is None:
            queue = self._queues[pid] = deque()
        if len(queue) >= self.max_waiters:
            return self._deny(reply, pid, DENY_BUSY)
        pending = _PendingRequest(session, resource, ttl_ms, reply, self._clock())
        queue.append(pending)
        self._session_state[session] = pending
        self._waiting_changed(1)
        self._gone.discard(session)
        if diner.is_thinking:
            self._wake(pid)

    def release(self, session: int, lease_id: int) -> bool:
        """Return a lease early; the diner exits eating immediately."""
        lease = self._session_state.get(session)
        if not isinstance(lease, Lease) or lease.lease_id != lease_id:
            self.counters["stale_releases"] += 1
            return False
        lease.released = True
        self.counters["releases"] += 1
        if self._registry is not None:
            self._c_releases.inc()
            self._h_hold.observe(max(0.0, self._clock() - lease.granted_at))
        diner = self._diners[lease.pid]
        # Action 10 ahead of its timer; the eating->thinking phase change
        # re-enters _on_finish, which unlinks the lease and wakes the
        # next waiter.
        self._step(diner.finish_eating_early)
        return True

    def abandon(self, session: int) -> None:
        """The client vanished (connection lost / fuzz storm abandon).

        A queued session is skipped when it reaches the head; a granted
        lease is left to its TTL — exactly the crashed-client story.
        """
        state = self._session_state.get(session)
        if state is None:
            return
        self.counters["abandons"] += 1
        if isinstance(state, Lease):
            return  # the TTL (the diner's eat timer) reclaims it
        del self._session_state[session]
        self._gone.add(session)

    def shutdown(self) -> None:
        """Deny every queued waiter; new requests are refused."""
        self._shut_down = True
        for pid, queue in self._queues.items():
            while queue:
                pending = queue.popleft()
                if pending.session in self._gone:
                    self._gone.discard(pending.session)
                    continue
                self._session_state.pop(pending.session, None)
                self._waiting_changed(-1)
                self._deny(pending.reply, pid, DENY_SHUTDOWN, counted_request=False)

    # ------------------------------------------------------------------
    # Diner lifecycle (trace listeners)
    # ------------------------------------------------------------------
    def _on_phase(self, record) -> None:
        if record.new_phase == "eating":
            self._on_eating(record.pid, record.time)
        elif record.old_phase == "eating":
            self._on_finish(record.pid, record.time)

    def _on_eating(self, pid: int, time: float) -> None:
        """Grant the head waiter the instant its diner starts eating.

        Runs inside ``DinerActor._try_eat`` *before* the eat duration is
        sampled, so installing the lease here is what makes
        :meth:`LeaseWorkload.eat_duration` return its TTL.
        """
        queue = self._queues.get(pid)
        pending = None
        while queue:
            head = queue.popleft()
            if head.session in self._gone:
                self._gone.discard(head.session)
                self.counters["abandoned_waiting"] += 1
                continue
            pending = head
            break
        if pending is None:
            self.counters["idle_meals"] += 1
            return
        lease = Lease(
            lease_id=self._next_lease_id,
            session=pending.session,
            resource=pending.resource,
            pid=pid,
            ttl_ms=pending.ttl_ms,
            granted_at=time,
        )
        self._next_lease_id += 1
        self._active[lease.lease_id] = lease
        self._active_by_pid[pid] = lease
        self._session_state[pending.session] = lease
        self.counters["grants"] += 1
        self._waiting_changed(-1)
        if self._registry is not None:
            self._c_grants.inc()
            self._h_wait.observe(max(0.0, time - pending.enqueued_at))
            self._g_active.set(len(self._active))
        pending.reply(LeaseGrant(pid, lease.lease_id, lease.ttl_ms))

    def _on_finish(self, pid: int, time: float) -> None:
        """The meal ended (TTL lapsed, early release, or crash exit)."""
        lease = self._active_by_pid.pop(pid, None)
        if lease is not None:
            self._active.pop(lease.lease_id, None)
            if self._session_state.get(lease.session) is lease:
                del self._session_state[lease.session]
            self._gone.discard(lease.session)
            if not lease.released:
                self.counters["expiries"] += 1
                if self._registry is not None:
                    self._c_expiries.inc()
                    self._h_hold.observe(max(0.0, time - lease.granted_at))
            if self._registry is not None:
                self._g_active.set(len(self._active))
        if self._queues.get(pid) and not self._shut_down:
            self._wake(pid)

    def _on_crash(self, record) -> None:
        """The serving diner died: reclaim its lease, flush its queue."""
        pid = record.pid
        lease = self._active_by_pid.pop(pid, None)
        if lease is not None:
            self._active.pop(lease.lease_id, None)
            if self._session_state.get(lease.session) is lease:
                del self._session_state[lease.session]
            self.counters["crash_reclaims"] += 1
            if self._registry is not None:
                self._g_active.set(len(self._active))
        queue = self._queues.pop(pid, None)
        while queue:
            pending = queue.popleft()
            if pending.session in self._gone:
                self._gone.discard(pending.session)
                continue
            self._session_state.pop(pending.session, None)
            self._waiting_changed(-1)
            self._deny(pending.reply, pid, DENY_CRASHED, counted_request=False)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _wake(self, pid: int) -> None:
        """Nudge Action 1 soon (deduplicated per diner)."""
        if pid in self._wake_pending:
            return
        self._wake_pending.add(pid)

        def fire() -> None:
            self._wake_pending.discard(pid)
            diner = self._diners[pid]
            if diner.crashed or not self._queues.get(pid):
                return
            diner.become_hungry_now()

        self._defer(fire)

    def _deny(self, reply, pid: int, reason: str, *, counted_request: bool = True) -> None:
        self.denies[reason] = self.denies.get(reason, 0) + 1
        if self._registry is not None:
            self._registry.counter("locks.denies_total", reason=reason).inc()
        reply(LeaseDenied(pid, reason))

    def _waiting_changed(self, delta: int) -> None:
        self._waiting_total += delta
        if self._registry is not None:
            self._g_waiting.set(self._waiting_total)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def active_ttl(self, pid: int) -> Optional[float]:
        """The active lease's TTL in seconds (what the meal should last)."""
        lease = self._active_by_pid.get(pid)
        if lease is None:
            return None
        return lease.ttl_ms / 1000.0

    def leaked_leases(self) -> List[Lease]:
        """Leases whose diner is neither eating nor crashed — must be [].

        An active lease is *backed* by its diner's eating session; once
        the diner exits, :meth:`_on_finish` unlinks it.  Anything left
        over means a grant escaped Algorithm 1's critical section.
        """
        leaked = []
        for lease in self._active.values():
            diner = self._diners[lease.pid]
            if not diner.is_eating and not diner.crashed:
                leaked.append(lease)
        return leaked

    def snapshot(self) -> Dict[str, object]:
        """JSON-faithful service state for ``result.json`` and tests."""
        return {
            "resources": dict(self.resources),
            "counters": dict(self.counters),
            "denies": dict(self.denies),
            "active_leases": len(self._active),
            "waiting_sessions": self._waiting_total,
            "leaked_leases": len(self.leaked_leases()),
        }


class LockService:
    """Live-host adapter: client connections in, framed lease replies out.

    Installed on an :class:`~repro.net.host.AsyncHost` via
    :meth:`install`; the host's read loop routes every ``layer="locks"``
    frame here (lease traffic never enters the dining checkers or the
    wire log — it rides client connections, not conflict-graph channels)
    and reports closed connections so abandoned sessions are reclaimed.
    """

    def __init__(self, host, core: LockCore) -> None:
        self.host = host
        self.core = core
        #: session -> (writer, next reply seq); bound at first frame.
        self._sessions: Dict[int, list] = {}
        #: id(writer) -> set of bound sessions (for connection teardown).
        self._by_writer: Dict[int, set] = {}

    # ------------------------------------------------------------------
    @classmethod
    def install(
        cls,
        host,
        *,
        resources: Optional[Mapping[str, int]] = None,
        max_waiters: int = 512,
        max_ttl_ms: int = 60_000,
    ) -> "LockService":
        """Create a core bound to ``host`` and hook it into the host."""
        if resources is None:
            resources = default_resources(
                host.graph, host.placement, host.host_index
            )

        def defer(fn: Callable[[], None]) -> None:
            # host.loop exists by the time any defer fires (run() sets it
            # before the first client connection is accepted).
            host.loop.call_soon(host.guarded(fn, "locks-defer"))

        def step(fn: Callable[[], None]) -> None:
            host.guarded(fn, "locks-step")()

        core = LockCore(
            resources,
            host.diners,
            clock=lambda: host.now,
            defer=defer,
            step=step,
            registry=host.registry,
            max_waiters=max_waiters,
            max_ttl_ms=max_ttl_ms,
        )
        core.attach(host.trace)
        if isinstance(host.workload, LeaseWorkload):
            host.workload.bind(core)
        service = cls(host, core)
        host.lock_service = service
        return service

    # ------------------------------------------------------------------
    # Host integration
    # ------------------------------------------------------------------
    def on_frame(self, src: int, message, writer) -> None:
        """One lease frame from a client connection."""
        cls = type(message)
        if cls is LeaseRequest:
            self._bind(src, writer)
            self.core.request(
                src, message.resource, message.ttl_ms,
                lambda msg, _s=src: self._reply(_s, msg),
            )
        elif cls is LeaseRelease:
            self.core.release(src, message.lease_id)
        else:
            # Grant/denied are service->client only; a client sending one
            # is a protocol error worth refusing loudly but not fatally.
            self._bind(src, writer)
            self._reply(src, LeaseDenied(0, DENY_BAD_SESSION))

    def on_connection_lost(self, writer) -> None:
        """EOF/reset on a client connection: abandon its sessions."""
        sessions = self._by_writer.pop(id(writer), None)
        if not sessions:
            return
        for session in sessions:
            self._sessions.pop(session, None)
            self.core.abandon(session)

    def shutdown(self) -> None:
        self.core.shutdown()

    # ------------------------------------------------------------------
    def _bind(self, session: int, writer) -> None:
        if writer is None or session in self._sessions:
            return
        self._sessions[session] = [writer, 0]
        self._by_writer.setdefault(id(writer), set()).add(session)

    def _reply(self, session: int, message) -> None:
        from repro.net.codec import encode_frame

        slot = self._sessions.get(session)
        if slot is None or slot[0].is_closing():
            self.core.counters["reply_drops"] += 1
            return
        writer, seq = slot
        slot[1] = seq = seq + 1
        context = None
        tracer = self.host.tracer
        if tracer is not None and type(message) is LeaseGrant:
            # The serving diner is eating *right now* (grants fire inside
            # Action 9), so this context names its open eating span —
            # the causal link client-request -> diner-phase -> grant.
            context = tracer.send(self.host.now, message.sender)
        writer.write(encode_frame(message.sender, session, seq, message, context))
