"""Lease-layer message types: the client-facing lock-service protocol.

The lock service (:mod:`repro.locks.service`) maps named resources onto
conflict-graph nodes and serves acquire/release **leases** over the same
LEB128-framed wire the dining layer uses.  Four message types cover the
whole protocol:

* :class:`LeaseRequest` — a client session asks for a lease on a named
  resource, proposing a TTL in milliseconds;
* :class:`LeaseGrant` — the service grants a lease.  It is sent while the
  resource's diner is *eating* (Algorithm 1 is the scheduler), so on a
  tracing host the frame carries the diner's eating-span context — every
  grant is causally backed by a dining critical section;
* :class:`LeaseRelease` — the client returns the lease early (the diner
  exits eating immediately; otherwise the TTL reclaims it);
* :class:`LeaseDenied` — the request was refused (queue full, unknown
  resource, resource hosted elsewhere, crashed diner, shutdown).

All four are tagged ``layer="locks"`` so the dining-layer checkers
(channel bound, FIFO seqs in the kernel adapter) never count them: lease
traffic rides client connections, not the paper's conflict-graph
channels.  ``sender`` follows the repo-wide in-band convention — the
session id on client→service messages, the serving diner's pid on
service→client messages (0 when no diner is responsible, e.g. an
unknown-resource denial).
"""

from __future__ import annotations

from dataclasses import dataclass

#: Client session ids live above this base so they can never collide with
#: conflict-graph pids (graphs in this repo are numbered from 0).
SESSION_BASE = 1 << 20


@dataclass(frozen=True, slots=True)
class LeaseRequest:
    """Ask for a lease on ``resource`` with a ``ttl_ms`` wall-clock TTL."""

    sender: int
    resource: str
    ttl_ms: int
    layer = "locks"


@dataclass(frozen=True, slots=True)
class LeaseGrant:
    """A granted lease; ``sender`` is the serving diner's pid."""

    sender: int
    lease_id: int
    ttl_ms: int
    layer = "locks"


@dataclass(frozen=True, slots=True)
class LeaseRelease:
    """Return ``lease_id`` early; the serving diner exits eating now."""

    sender: int
    lease_id: int
    layer = "locks"


@dataclass(frozen=True, slots=True)
class LeaseDenied:
    """The request was refused; ``reason`` is a short machine-readable word."""

    sender: int
    reason: str
    layer = "locks"


LEASE_MESSAGE_TYPES = (LeaseRequest, LeaseGrant, LeaseRelease, LeaseDenied)
