"""Session load generator: tens of thousands of short-lived lease sessions.

``repro loadgen`` points this at a running ``repro cluster --serve-locks``
deployment (its ``spec.json`` names the transport, addresses, and
placement) and drives ``sessions`` short acquire/hold/release cycles
through a pool of multiplexed :class:`~repro.locks.client.LockClient`
connections.  Each session:

1. picks a serving host and one of its local resources (seeded RNG —
   runs are reproducible),
2. acquires a TTL lease and records the client-observed latency,
3. on grant, verifies the frame's trace context names the serving
   diner's **eating span** (the causal proof that Algorithm 1 scheduled
   the grant), then holds briefly and releases — or, with probability
   ``abandon_fraction``, walks away and lets the TTL reclaim it.

The report carries grant/deny/abandon counters, latency quantiles, and
an ``ok`` flag: every session completed, zero transport errors, and
(when the cluster traces) every grant span-backed.
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.locks.client import LockClient
from repro.obs.tracing import SPAN_EATING, _SID_OF_NAME

__all__ = ["LoadgenOptions", "LoadgenReport", "resources_by_host", "run_loadgen"]

_EATING_SID = _SID_OF_NAME[SPAN_EATING]


@dataclass
class LoadgenOptions:
    """Knobs of one load run (defaults sized for the CI smoke burst)."""

    sessions: int = 10_000
    concurrency: int = 200
    connections_per_host: int = 4
    ttl_ms: int = 50
    #: Mean hold is ``hold_fraction * ttl`` (uniform in [0, 2 * mean)).
    hold_fraction: float = 0.2
    #: Probability a granted session never releases (TTL reclaims it).
    abandon_fraction: float = 0.02
    acquire_timeout: float = 30.0
    seed: int = 0


@dataclass
class LoadgenReport:
    """Machine-readable outcome of one load run."""

    sessions: int
    completed: int
    grants: int
    denies: Dict[str, int]
    abandons: int
    errors: int
    span_backed: int
    elapsed: float
    latency: Dict[str, float]
    ok: bool
    error_samples: List[str] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        return {
            "sessions": self.sessions,
            "completed": self.completed,
            "grants": self.grants,
            "denies": dict(self.denies),
            "abandons": self.abandons,
            "errors": self.errors,
            "span_backed": self.span_backed,
            "elapsed": self.elapsed,
            "sessions_per_sec": (
                0.0 if self.elapsed <= 0 else self.completed / self.elapsed
            ),
            "latency": dict(self.latency),
            "ok": self.ok,
            "error_samples": list(self.error_samples),
        }

    def describe(self) -> str:
        lines = [
            f"loadgen: {'PASS' if self.ok else 'FAIL'}",
            f"  sessions:        {self.completed}/{self.sessions}"
            f" in {self.elapsed:.2f}s"
            f" ({0.0 if self.elapsed <= 0 else self.completed / self.elapsed:.0f}/s)",
            f"  grants:          {self.grants} ({self.span_backed} span-backed)",
            f"  denies:          {sum(self.denies.values())} {dict(sorted(self.denies.items()))}",
            f"  abandoned:       {self.abandons}",
            f"  errors:          {self.errors}",
        ]
        if self.latency:
            lines.append(
                "  latency:         "
                + " ".join(f"{k}={v * 1000:.1f}ms" for k, v in self.latency.items())
            )
        lines.extend(f"    ! {sample}" for sample in self.error_samples[:5])
        return "\n".join(lines)


def resources_by_host(spec) -> List[List[str]]:
    """Each serving host's resource names, from a :class:`ClusterSpec`.

    Honors an explicit ``lock_resources`` table; otherwise the default
    ``r<pid>`` naming over the spec's placement.
    """
    placement = spec.placement or spec.default_placement()
    named = spec.lock_resources or {
        f"r{pid}": pid for pid in spec.graph().nodes
    }
    by_host: List[List[str]] = [[] for _ in range(spec.processes)]
    for name, pid in sorted(named.items()):
        by_host[placement[int(pid)]].append(name)
    return by_host


async def run_loadgen(spec, options: Optional[LoadgenOptions] = None) -> LoadgenReport:
    """Drive one load run against a launched cluster spec."""
    options = options or LoadgenOptions()
    resources = resources_by_host(spec)
    serving = [i for i in range(spec.processes) if resources[i]]
    if not serving:
        raise ValueError("no host serves any resource")

    clients: Dict[int, List[LockClient]] = {}
    client_index = 0
    for host in serving:
        pool = []
        for _ in range(max(1, options.connections_per_host)):
            client = LockClient(
                spec.transport, spec.addresses[host], client_index=client_index
            )
            client_index += 1
            await client.connect()
            pool.append(client)
        clients[host] = pool

    grants = 0
    denies: Dict[str, int] = {}
    abandons = 0
    errors = 0
    span_backed = 0
    completed = 0
    latencies: List[float] = []
    error_samples: List[str] = []
    counter = iter(range(options.sessions))
    started = time.perf_counter()

    async def worker(worker_id: int) -> None:
        nonlocal grants, abandons, errors, span_backed, completed
        rng = random.Random((options.seed << 16) ^ worker_id)
        while True:
            index = next(counter, None)
            if index is None:
                return
            host = serving[index % len(serving)]
            client = rng.choice(clients[host])
            resource = rng.choice(resources[host])
            try:
                outcome = await client.acquire(
                    resource, options.ttl_ms, timeout=options.acquire_timeout
                )
            except Exception as exc:  # noqa: BLE001 - counted, sampled, reported
                errors += 1
                if len(error_samples) < 20:
                    error_samples.append(f"{resource}: {type(exc).__name__}: {exc}")
                completed += 1
                continue
            completed += 1
            if not outcome.granted:
                denies[outcome.reason or "?"] = denies.get(outcome.reason or "?", 0) + 1
                continue
            grants += 1
            latencies.append(outcome.latency)
            context = outcome.context
            if context is not None and context[0] != 0 and context[1] == _EATING_SID:
                span_backed += 1
            if rng.random() < options.abandon_fraction:
                abandons += 1  # no release: the TTL reclaims the lease
                continue
            hold = (options.ttl_ms / 1000.0) * options.hold_fraction * 2.0 * rng.random()
            if hold > 0:
                await asyncio.sleep(hold)
            try:
                await client.release(outcome)
            except Exception as exc:  # noqa: BLE001
                errors += 1
                if len(error_samples) < 20:
                    error_samples.append(f"release {resource}: {exc}")

    workers = [
        asyncio.ensure_future(worker(i)) for i in range(max(1, options.concurrency))
    ]
    await asyncio.gather(*workers)
    elapsed = time.perf_counter() - started

    for pool in clients.values():
        for client in pool:
            await client.close()

    latency: Dict[str, float] = {}
    if latencies:
        latencies.sort()
        last = len(latencies) - 1
        latency = {
            "p50": latencies[last // 2],
            "p90": latencies[min(last, (len(latencies) * 9) // 10)],
            "p99": latencies[min(last, (len(latencies) * 99) // 100)],
            "max": latencies[last],
        }

    tracing = bool(getattr(spec, "tracing", False))
    ok = (
        completed == options.sessions
        and errors == 0
        and (not tracing or span_backed == grants)
    )
    return LoadgenReport(
        sessions=options.sessions,
        completed=completed,
        grants=grants,
        denies=denies,
        abandons=abandons,
        errors=errors,
        span_backed=span_backed,
        elapsed=elapsed,
        latency=latency,
        ok=ok,
        error_samples=error_samples,
    )
