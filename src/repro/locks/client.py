"""Async lease client: many concurrent sessions over one connection.

A :class:`LockClient` owns one socket to one serving host and
multiplexes any number of concurrent acquire/release **sessions** over
it — one background reader task demultiplexes replies by their ``dst``
session id, so ten thousand in-flight acquires cost one connection and
one task, not ten thousand sockets.

Session ids are allocated from the client's private block (disjoint
blocks per client instance keep a fleet of loadgen connections from
colliding on the service's session table).  Each acquire is one
:class:`~repro.locks.messages.LeaseRequest` answered by a grant or a
denial; the grant carries the serving diner's *eating-span* trace
context, surfaced on the outcome so callers can verify the causal chain
client-request → diner-phase → grant.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.locks.messages import (
    SESSION_BASE,
    LeaseDenied,
    LeaseGrant,
    LeaseRelease,
    LeaseRequest,
)
from repro.net.codec import FrameDecoder, WireCodecError, encode_frame

__all__ = ["LeaseOutcome", "LockClient"]

#: Session-id block size per client instance (disjoint ranges, no locks).
SESSION_BLOCK = 1 << 20


@dataclass(slots=True)
class LeaseOutcome:
    """What one acquire produced.

    ``granted`` with ``lease_id``/``pid``/``ttl_ms`` on success;
    ``reason`` on denial.  ``context`` is the grant frame's trace context
    ``(trace_id, span_id, lamport)`` — ``span_id == 5`` is the serving
    diner's eating span.  ``latency`` is client-observed seconds from
    request write to reply.
    """

    session: int
    resource: str
    granted: bool
    reason: Optional[str] = None
    lease_id: int = 0
    pid: int = 0
    ttl_ms: int = 0
    context: Optional[Tuple[int, int, int]] = None
    latency: float = 0.0


class LockClient:
    """One connection to one serving host; any number of sessions."""

    def __init__(
        self,
        transport: str,
        address,
        *,
        client_index: int = 0,
    ) -> None:
        if transport not in ("unix", "tcp"):
            raise ValueError(f"client transport must be unix or tcp, not {transport!r}")
        self.transport = transport
        self.address = address
        self._next_session = SESSION_BASE + client_index * SESSION_BLOCK
        self._pending: Dict[int, asyncio.Future] = {}
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._reader_task: Optional[asyncio.Task] = None
        self._closed = False

    # ------------------------------------------------------------------
    async def connect(self) -> "LockClient":
        if self.transport == "unix":
            self._reader, self._writer = await asyncio.open_unix_connection(
                path=str(self.address)
            )
        else:
            host, port = self.address
            self._reader, self._writer = await asyncio.open_connection(
                str(host), int(port)
            )
        self._reader_task = asyncio.ensure_future(self._read_loop())
        return self

    async def close(self) -> None:
        self._closed = True
        if self._writer is not None and not self._writer.is_closing():
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except Exception:  # pragma: no cover - platform-dependent teardown
                pass
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass
        self._fail_pending(ConnectionError("client closed"))

    async def __aenter__(self) -> "LockClient":
        return await self.connect()

    async def __aexit__(self, *exc) -> None:
        await self.close()

    # ------------------------------------------------------------------
    async def acquire(
        self, resource: str, ttl_ms: int, *, timeout: float = 10.0
    ) -> LeaseOutcome:
        """Ask for a lease; resolves on the grant or denial frame."""
        session = self._next_session
        self._next_session += 1
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[session] = future
        started = time.perf_counter()
        try:
            self._send(session, 1, LeaseRequest(session, resource, ttl_ms))
            message, context = await asyncio.wait_for(future, timeout)
        finally:
            self._pending.pop(session, None)
        latency = time.perf_counter() - started
        if type(message) is LeaseGrant:
            return LeaseOutcome(
                session=session,
                resource=resource,
                granted=True,
                lease_id=message.lease_id,
                pid=message.sender,
                ttl_ms=message.ttl_ms,
                context=None if context is None else tuple(context),
                latency=latency,
            )
        return LeaseOutcome(
            session=session,
            resource=resource,
            granted=False,
            reason=message.reason if type(message) is LeaseDenied else "protocol",
            latency=latency,
        )

    async def release(self, outcome: LeaseOutcome) -> None:
        """Return a granted lease early (fire-and-forget by design)."""
        if not outcome.granted:
            raise ValueError("cannot release a denied outcome")
        self._send(outcome.session, 2, LeaseRelease(outcome.session, outcome.lease_id))

    # ------------------------------------------------------------------
    def _send(self, session: int, seq: int, message) -> None:
        writer = self._writer
        if writer is None or writer.is_closing():
            raise ConnectionError("lease connection is closed")
        writer.write(encode_frame(session, 0, seq, message))

    async def _read_loop(self) -> None:
        decoder = FrameDecoder(capture_context=True)
        reader = self._reader
        try:
            while True:
                data = await reader.read(65536)
                if not data:
                    break
                for _src, dst, _seq, message, context in decoder.feed(data):
                    future = self._pending.get(dst)
                    if future is not None and not future.done():
                        future.set_result((message, context))
        except (asyncio.CancelledError, WireCodecError, OSError):
            pass
        finally:
            if not self._closed:
                self._fail_pending(ConnectionError("lease connection lost"))

    def _fail_pending(self, error: Exception) -> None:
        for future in self._pending.values():
            if not future.done():
                future.set_exception(error)
        self._pending.clear()
