"""Run reports: one digest per sweep, rendered three ways.

:func:`build_report` folds the per-seed metrics snapshots of a scenario
run (duck-typed: anything with ``scenario``/``title``/``seed_results``)
into a JSON-ready document whose ``summary`` answers the paper's
questions directly — when did the system quiesce toward crashed
processes, when was the last exclusion violation, how close did any edge
come to the 4-message channel bound, and where did the kernel's wall
clock actually go.

When the sweep also collected check verdicts (``repro report`` runs with
check collection on), the report carries the merged
:class:`~repro.checks.Verdict` under ``"checks"`` and the text rendering
appends its per-property scorecard.

Renderers:

* :func:`render_report_text` — the human page ``repro report`` prints;
* :func:`render_verdict_text` — a :class:`~repro.checks.Verdict` (or its
  JSON form) as the indented scorecard every front end shares;
* :func:`render_prometheus` — Prometheus text exposition of a snapshot
  (counters, gauges, and cumulative ``_bucket`` histograms), for
  scraping a dumped file or diffing runs with standard tooling;
* the report dict itself is the JSON form (``json.dumps`` safe).
"""

from __future__ import annotations

import re
from typing import Dict, List, Mapping, Optional, Sequence

from repro.obs.metrics import (
    counter_by_label,
    counter_total,
    gauge_entries,
    gauge_max,
    gauge_max_time,
    histogram_entries,
    merge_snapshots,
)

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")


def quiescence_curve(snapshot: Mapping[str, object]) -> List[Dict[str, float]]:
    """Cumulative post-crash sends over virtual time, bucket by bucket.

    Each point is ``{"t": upper_bound, "sends": cumulative_count}``;
    only buckets where the count advances are kept, so the curve is the
    minimal staircase.  An empty list means perfect silence.
    """
    entries = histogram_entries(snapshot, "quiescence.post_crash_send_time")
    if not entries:
        return []
    merged = merge_snapshots([{"histograms": list(entries)}])
    entry = merged["histograms"][0]
    bounds = list(entry["bounds"]) + [float("inf")]
    curve: List[Dict[str, float]] = []
    cumulative = 0
    for bound, count in zip(bounds, entry["bucket_counts"]):
        if count:
            cumulative += int(count)
            t = bound if bound != float("inf") else entry.get("max")
            curve.append({"t": float(t), "sends": float(cumulative)})
    return curve


def hotspots(snapshot: Mapping[str, object], *, top: int = 5) -> List[Dict[str, object]]:
    """Top event sites by attributed wall-clock seconds."""
    seconds = counter_by_label(snapshot, "profile.wall_seconds_total", "site")
    events = counter_by_label(snapshot, "profile.events_total", "site")
    ranked = sorted(seconds.items(), key=lambda item: (-item[1], item[0]))
    return [
        {"site": site, "events": int(events.get(site, 0)), "seconds": secs}
        for site, secs in ranked[:top]
    ]


def check_costs(snapshot: Mapping[str, object]) -> List[Dict[str, object]]:
    """Per-property checker wall-clock attribution, costliest first.

    Populated when a run profiled its check suite (``repro report
    --profile-checks`` or any adapter built with ``profile=True``); the
    ranking is what the ROADMAP "checks back under 10%" work optimizes
    against.
    """
    seconds = counter_by_label(snapshot, "checks.property_wall_seconds_total", "property")
    events = counter_by_label(snapshot, "checks.property_events_total", "property")
    ranked = sorted(seconds.items(), key=lambda item: (-item[1], item[0]))
    return [
        {"property": name, "events": int(events.get(name, 0)), "seconds": secs}
        for name, secs in ranked
    ]


def summarize_snapshot(
    snapshot: Mapping[str, object], *, top: int = 5, bound: int = 4
) -> Dict[str, object]:
    """The headline numbers of one (possibly merged) snapshot."""
    channel_max = gauge_max(snapshot, "net.in_transit")
    sessions = counter_total(snapshot, "dining.sessions_total")
    acks = counter_total(snapshot, "net.messages_delivered_total", type="Ack")
    queue_entries = gauge_entries(snapshot, "sim.queue_depth")
    return {
        "events_processed": counter_total(snapshot, "sim.events_total"),
        "sim_time": gauge_max(snapshot, "sim.time"),
        "messages_sent": counter_total(snapshot, "net.messages_sent_total"),
        "messages_delivered": counter_total(snapshot, "net.messages_delivered_total"),
        "messages_dropped": counter_total(snapshot, "net.messages_dropped_total"),
        "messages_by_type": counter_by_label(snapshot, "net.messages_sent_total", "type"),
        "channel_bound": int(bound),
        "channel_max_in_transit": None if channel_max is None else int(channel_max),
        "channel_max_time": gauge_max_time(snapshot, "net.in_transit"),
        "channel_bound_exceeded": counter_total(snapshot, "net.channel_bound_exceeded_total"),
        "channel_bound_ok": channel_max is None or channel_max <= bound,
        "meals": counter_total(snapshot, "dining.meals_total"),
        "sessions": sessions,
        "acks_per_session": (acks / sessions) if sessions else None,
        "fork_transfers": counter_total(snapshot, "net.messages_delivered_total", type="Fork"),
        "violations": counter_total(snapshot, "dining.violations_total"),
        "last_violation_time": gauge_max(snapshot, "dining.last_violation_time"),
        "suspicions": counter_total(snapshot, "detector.suspicions_total"),
        "refutations": counter_total(snapshot, "detector.refutations_total"),
        "crashes": counter_total(snapshot, "crashes_total"),
        "protocol_steps": counter_total(snapshot, "daemon.protocol_steps_total"),
        "transient_faults": counter_total(snapshot, "daemon.transient_faults_total"),
        "post_crash_sends": counter_total(snapshot, "quiescence.post_crash_sends_total"),
        "quiescence_time": gauge_max(snapshot, "quiescence.last_post_crash_send_time"),
        "quiescence_curve": quiescence_curve(snapshot),
        "phase_seconds": counter_by_label(snapshot, "dining.phase_seconds_total", "phase"),
        "queue_depth_max": max(
            (e["max"] for e in queue_entries if e.get("max") is not None), default=None
        ),
        "profiled_seconds": counter_total(snapshot, "profile.wall_seconds_total"),
        "hotspots": hotspots(snapshot, top=top),
        "check_costs": check_costs(snapshot),
    }


def build_report(result, *, top: int = 5, bound: int = 4) -> Dict[str, object]:
    """Full run report for a scenario sweep (``RunResult``-shaped input).

    Seeds whose snapshot is missing (for example cache entries written
    before metrics existed) are listed in ``seeds_without_metrics``
    rather than silently skewing the summary.
    """
    snapshots = []
    missing: List[int] = []
    for seed_result in result.seed_results:
        snapshot = getattr(seed_result, "metrics", None)
        if snapshot:
            snapshots.append(snapshot)
        else:
            missing.append(seed_result.seed)
    merged = merge_snapshots(snapshots)
    checks = None
    merged_checks = getattr(result, "merged_checks", None)
    if callable(merged_checks):
        verdict = merged_checks()
        if verdict is not None:
            checks = verdict.to_json()
    return {
        "scenario": result.scenario,
        "title": result.title,
        "claim": result.claim,
        "seeds": list(result.seeds),
        "seeds_without_metrics": missing,
        "cache_hits": result.cache_hits,
        "compute_seconds": result.elapsed,
        "rows": len(result.rows),
        "summary": summarize_snapshot(merged, top=top, bound=bound),
        "checks": checks,
        "metrics": merged,
    }


# ----------------------------------------------------------------------
# Text rendering
# ----------------------------------------------------------------------
def _fmt(value: Optional[float], suffix: str = "") -> str:
    if value is None:
        return "-"
    if isinstance(value, float) and not value.is_integer():
        return f"{value:.2f}{suffix}"
    return f"{int(value)}{suffix}"


def render_verdict_text(verdict) -> str:
    """A check verdict as its indented scorecard.

    Accepts a :class:`~repro.checks.Verdict` or its ``to_json`` dict, so
    report documents round-tripped through JSON render identically.
    """
    from repro.checks import Verdict

    if not isinstance(verdict, Verdict):
        verdict = Verdict.from_json(verdict)
    return verdict.describe()


def render_report_text(report: Mapping[str, object]) -> str:
    """The page ``repro report`` prints."""
    summary = report["summary"]
    lines: List[str] = []
    seeds = report.get("seeds", [])
    lines.append(f"run report — {report['scenario']} ({report['title']})")
    lines.append(
        f"  seeds {list(seeds)}; {report.get('cache_hits', 0)} cache hit(s); "
        f"{report.get('rows', 0)} row(s); compute {report.get('compute_seconds', 0.0):.2f}s"
    )
    if report.get("seeds_without_metrics"):
        lines.append(
            f"  (no metrics for seeds {report['seeds_without_metrics']} — rerun with --no-cache)"
        )
    lines.append("")
    lines.append("guarantees")
    ok = "OK" if summary["channel_bound_ok"] else "VIOLATED"
    lines.append(
        f"  channel bound:       max {_fmt(summary['channel_max_in_transit'])} in transit per edge "
        f"(bound {summary['channel_bound']}, {ok}"
        + (
            f", peak at t={_fmt(summary['channel_max_time'])}"
            if summary.get("channel_max_time") is not None
            else ""
        )
        + ")"
    )
    lines.append(
        f"  last violation:      t={_fmt(summary['last_violation_time'])} "
        f"({_fmt(summary['violations'])} total)"
    )
    lines.append(
        f"  quiescence:          last dining send to a crashed process at "
        f"t={_fmt(summary['quiescence_time'])} ({_fmt(summary['post_crash_sends'])} post-crash sends)"
    )
    curve = summary.get("quiescence_curve") or []
    if curve:
        staircase = ", ".join(f"t≤{_fmt(point['t'])}: {_fmt(point['sends'])}" for point in curve)
        lines.append(f"  quiescence curve:    {staircase}")
    if report.get("checks"):
        lines.append("")
        for line in render_verdict_text(report["checks"]).splitlines():
            lines.append(f"  {line}" if line else line)
    lines.append("")
    lines.append("volume")
    lines.append(
        f"  events {_fmt(summary['events_processed'])}; "
        f"messages {_fmt(summary['messages_sent'])} sent / "
        f"{_fmt(summary['messages_delivered'])} delivered / "
        f"{_fmt(summary['messages_dropped'])} dropped; "
        f"meals {_fmt(summary['meals'])}"
    )
    if summary.get("sessions"):
        lines.append(
            f"  sessions {_fmt(summary['sessions'])}; "
            f"acks/session {_fmt(summary['acks_per_session'])}; "
            f"fork transfers {_fmt(summary['fork_transfers'])}; "
            f"suspicions {_fmt(summary['suspicions'])}"
        )
    phase_seconds = summary.get("phase_seconds") or {}
    if phase_seconds:
        occupancy = ", ".join(
            f"{phase} {seconds:.1f}" for phase, seconds in sorted(phase_seconds.items())
        )
        lines.append(f"  phase occupancy (sim-time): {occupancy}")
    spots = summary.get("hotspots") or []
    if spots:
        lines.append("")
        lines.append(f"kernel hotspots (top {len(spots)} by wall-clock)")
        width = max(len(str(spot["site"])) for spot in spots)
        for spot in spots:
            lines.append(
                f"  {str(spot['site']).ljust(width)}  {spot['events']:>9} events  "
                f"{spot['seconds']:.4f}s"
            )
    costs = summary.get("check_costs") or []
    if costs:
        lines.append("")
        total = sum(cost["seconds"] for cost in costs)
        lines.append(f"check cost by property ({total:.4f}s attributed)")
        width = max(len(str(cost["property"])) for cost in costs)
        for cost in costs:
            share = 0.0 if total <= 0 else 100.0 * cost["seconds"] / total
            lines.append(
                f"  {str(cost['property']).ljust(width)}  {cost['events']:>9} events  "
                f"{cost['seconds']:.4f}s  {share:5.1f}%"
            )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
def _prom_name(name: str, namespace: str) -> str:
    return _NAME_RE.sub("_", f"{namespace}_{name}")


def _prom_labels(labels: Mapping[str, object]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{_NAME_RE.sub("_", str(key))}="{value}"' for key, value in sorted(labels.items())
    )
    return "{" + inner + "}"


def _prom_value(value: object) -> str:
    if value is None:
        return "NaN"
    number = float(value)
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def render_prometheus(snapshot: Mapping[str, object], *, namespace: str = "repro") -> str:
    """Prometheus text exposition (format version 0.0.4) of a snapshot."""
    lines: List[str] = []
    seen_types: Dict[str, str] = {}

    def header(name: str, kind: str) -> None:
        if seen_types.get(name) != kind:
            lines.append(f"# TYPE {name} {kind}")
            seen_types[name] = kind

    for entry in snapshot.get("counters", ()):
        name = _prom_name(str(entry["name"]), namespace)
        header(name, "counter")
        lines.append(f"{name}{_prom_labels(entry.get('labels') or {})} {_prom_value(entry['value'])}")
    for entry in snapshot.get("gauges", ()):
        name = _prom_name(str(entry["name"]), namespace)
        header(name, "gauge")
        labels = entry.get("labels") or {}
        lines.append(f"{name}{_prom_labels(labels)} {_prom_value(entry['value'])}")
        for facet in ("max", "min"):
            if entry.get(facet) is not None:
                facet_name = f"{name}_{facet}"
                header(facet_name, "gauge")
                lines.append(f"{facet_name}{_prom_labels(labels)} {_prom_value(entry[facet])}")
    for entry in snapshot.get("histograms", ()):
        name = _prom_name(str(entry["name"]), namespace)
        header(name, "histogram")
        labels = dict(entry.get("labels") or {})
        cumulative = 0
        bounds: Sequence[float] = list(entry.get("bounds", ())) + [float("inf")]
        for bound, count in zip(bounds, entry["bucket_counts"]):
            cumulative += int(count)
            if count or bound == float("inf"):
                le = "+Inf" if bound == float("inf") else _prom_value(bound)
                bucket_labels = dict(labels)
                bucket_labels["le"] = le
                lines.append(f"{name}_bucket{_prom_labels(bucket_labels)} {cumulative}")
        lines.append(f"{name}_sum{_prom_labels(labels)} {_prom_value(entry['sum'])}")
        lines.append(f"{name}_count{_prom_labels(labels)} {int(entry['count'])}")
    return "\n".join(lines) + ("\n" if lines else "")
