"""Ambient metrics collection.

Experiment run functions build their own :class:`DiningTable` objects
deep inside library code, so threading a registry argument through every
call chain would touch every experiment.  Instead, collection is
ambient: ``with collecting() as registry: …`` installs a registry that
:class:`~repro.core.table.DiningTable` picks up automatically, so any
simulation constructed inside the block is instrumented — the same
pattern as profilers and tracers everywhere.

The stack is per-process module state, which is exactly right for this
codebase: simulations are single-threaded, and process-pool workers each
get their own interpreter (the scenario runner opens a ``collecting``
block inside the worker).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, List, Optional

from repro.obs.metrics import MetricsRegistry

_STACK: List[MetricsRegistry] = []


def active_registry() -> Optional[MetricsRegistry]:
    """The innermost collecting registry, or None when collection is off."""
    return _STACK[-1] if _STACK else None


@contextmanager
def collecting(
    registry: Optional[MetricsRegistry] = None, *, profile: bool = True
) -> Iterator[MetricsRegistry]:
    """Collect metrics from every simulation built inside the block."""
    own = registry if registry is not None else MetricsRegistry(profile=profile)
    _STACK.append(own)
    try:
        yield own
    finally:
        _STACK.pop()
