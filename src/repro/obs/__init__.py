"""Observability: metrics, profiling, and run reports.

The measurement substrate over the simulator and scenario runner:

* :mod:`repro.obs.metrics` — sim-time-aware :class:`Counter` /
  :class:`Gauge` / :class:`Histogram` in a per-run
  :class:`MetricsRegistry`, plus snapshot querying and merging;
* :mod:`repro.obs.context` — ambient collection
  (``with collecting(): …``) that any :class:`~repro.core.table.DiningTable`
  built inside the block joins automatically;
* :mod:`repro.obs.instrument` — the probes wired into the kernel,
  network, diners/detectors, and quiescence monitor;
* :mod:`repro.obs.profile` — the wall-clock kernel profiler behind the
  hotspot tables;
* :mod:`repro.obs.report` — run-report building and JSON / text /
  Prometheus rendering (the ``repro report`` command);
* :mod:`repro.obs.tracing` — causal request spans (one per hunger, with
  phase children and Lamport-clock stamps), span assembly from any
  substrate, and timeline / critical-path rendering (``repro trace``);
* :mod:`repro.obs.flight` — the bounded flight recorder live hosts dump
  on a FAIL verdict.

See ``docs/OBSERVABILITY.md`` for metric names and label conventions.
"""

from repro.obs.context import active_registry, collecting
from repro.obs.flight import FlightRecorder
from repro.obs.instrument import (
    Instrumentation,
    MessageBitsInstrument,
    instrument_table,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter_by_label,
    counter_total,
    gauge_max,
    gauge_max_time,
    merge_snapshots,
)
from repro.obs.profile import KernelProfiler, flush_check_profile
from repro.obs.report import (
    build_report,
    hotspots,
    quiescence_curve,
    render_prometheus,
    render_report_text,
    render_verdict_text,
    summarize_snapshot,
)
from repro.obs.tracing import (
    Span,
    SpanAssembler,
    SpanContext,
    attach_tracer,
    completed_meals,
    critical_path,
    dump_spans,
    load_spans,
    render_critical_path,
    render_timeline,
    spans_from_events,
    stitch_spans,
)

__all__ = [
    "Counter",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "Instrumentation",
    "KernelProfiler",
    "MessageBitsInstrument",
    "MetricsRegistry",
    "Span",
    "SpanAssembler",
    "SpanContext",
    "active_registry",
    "attach_tracer",
    "build_report",
    "collecting",
    "completed_meals",
    "counter_by_label",
    "counter_total",
    "critical_path",
    "dump_spans",
    "flush_check_profile",
    "gauge_max",
    "gauge_max_time",
    "hotspots",
    "instrument_table",
    "load_spans",
    "merge_snapshots",
    "quiescence_curve",
    "render_critical_path",
    "render_prometheus",
    "render_report_text",
    "render_timeline",
    "render_verdict_text",
    "spans_from_events",
    "stitch_spans",
    "summarize_snapshot",
]
