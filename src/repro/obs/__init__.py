"""Observability: metrics, profiling, and run reports.

The measurement substrate over the simulator and scenario runner:

* :mod:`repro.obs.metrics` — sim-time-aware :class:`Counter` /
  :class:`Gauge` / :class:`Histogram` in a per-run
  :class:`MetricsRegistry`, plus snapshot querying and merging;
* :mod:`repro.obs.context` — ambient collection
  (``with collecting(): …``) that any :class:`~repro.core.table.DiningTable`
  built inside the block joins automatically;
* :mod:`repro.obs.instrument` — the probes wired into the kernel,
  network, diners/detectors, and quiescence monitor;
* :mod:`repro.obs.profile` — the wall-clock kernel profiler behind the
  hotspot tables;
* :mod:`repro.obs.report` — run-report building and JSON / text /
  Prometheus rendering (the ``repro report`` command).

See ``docs/OBSERVABILITY.md`` for metric names and label conventions.
"""

from repro.obs.context import active_registry, collecting
from repro.obs.instrument import Instrumentation, instrument_table
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter_by_label,
    counter_total,
    gauge_max,
    gauge_max_time,
    merge_snapshots,
)
from repro.obs.profile import KernelProfiler
from repro.obs.report import (
    build_report,
    hotspots,
    quiescence_curve,
    render_prometheus,
    render_report_text,
    render_verdict_text,
    summarize_snapshot,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Instrumentation",
    "KernelProfiler",
    "MetricsRegistry",
    "active_registry",
    "build_report",
    "collecting",
    "counter_by_label",
    "counter_total",
    "gauge_max",
    "gauge_max_time",
    "hotspots",
    "instrument_table",
    "merge_snapshots",
    "quiescence_curve",
    "render_prometheus",
    "render_report_text",
    "render_verdict_text",
    "summarize_snapshot",
]
