"""Wiring between a live simulation and a :class:`MetricsRegistry`.

:func:`instrument_table` attaches three probes to a fully built
:class:`~repro.core.table.DiningTable` (or anything with its shape —
the daemon and the drinking variant both reuse it):

* :class:`SimInstrument` — kernel step listener: events processed, a
  sampled queue-depth gauge, final virtual time, and (when the registry
  asks for profiling) the wall-clock :class:`KernelProfiler`.
* :class:`NetworkInstrument` — network monitor: messages sent /
  delivered / dropped by type and layer, plus the **live in-transit
  per-edge gauge** for the dining layer, which watches the paper's
  4-messages-per-edge bound online and counts any excursion above it.
* :class:`TraceInstrument` — trace listener: phase occupancy time,
  meals and hungry sessions, suspicions/refutations, crashes, hosted
  protocol steps and transient faults, and an online exclusion-violation
  tracker (two live neighbors eating at once) that pins the *time of the
  last violation* — the quantity ◇WX is about.

Every flush is delta-safe: snapshots can be taken mid-run and again at
the end without double counting.  All probes are passive observers —
they never change scheduling, so an instrumented run is bit-for-bit the
run you would have had without them.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.obs.metrics import Counter, MetricsRegistry
from repro.obs.profile import KernelProfiler
from repro.sim.monitors import message_layer
from repro.sim.network import NetworkMonitor
from repro.sim.time import Instant
from repro.trace.events import (
    Crash,
    EATING,
    HUNGRY,
    PhaseChange,
    ProtocolStep,
    SuspicionChange,
    TransientFault,
)

ProcessId = int

#: How many kernel events pass between queue-depth samples.  Sampling
#: keeps the per-event overhead at one integer increment; the gauge's
#: time-weighted average is still faithful at this resolution.  Must be a
#: power of two: the step listener uses a mask, not a modulo.
QUEUE_SAMPLE_INTERVAL = 64
_QUEUE_SAMPLE_MASK = QUEUE_SAMPLE_INTERVAL - 1


class SimInstrument:
    """Kernel-level probe: event counts, queue depth, virtual time."""

    def __init__(self, sim, registry: MetricsRegistry) -> None:
        self._sim = sim
        self._registry = registry
        self._queue_gauge = registry.gauge("sim.queue_depth")
        self._ticks = 0
        self._flushed_events = 0
        sim.add_step_listener(self._on_step)

    def _on_step(self, now: Instant) -> None:
        # Bitwise sampling test: QUEUE_SAMPLE_INTERVAL is a power of two,
        # and this listener runs once per kernel event.
        self._ticks = ticks = self._ticks + 1
        if not ticks & _QUEUE_SAMPLE_MASK:
            self._queue_gauge.set(self._sim.queue_depth, now)

    def flush(self) -> None:
        processed = self._sim.processed_events
        self._registry.counter("sim.events_total").inc(processed - self._flushed_events)
        self._flushed_events = processed
        self._registry.gauge("sim.time").set(self._sim.now)
        self._queue_gauge.set(self._sim.queue_depth, self._sim.now)


class NetworkInstrument(NetworkMonitor):
    """Traffic counters plus the live per-edge in-transit gauge.

    The dining layer is tracked per undirected edge: occupancy lives in
    plain int dicts on the hot path (the instrumented network is the
    busiest hook in the system), the bound is asserted online at every
    send, and :meth:`flush` materializes the readings as gauges labelled
    ``edge="a-b"`` — scoped by a per-simulation ``run`` tag so
    back-to-back tables sharing a registry never blend their readings.
    Other layers are counted but not tracked per edge: occupancy is only
    a paper quantity for dining messages.  A dining edge rising above
    ``bound`` increments an excursion counter — the online mirror of
    :class:`repro.checks.ChannelBoundChecker`, which (strictly armed)
    raises instead.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        *,
        run: str,
        bound: int = 4,
        edge_layer: str = "dining",
    ) -> None:
        self._registry = registry
        self._run = run
        self.bound = int(bound)
        self._edge_layer = edge_layer
        # ``layer`` is a class attribute of every message type, so all
        # per-message state memoizes on type(message).  The hot path only
        # touches plain ints: per type, a ``[sent, delivered, dropped,
        # on_edge_layer]`` cell list; per edge, a ``[current, peak,
        # peak_time]`` entry.  :meth:`flush` converts both to registry
        # instruments.
        self._types: Dict[type, List[int]] = {}
        self._type_meta: Dict[type, Tuple[str, str]] = {}
        self._flushed_types: Dict[type, List[int]] = {}
        self._edges: Dict[Tuple[ProcessId, ProcessId], List] = {}
        self._exceeded = registry.counter("net.channel_bound_exceeded_total")

    def _type_entry(self, message) -> List[int]:
        cls = type(message)
        layer = message_layer(message)
        self._type_meta[cls] = (cls.__name__, layer)
        entry = self._types[cls] = [0, 0, 0, 1 if layer == self._edge_layer else 0]
        return entry

    # -- NetworkMonitor hooks ------------------------------------------
    # The try/except around the type dict keeps the steady state at one
    # dict hit per hook; the KeyError path runs once per message type.
    def on_send(self, src: ProcessId, dst: ProcessId, message, time: Instant) -> None:
        try:
            cells = self._types[type(message)]
        except KeyError:
            cells = self._type_entry(message)
        cells[0] += 1
        if cells[3]:
            edge = (src, dst) if src <= dst else (dst, src)
            entry = self._edges.get(edge)
            if entry is None:
                entry = self._edges[edge] = [0, 0, time]
            entry[0] = occupancy = entry[0] + 1
            if occupancy > entry[1]:
                entry[1] = occupancy
                entry[2] = time
            if occupancy > self.bound:
                self._exceeded.value += 1.0

    def on_deliver(self, src: ProcessId, dst: ProcessId, message, time: Instant) -> None:
        try:
            cells = self._types[type(message)]
        except KeyError:
            cells = self._type_entry(message)
        cells[1] += 1
        if cells[3]:
            entry = self._edges.get((src, dst) if src <= dst else (dst, src))
            if entry is not None:
                entry[0] -= 1

    def on_drop(self, src: ProcessId, dst: ProcessId, message, time: Instant) -> None:
        try:
            cells = self._types[type(message)]
        except KeyError:
            cells = self._type_entry(message)
        cells[2] += 1
        if cells[3]:
            entry = self._edges.get((src, dst) if src <= dst else (dst, src))
            if entry is not None:
                entry[0] -= 1

    # -- Instrument materialization ------------------------------------
    _COUNTER_NAMES = (
        "net.messages_sent_total",
        "net.messages_delivered_total",
        "net.messages_dropped_total",
    )

    def flush(self) -> None:
        """Render the tracked ints as counters and gauges (delta-safe).

        Type cells become the three traffic counters (incremented by the
        delta since the last flush).  Edge entries become per-edge
        gauges: ``set(peak, peak_time)`` pins the gauge's max and its
        witness time; the trailing untimed ``set(current)`` leaves the
        gauge's value at the live in-flight count.  Repeating the same
        writes on a later flush is harmless.
        """
        registry = self._registry
        for cls, cells in self._types.items():
            seen = self._flushed_types.get(cls)
            if seen is None:
                seen = self._flushed_types[cls] = [0, 0, 0]
            name, layer = self._type_meta[cls]
            for idx, metric in enumerate(self._COUNTER_NAMES):
                registry.counter(metric, type=name, layer=layer).inc(cells[idx] - seen[idx])
                seen[idx] = cells[idx]
        for edge, entry in self._edges.items():
            gauge = registry.gauge(
                "net.in_transit",
                edge=f"{edge[0]}-{edge[1]}",
                layer=self._edge_layer,
                run=self._run,
            )
            gauge.set(entry[1], entry[2])
            gauge.set(entry[0])

    # -- Queries --------------------------------------------------------
    def max_in_transit(self) -> int:
        """Largest per-edge occupancy ever observed (0 if no traffic)."""
        return max((entry[1] for entry in self._edges.values()), default=0)

    def edge_peaks(self) -> Dict[Tuple[ProcessId, ProcessId], int]:
        """Peak in-transit count per undirected edge."""
        return {edge: self._edges[edge][1] for edge in sorted(self._edges)}


class MessageBitsInstrument(NetworkMonitor):
    """Per-type message-*bit* accounting under the Section 7 model.

    Prices every sent message with
    :func:`repro.core.messages.message_size_bits` — tag + sender id,
    plus declared ``payload_bits()`` for value-carrying types — and
    keeps, per message type: count, total bits, and the largest single
    frame.  This is the instrument that makes the bake-off's headline
    contrast measurable: Algorithm 1's frames are all O(log n) bits
    while the bakery's grow with its tickets, so ``max_bits`` for
    ``BakeryNumber``/``BakeryRequest`` climbs over a long contended run
    where every Algorithm 1 type stays flat.

    Hot path matches :class:`NetworkInstrument`: one dict hit per send
    in the steady state.  Bits are computed per *type and value*, so the
    cost is one ``message_size_bits`` call per send — acceptable for
    bake-off cells, which is why this probe is opt-in rather than part
    of :func:`instrument_table`.
    """

    def __init__(self, *, n_processes: int, n_colors: int, layer: str = "dining") -> None:
        from repro.core.messages import message_size_bits

        self._size_bits = message_size_bits
        self.n_processes = int(n_processes)
        self.n_colors = int(n_colors)
        self._layer = layer
        # type -> [count, total_bits, max_bits]
        self._cells: Dict[type, List[int]] = {}
        self._tracked: Dict[type, bool] = {}

    def on_send(self, src: ProcessId, dst: ProcessId, message, time: Instant) -> None:
        cls = type(message)
        tracked = self._tracked.get(cls)
        if tracked is None:
            tracked = self._tracked[cls] = message_layer(message) == self._layer
        if not tracked:
            return
        bits = self._size_bits(
            message, n_processes=self.n_processes, n_colors=self.n_colors
        )
        try:
            cells = self._cells[cls]
        except KeyError:
            self._cells[cls] = [1, bits, bits]
            return
        cells[0] += 1
        cells[1] += bits
        if bits > cells[2]:
            cells[2] = bits

    def on_deliver(self, src: ProcessId, dst: ProcessId, message, time: Instant) -> None:
        pass

    def on_drop(self, src: ProcessId, dst: ProcessId, message, time: Instant) -> None:
        pass

    # -- Queries --------------------------------------------------------
    def by_type(self) -> Dict[str, Dict[str, int]]:
        """``{type name: {count, total_bits, max_bits}}``, name-sorted."""
        rows = {
            cls.__name__: {
                "count": cells[0],
                "total_bits": cells[1],
                "max_bits": cells[2],
            }
            for cls, cells in self._cells.items()
        }
        return dict(sorted(rows.items()))

    def total_messages(self) -> int:
        return sum(cells[0] for cells in self._cells.values())

    def total_bits(self) -> int:
        return sum(cells[1] for cells in self._cells.values())

    def max_bits(self) -> int:
        """Largest single tracked frame ever sent (0 if no traffic)."""
        return max((cells[2] for cells in self._cells.values()), default=0)


class TraceInstrument:
    """Trace-record probe: phases, sessions, suspicions, violations."""

    def __init__(self, registry: MetricsRegistry, graph, sim) -> None:
        self._registry = registry
        self._graph = graph
        self._sim = sim
        self._phase_since: Dict[ProcessId, Tuple[str, float]] = {}
        self._eating: set = set()
        self._meals = registry.counter("dining.meals_total")
        self._sessions = registry.counter("dining.sessions_total")
        self._violations = registry.counter("dining.violations_total")
        self._last_violation = registry.gauge("dining.last_violation_time")
        self._suspicions = registry.counter("detector.suspicions_total")
        self._refutations = registry.counter("detector.refutations_total")
        self._crashes = registry.counter("crashes_total")
        self._steps = registry.counter("daemon.protocol_steps_total")
        self._faults = registry.counter("daemon.transient_faults_total")
        self._phase_time: Dict[str, Counter] = {}
        # Record-type dispatch table: one dict hit per trace record, so
        # the kinds this probe ignores (doorway changes, mostly) cost a
        # single lookup instead of a comparison chain.
        self._handlers = {
            PhaseChange: self._on_phase,
            SuspicionChange: self._on_suspicion,
            Crash: self._on_crash,
            ProtocolStep: self._on_protocol_step,
            TransientFault: self._on_fault,
        }

    def __call__(self, record: object) -> None:
        handler = self._handlers.get(type(record))
        if handler is not None:
            handler(record)

    def attach(self, trace) -> None:
        """Register on ``trace`` with per-type listeners.

        Typed registration lets the recorder skip this probe entirely for
        record kinds it ignores and call the right handler directly for
        the rest — one call layer less than routing through
        :meth:`__call__` (which remains for untyped ``add_listener`` use).
        """
        for record_type, handler in self._handlers.items():
            trace.add_listener(handler, types=(record_type,))

    def _on_suspicion(self, record: SuspicionChange) -> None:
        (self._suspicions if record.suspected else self._refutations).inc()

    def _on_crash(self, record: Crash) -> None:
        self._crashes.inc()
        self._eating.discard(record.pid)
        self._close_phase(record.pid, record.time)

    def _on_protocol_step(self, record: ProtocolStep) -> None:
        self._steps.inc()

    def _on_fault(self, record: TransientFault) -> None:
        self._faults.inc()

    def _phase_counter(self, phase: str) -> Counter:
        counter = self._phase_time.get(phase)
        if counter is None:
            counter = self._phase_time[phase] = self._registry.counter(
                "dining.phase_seconds_total", phase=phase
            )
        return counter

    def _close_phase(self, pid: ProcessId, now: float) -> None:
        entry = self._phase_since.pop(pid, None)
        if entry is not None:
            phase, since = entry
            if now > since:
                self._phase_counter(phase).inc(now - since)

    def _on_phase(self, record: PhaseChange) -> None:
        pid, time = record.pid, record.time
        entry = self._phase_since.get(pid)
        if entry is None:
            # First observation: the diner held old_phase since t=0.
            if time > 0:
                self._phase_counter(record.old_phase).inc(time)
        else:
            phase, since = entry
            if time > since:
                counter = self._phase_time.get(phase)
                if counter is None:
                    counter = self._phase_counter(phase)
                counter.value += time - since
        new_phase = record.new_phase
        self._phase_since[pid] = (new_phase, time)

        if new_phase == EATING:
            self._meals.value += 1.0
            eating = self._eating
            for neighbor in self._graph.neighbors(pid):
                if neighbor in eating:
                    self._violations.inc()
                    self._last_violation.set(time, time)
            eating.add(pid)
        else:
            self._eating.discard(pid)
            if new_phase == HUNGRY:
                self._sessions.value += 1.0

    def flush(self) -> None:
        """Account phase occupancy up to the current virtual time."""
        now = self._sim.now
        for pid, (phase, since) in list(self._phase_since.items()):
            if now > since:
                self._phase_counter(phase).inc(now - since)
                self._phase_since[pid] = (phase, now)


class QuiescenceInstrument:
    """Folds the table's quiescence monitor into the registry.

    Reads :class:`repro.sim.monitors.QuiescenceMonitor` incrementally:
    every post-crash send becomes a histogram observation over *virtual
    time* (the cumulative curve the report renders) plus per-layer
    counters and a last-send-time gauge.
    """

    def __init__(self, registry: MetricsRegistry, quiescence) -> None:
        self._registry = registry
        self._quiescence = quiescence
        self._cursor = 0
        self._last = registry.gauge("quiescence.last_post_crash_send_time")
        self._times = registry.histogram("quiescence.post_crash_send_time")

    def flush(self) -> None:
        sends = self._quiescence.post_crash_sends
        for record in sends[self._cursor:]:
            self._registry.counter(
                "quiescence.post_crash_sends_total", layer=record.layer
            ).inc()
            self._times.observe(record.time)
            # Sends arrive in simulation order, so times are nondecreasing.
            self._last.set(record.time, record.time)
        self._cursor = len(sends)


class Instrumentation:
    """Handle over every probe attached to one simulation."""

    def __init__(
        self,
        registry: MetricsRegistry,
        sim_probe: SimInstrument,
        network_probe: NetworkInstrument,
        trace_probe: TraceInstrument,
        quiescence_probe: Optional[QuiescenceInstrument],
        profiler: Optional[KernelProfiler],
        checks=None,
    ) -> None:
        self.registry = registry
        self.sim = sim_probe
        self.network = network_probe
        self.trace = trace_probe
        self.quiescence = quiescence_probe
        self.profiler = profiler
        self.checks = checks

    def flush(self) -> None:
        self.sim.flush()
        self.network.flush()
        self.trace.flush()
        if self.quiescence is not None:
            self.quiescence.flush()
        if self.profiler is not None:
            self.profiler.flush_into(self.registry)
        if self.checks is not None:
            from repro.obs.profile import flush_check_profile

            flush_check_profile(self.checks, self.registry)


def instrument_table(table, registry: MetricsRegistry, *, bound: int = 4) -> Instrumentation:
    """Attach the full probe set to a built table; returns the handle.

    The registry remembers the instrumentation through a finalizer, so
    ``registry.snapshot()`` is always taken over flushed, current
    numbers — callers never invoke :meth:`Instrumentation.flush`
    themselves.
    """
    sim_probe = SimInstrument(table.sim, registry)
    network_probe = NetworkInstrument(
        registry, run=registry.next_instance("table"), bound=bound
    )
    table.network.add_monitor(network_probe)
    trace_probe = TraceInstrument(registry, table.graph, table.sim)
    trace_probe.attach(table.trace)
    quiescence_probe = (
        QuiescenceInstrument(registry, table.quiescence)
        if getattr(table, "quiescence", None) is not None
        else None
    )
    profiler = None
    if registry.profile and table.sim.profiler is None:
        profiler = KernelProfiler()
        table.sim.profiler = profiler
    handle = Instrumentation(
        registry,
        sim_probe,
        network_probe,
        trace_probe,
        quiescence_probe,
        profiler,
        checks=getattr(table, "checks", None),
    )
    registry.add_finalizer(handle.flush)
    return handle
