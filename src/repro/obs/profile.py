"""Lightweight wall-clock kernel profiler.

Attaches to :class:`repro.sim.kernel.Simulator` through its ``profiler``
hook and attributes the wall-clock cost of every fired event to a
*site* — a coarse classification parsed from the event label (``deliver
Fork``, ``hunger`` timers, ``reeval`` …) — and, where the label names
one, to the destination actor.  The output answers the optimization
question directly: which event family, and which process, is the
simulation spending real time on?

Cost model: two ``perf_counter`` calls per event (~100 ns) against
event actions that run Python-level protocol logic — small enough to
leave on whenever metrics are collected.  Accumulation happens in plain
dicts; the registry only sees totals at flush time, and flushes are
delta-safe so repeated snapshots never double-count.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.obs.metrics import MetricsRegistry


def classify_site(label: str) -> str:
    """Collapse an event label to its site (event family).

    ``deliver Fork 3->7`` → ``deliver Fork``; ``hunger@4`` → ``hunger``;
    ``deadline 2~9`` → ``deadline``; anything unrecognized keeps its
    first word so new event kinds appear in reports without code changes.
    """
    if not label:
        return "(unlabeled)"
    if label.startswith("deliver "):
        parts = label.split(" ", 2)
        return f"deliver {parts[1]}" if len(parts) > 1 else "deliver"
    head, sep, _ = label.partition("@")
    if sep:
        return head
    if "mistake" in label:
        return "mistake"
    if label.startswith("detect crash"):
        return "detect crash"
    return label.split(" ", 1)[0]


def actor_of(label: str) -> Optional[str]:
    """The pid a label attributes work to, when it names one."""
    if "@" in label:
        return label.rsplit("@", 1)[1]
    if "->" in label:
        return label.rsplit("->", 1)[1]
    if "~" in label:
        left = label.rsplit("~", 1)[0]
        return left.rsplit(" ", 1)[-1] if " " in left else left
    return None


class KernelProfiler:
    """Per-site and per-actor wall-clock accumulator.

    Implements the kernel's profiler protocol: the simulator calls
    :meth:`record` with the event label and the measured seconds after
    every fired action.
    """

    def __init__(self) -> None:
        self._sites: Dict[str, List[float]] = {}
        self._actors: Dict[str, List[float]] = {}
        # Distinct labels are bounded (edges × message types + timers per
        # pid), so label → (site cell, actor cell) memoization turns the
        # per-event cost into one dict hit and four float adds.
        self._cells: Dict[str, Tuple[List[float], Optional[List[float]]]] = {}
        self._flushed_sites: Dict[str, Tuple[float, float]] = {}
        self._flushed_actors: Dict[str, Tuple[float, float]] = {}

    def record(self, label: str, seconds: float) -> None:
        entry = self._cells.get(label)
        if entry is None:
            site_cell = self._sites.setdefault(classify_site(label), [0.0, 0.0])
            actor = actor_of(label)
            actor_cell = (
                self._actors.setdefault(actor, [0.0, 0.0]) if actor is not None else None
            )
            entry = self._cells[label] = (site_cell, actor_cell)
        site_cell, actor_cell = entry
        site_cell[0] += 1.0
        site_cell[1] += seconds
        if actor_cell is not None:
            actor_cell[0] += 1.0
            actor_cell[1] += seconds

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def top_sites(self, n: int = 5) -> List[Tuple[str, int, float]]:
        """``(site, events, seconds)`` ranked by wall-clock, descending."""
        ranked = sorted(
            ((site, int(cell[0]), cell[1]) for site, cell in self._sites.items()),
            key=lambda item: (-item[2], item[0]),
        )
        return ranked[:n]

    def total_seconds(self) -> float:
        return sum(cell[1] for cell in self._sites.values())

    def flush_into(self, registry: MetricsRegistry) -> None:
        """Emit accumulated totals as counters (delta-safe)."""
        for site, cell in self._sites.items():
            seen = self._flushed_sites.get(site, (0.0, 0.0))
            registry.counter("profile.events_total", site=site).inc(cell[0] - seen[0])
            registry.counter("profile.wall_seconds_total", site=site).inc(cell[1] - seen[1])
            self._flushed_sites[site] = (cell[0], cell[1])
        for actor, cell in self._actors.items():
            seen = self._flushed_actors.get(actor, (0.0, 0.0))
            registry.counter("profile.actor_wall_seconds_total", pid=actor).inc(
                cell[1] - seen[1]
            )
            self._flushed_actors[actor] = (cell[0], cell[1])


def flush_check_profile(suite, registry: MetricsRegistry) -> Dict[str, Tuple[float, int]]:
    """Emit a profiled :class:`~repro.checks.suite.CheckSuite`'s per-property
    wall-clock attribution into ``registry``.

    Metrics: ``checks.property_wall_seconds_total{property=...}`` and
    ``checks.property_events_total{property=...}``.  Delta-safe per
    suite (repeated snapshot flushes never double-count), so it can ride
    the same registry finalizer as the kernel profiler; a suite whose
    profiling is off contributes nothing.  Returns the current totals.
    """
    totals = suite.profile_totals()
    seen: Dict[str, Tuple[float, int]] = getattr(suite, "_profile_flushed", {})
    for name, (seconds, events) in sorted(totals.items()):
        prior = seen.get(name, (0.0, 0))
        registry.counter("checks.property_wall_seconds_total", property=name).inc(
            seconds - prior[0]
        )
        registry.counter("checks.property_events_total", property=name).inc(
            events - prior[1]
        )
    suite._profile_flushed = dict(totals)
    return totals
