"""Flight recorder: a bounded ring of recent observability artifacts.

Long live runs cannot keep every trace record and wire event in memory,
but when a verdict comes back FAIL (or an actor faults) the *recent*
history is exactly what diagnosis needs.  The :class:`FlightRecorder`
keeps the last ``capacity`` trace records, wire events, and closed spans
in fixed-size rings; :meth:`dump` writes them as a witness directory in
the same JSONL formats every other artifact uses, so a dump is directly
replayable::

    repro check flight/trace.jsonl flight/wire.jsonl --topology ring --n 3
    repro trace flight/spans.jsonl

``flight.json`` records why the dump happened and how much each ring
forgot, so a truncated replay is never mistaken for the whole run.
"""

from __future__ import annotations

import json
import os
from collections import deque
from typing import Dict, Iterable, List, Optional

__all__ = ["FlightRecorder"]


class FlightRecorder:
    """Fixed-capacity rings of trace records, wire events, and spans.

    Everything is stored as plain JSON-ready dicts (the caller serializes
    at record time, so a dump never touches live objects).  ``evicted``
    reports per-ring how many entries the ring forgot.
    """

    def __init__(self, capacity: int = 512) -> None:
        if capacity < 1:
            raise ValueError(f"flight recorder capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._rings: Dict[str, deque] = {
            "trace": deque(maxlen=self.capacity),
            "wire": deque(maxlen=self.capacity),
            "spans": deque(maxlen=self.capacity),
        }
        self._seen: Dict[str, int] = {"trace": 0, "wire": 0, "spans": 0}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_trace(self, record: dict) -> None:
        self._record("trace", record)

    def record_wire(self, event: dict) -> None:
        self._record("wire", event)

    def record_span(self, span: dict) -> None:
        self._record("spans", span)

    def _record(self, ring: str, entry: dict) -> None:
        self._rings[ring].append(entry)
        self._seen[ring] += 1

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def evicted(self) -> Dict[str, int]:
        """Entries each ring forgot: ``{"trace": n, "wire": n, "spans": n}``."""
        return {
            ring: self._seen[ring] - len(entries)
            for ring, entries in self._rings.items()
        }

    def entries(self, ring: str) -> List[dict]:
        return list(self._rings[ring])

    # ------------------------------------------------------------------
    # Dumping
    # ------------------------------------------------------------------
    def dump(
        self,
        directory: str,
        *,
        reason: str = "manual",
        context: Optional[dict] = None,
    ) -> str:
        """Write the rings as a replayable witness directory; returns it.

        Layout: ``trace.jsonl`` / ``wire.jsonl`` / ``spans.jsonl`` (each
        omitted when its ring is empty) plus ``flight.json`` metadata
        (reason, per-ring retained/evicted counts, caller context).
        """
        os.makedirs(directory, exist_ok=True)
        written: Dict[str, int] = {}
        for ring, entries in self._rings.items():
            if not entries:
                continue
            name = f"{ring}.jsonl"
            written[ring] = _write_jsonl(os.path.join(directory, name), entries)
        meta = {
            "reason": reason,
            "capacity": self.capacity,
            "retained": {ring: len(entries) for ring, entries in self._rings.items()},
            "evicted": self.evicted,
            "files": {ring: f"{ring}.jsonl" for ring in written},
        }
        if context:
            meta["context"] = context
        with open(os.path.join(directory, "flight.json"), "w", encoding="utf-8") as stream:
            json.dump(meta, stream, indent=2, sort_keys=True)
            stream.write("\n")
        return directory


def _write_jsonl(path: str, entries: Iterable[dict]) -> int:
    count = 0
    with open(path, "w", encoding="utf-8") as stream:
        for entry in entries:
            stream.write(json.dumps(entry, sort_keys=True))
            stream.write("\n")
            count += 1
    return count
