"""Sim-time-aware metrics primitives and the per-run registry.

The paper's guarantees are quantitative *and* temporal — at most 4
dining messages in transit per edge, ◇WX's "no violations after some
time", quiescence toward crashed neighbors — so the instruments here
carry virtual time alongside values:

* :class:`Counter` — monotonically increasing total (messages sent,
  meals, suspicions).
* :class:`Gauge` — instantaneous level with running min/max, the
  virtual time of the max, and a time-weighted average (in-transit
  occupancy, queue depth).
* :class:`Histogram` — geometric-bucket distribution with exact
  count/sum/min/max (post-crash send times, event costs).

A :class:`MetricsRegistry` owns one family per ``(kind, name, labels)``
triple, renders everything into a plain-dict :meth:`snapshot` (JSON- and
pickle-safe, so snapshots travel through the result cache and process
pools), and merges snapshots across seeds with :func:`merge_snapshots`.
Instruments are deliberately free of locks and callbacks: all simulation
code is single-threaded per run, and the registry is per-run.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

LabelKey = Tuple[Tuple[str, str], ...]

#: Geometric bucket upper bounds covering both sub-second wall-clock
#: costs and multi-thousand-unit virtual times.  The trailing +inf
#: bucket is implicit.
DEFAULT_BUCKETS: Tuple[float, ...] = tuple(
    round(mantissa * 10.0**exponent, 6)
    for exponent in range(-6, 7)
    for mantissa in (1.0, 2.5, 5.0)
)


def _label_key(labels: Mapping[str, object]) -> LabelKey:
    """Canonical, hashable, order-independent form of a label set."""
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically increasing total."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelKey = ()) -> None:
        self.name = name
        self.labels = labels
        self.value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (inc {amount})")
        self.value += amount

    def as_dict(self) -> Dict[str, object]:
        return {"name": self.name, "labels": dict(self.labels), "value": self.value}


class Gauge:
    """Instantaneous level, aware of virtual time.

    ``set(value, time)`` updates the level and, when a time is given,
    accumulates the time-weighted integral so :meth:`time_average`
    reports mean occupancy over the observed window.  The running max
    remembers *when* it was reached (``max_time``) — that instant is the
    paper's "last violation" / "peak congestion" witness.
    """

    __slots__ = (
        "name", "labels", "value", "max", "min", "max_time",
        "_integral", "_first_time", "_last_time",
    )

    def __init__(self, name: str, labels: LabelKey = ()) -> None:
        self.name = name
        self.labels = labels
        self.value: float = 0.0
        self.max: Optional[float] = None
        self.min: Optional[float] = None
        self.max_time: Optional[float] = None
        self._integral: float = 0.0
        self._first_time: Optional[float] = None
        self._last_time: Optional[float] = None

    def set(self, value: float, time: Optional[float] = None) -> None:
        if time is not None:
            if self._last_time is None:
                self._first_time = time
            elif time > self._last_time:
                self._integral += self.value * (time - self._last_time)
            self._last_time = max(time, self._last_time or time)
        self.value = value
        if self.max is None or value > self.max:
            self.max = value
            self.max_time = time if time is not None else self.max_time
        if self.min is None or value < self.min:
            self.min = value

    def inc(self, amount: float = 1.0, time: Optional[float] = None) -> None:
        self.set(self.value + amount, time)

    def dec(self, amount: float = 1.0, time: Optional[float] = None) -> None:
        self.set(self.value - amount, time)

    def time_average(self) -> Optional[float]:
        """Time-weighted mean level, or None before two timed updates."""
        if self._first_time is None or self._last_time is None:
            return None
        span = self._last_time - self._first_time
        if span <= 0:
            return float(self.value)
        return self._integral / span

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "labels": dict(self.labels),
            "value": self.value,
            "max": self.max,
            "min": self.min,
            "max_time": self.max_time,
            "time_average": self.time_average(),
        }


class Histogram:
    """Geometric-bucket distribution with exact count/sum/min/max."""

    __slots__ = ("name", "labels", "bounds", "bucket_counts", "count", "sum", "min", "max")

    def __init__(
        self,
        name: str,
        labels: LabelKey = (),
        bounds: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        self.name = name
        self.labels = labels
        self.bounds: Tuple[float, ...] = tuple(bounds)
        self.bucket_counts: List[int] = [0] * (len(self.bounds) + 1)  # + overflow
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        self.bucket_counts[self._bucket_index(value)] += 1

    def _bucket_index(self, value: float) -> int:
        lo, hi = 0, len(self.bounds)
        while lo < hi:
            mid = (lo + hi) // 2
            if value <= self.bounds[mid]:
                hi = mid
            else:
                lo = mid + 1
        return lo

    def quantile(self, q: float) -> Optional[float]:
        """Approximate quantile: the upper bound of the covering bucket."""
        if self.count == 0:
            return None
        target = max(1, math.ceil(q * self.count))
        seen = 0
        for index, bucket_count in enumerate(self.bucket_counts):
            seen += bucket_count
            if seen >= target:
                if index < len(self.bounds):
                    return min(self.bounds[index], self.max if self.max is not None else self.bounds[index])
                return self.max
        return self.max

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "labels": dict(self.labels),
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "bounds": list(self.bounds),
            "bucket_counts": list(self.bucket_counts),
        }


class MetricsRegistry:
    """Per-run instrument store.

    One instrument per ``(kind, name, labels)``; asking again returns
    the same object, so independent components accumulate into shared
    totals.  ``profile`` advertises whether attached instrumentation
    should install the wall-clock kernel profiler (the registry itself
    never touches the kernel).
    """

    def __init__(self, *, profile: bool = True) -> None:
        self.profile = profile
        self._counters: Dict[Tuple[str, LabelKey], Counter] = {}
        self._gauges: Dict[Tuple[str, LabelKey], Gauge] = {}
        self._histograms: Dict[Tuple[str, LabelKey], Histogram] = {}
        self._finalizers: List[Callable[[], None]] = []
        self._instances: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Instrument access
    # ------------------------------------------------------------------
    def counter(self, name: str, **labels: object) -> Counter:
        key = (name, _label_key(labels))
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = self._counters[key] = Counter(name, key[1])
        return instrument

    def gauge(self, name: str, **labels: object) -> Gauge:
        key = (name, _label_key(labels))
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = self._gauges[key] = Gauge(name, key[1])
        return instrument

    def histogram(
        self, name: str, *, bounds: Sequence[float] = DEFAULT_BUCKETS, **labels: object
    ) -> Histogram:
        key = (name, _label_key(labels))
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = self._histograms[key] = Histogram(name, key[1], bounds)
        return instrument

    def next_instance(self, kind: str) -> str:
        """A deterministic per-registry instance tag (``t0``, ``t1`` …).

        Used to scope *live* per-edge gauges to one simulation when a
        single seed runs several tables back to back, so one table's
        residual in-flight count can never leak into the next table's
        live readings.
        """
        index = self._instances.get(kind, 0)
        self._instances[kind] = index + 1
        return f"{kind[:1]}{index}"

    # ------------------------------------------------------------------
    # Finalization and snapshots
    # ------------------------------------------------------------------
    def add_finalizer(self, finalizer: Callable[[], None]) -> None:
        """Register a flush hook run at every :meth:`snapshot`.

        Finalizers must be *delta-safe*: snapshotting twice may not
        double-count (instrumentation flushes only what accrued since
        its previous flush).
        """
        self._finalizers.append(finalizer)

    def finalize(self) -> None:
        for finalizer in self._finalizers:
            finalizer()

    def snapshot(self) -> Dict[str, object]:
        """Plain-dict rendering of every instrument (JSON-faithful)."""
        self.finalize()
        return {
            "counters": [c.as_dict() for _, c in sorted(self._counters.items())],
            "gauges": [g.as_dict() for _, g in sorted(self._gauges.items())],
            "histograms": [h.as_dict() for _, h in sorted(self._histograms.items())],
        }


# ----------------------------------------------------------------------
# Snapshot queries and merging
# ----------------------------------------------------------------------
def _match(entry: Mapping[str, object], name: str, labels: Mapping[str, object]) -> bool:
    if entry.get("name") != name:
        return False
    entry_labels = entry.get("labels") or {}
    return all(entry_labels.get(str(k)) == str(v) for k, v in labels.items())


def counter_total(snapshot: Mapping[str, object], name: str, **labels: object) -> float:
    """Sum of every counter named ``name`` whose labels include ``labels``."""
    return sum(
        float(entry["value"])
        for entry in snapshot.get("counters", ())
        if _match(entry, name, labels)
    )


def counter_by_label(
    snapshot: Mapping[str, object], name: str, label: str, **labels: object
) -> Dict[str, float]:
    """Totals of counter ``name`` keyed by the value of one label."""
    totals: Dict[str, float] = {}
    for entry in snapshot.get("counters", ()):
        if _match(entry, name, labels):
            key = (entry.get("labels") or {}).get(label, "")
            totals[key] = totals.get(key, 0.0) + float(entry["value"])
    return totals


def gauge_entries(
    snapshot: Mapping[str, object], name: str, **labels: object
) -> List[Mapping[str, object]]:
    return [entry for entry in snapshot.get("gauges", ()) if _match(entry, name, labels)]


def gauge_max(snapshot: Mapping[str, object], name: str, **labels: object) -> Optional[float]:
    """Largest ``max`` across every gauge named ``name``."""
    values = [
        float(entry["max"])
        for entry in gauge_entries(snapshot, name, **labels)
        if entry.get("max") is not None
    ]
    return max(values) if values else None


def gauge_max_time(snapshot: Mapping[str, object], name: str, **labels: object) -> Optional[float]:
    """Virtual time at which the overall-max gauge reading happened."""
    best: Optional[Tuple[float, Optional[float]]] = None
    for entry in gauge_entries(snapshot, name, **labels):
        if entry.get("max") is None:
            continue
        candidate = (float(entry["max"]), entry.get("max_time"))
        if best is None or candidate[0] > best[0]:
            best = candidate
    if best is None or best[1] is None:
        return None
    return float(best[1])


def histogram_entries(
    snapshot: Mapping[str, object], name: str, **labels: object
) -> List[Mapping[str, object]]:
    return [entry for entry in snapshot.get("histograms", ()) if _match(entry, name, labels)]


def _merge_entry(kind: str, target: Dict[str, object], source: Mapping[str, object]) -> None:
    if kind == "counters":
        target["value"] = float(target["value"]) + float(source["value"])
        return
    if kind == "gauges":
        for field, pick in (("max", max), ("min", min)):
            a, b = target.get(field), source.get(field)
            target[field] = pick(a, b) if a is not None and b is not None else (a if b is None else b)
        if source.get("max") is not None and target.get("max") == source.get("max"):
            target["max_time"] = source.get("max_time")
        target["value"] = max(float(target.get("value") or 0.0), float(source.get("value") or 0.0))
        target["time_average"] = None  # not meaningful across runs
        return
    # histograms
    target["count"] = int(target["count"]) + int(source["count"])
    target["sum"] = float(target["sum"]) + float(source["sum"])
    for field, pick in (("max", max), ("min", min)):
        a, b = target.get(field), source.get(field)
        target[field] = pick(a, b) if a is not None and b is not None else (a if b is None else b)
    if list(target.get("bounds", ())) == list(source.get("bounds", ())):
        target["bucket_counts"] = [
            x + y for x, y in zip(target["bucket_counts"], source["bucket_counts"])
        ]


def merge_snapshots(snapshots: Iterable[Mapping[str, object]]) -> Dict[str, object]:
    """Combine per-seed snapshots into one cross-run view.

    Counters and histogram populations add; gauges keep the extreme
    envelope (max of maxes, min of mins, and the witness time of the
    overall max) — the right semantics for "worst observed anywhere".
    """
    merged: Dict[str, object] = {"counters": [], "gauges": [], "histograms": []}
    index: Dict[Tuple[str, str, LabelKey], Dict[str, object]] = {}
    for snapshot in snapshots:
        if not snapshot:
            continue
        for kind in ("counters", "gauges", "histograms"):
            for entry in snapshot.get(kind, ()):
                key = (kind, str(entry["name"]), _label_key(entry.get("labels") or {}))
                existing = index.get(key)
                if existing is None:
                    clone = dict(entry)
                    if "bucket_counts" in clone:
                        clone["bucket_counts"] = list(clone["bucket_counts"])
                    index[key] = clone
                    merged[kind].append(clone)
                else:
                    _merge_entry(kind, existing, entry)
    for kind in ("counters", "gauges", "histograms"):
        merged[kind].sort(key=lambda entry: (entry["name"], sorted((entry.get("labels") or {}).items())))
    return merged
