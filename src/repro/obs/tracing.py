"""Causal request spans: the tracing half of the observability layer.

Every hungry session is one **request**: a diner leaves ``thinking``,
collects acks, enters the doorway, collects forks, eats, and exits.  The
paper's central claims are temporal (eventually-k-bounded waiting,
2-bounded overtaking, the Section 7 channel bound), so the natural
observability primitive is a *span* over each request, causally ordered
by Lamport clocks rather than wall clocks — two hosts' wall clocks can
disagree, but a fork that was granted happens-before the meal it enabled
on any substrate.

One request span opens per hunger and carries four phase children::

    request (pid=3, session=7)
      hungry           thinking->hungry .. doorway entry (acks/suspicion)
      forks-requested  doorway entry    .. last fork arrival
      forks-held       last fork        .. eating begins (usually ~0)
      eating           eating begins    .. exit

Span identifiers are **deterministic**: ``trace_id = pid << 32 | session``
and the five span ids are fixed small integers, so the same seed yields
the same span tree on the kernel and on live sockets, and a merged
cluster trace needs no id reconciliation — stitching is a sort.

The :class:`SpanAssembler` consumes the *normalized check-event
vocabulary* (:mod:`repro.checks.events`), which is what makes it
substrate-agnostic: the kernel feeds it through a network monitor plus
trace listeners (:func:`attach_tracer`), the live host feeds it from its
transport loop, and ``repro trace`` rebuilds identical spans offline from
recorded ``trace.jsonl``/``wire.jsonl`` artifacts
(:func:`spans_from_events`).  Everything here is opt-in: nothing hooks
the kernel or the host unless a tracer is attached, so the disabled
overhead is one untaken branch.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass
from typing import Dict, Iterable, List, NamedTuple, Optional, Tuple

from repro.trace.events import EATING, HUNGRY, THINKING

__all__ = [
    "NO_CONTEXT",
    "PHASE_SPANS",
    "SPAN_EATING",
    "SPAN_FORKS_HELD",
    "SPAN_FORKS_REQUESTED",
    "SPAN_HUNGRY",
    "SPAN_REQUEST",
    "KernelTracer",
    "Span",
    "SpanAssembler",
    "SpanContext",
    "attach_tracer",
    "completed_meals",
    "critical_path",
    "dump_spans",
    "flush_span_metrics",
    "load_spans",
    "make_trace_id",
    "render_critical_path",
    "render_timeline",
    "request_spans",
    "slowest_request",
    "span_from_dict",
    "span_to_dict",
    "spans_from_events",
    "stitch_spans",
    "trace_pid",
    "trace_session",
]

# ----------------------------------------------------------------------
# Identifiers
# ----------------------------------------------------------------------
#: Span names.  The four phases are ordered children of the request span.
SPAN_REQUEST = "request"
SPAN_HUNGRY = "hungry"
SPAN_FORKS_REQUESTED = "forks-requested"
SPAN_FORKS_HELD = "forks-held"
SPAN_EATING = "eating"

PHASE_SPANS = (SPAN_HUNGRY, SPAN_FORKS_REQUESTED, SPAN_FORKS_HELD, SPAN_EATING)

#: Fixed per-trace span ids (uniqueness is the ``(trace_id, span_id)``
#: pair).  Small constants keep the wire context a few varint bytes.
_SID_REQUEST = 1
_SID_OF_NAME = {
    SPAN_REQUEST: _SID_REQUEST,
    SPAN_HUNGRY: 2,
    SPAN_FORKS_REQUESTED: 3,
    SPAN_FORKS_HELD: 4,
    SPAN_EATING: 5,
}

_SESSION_BITS = 32
_SESSION_MASK = (1 << _SESSION_BITS) - 1


def make_trace_id(pid: int, session: int) -> int:
    """Deterministic trace id for ``pid``'s ``session``-th hunger (1-based)."""
    return (pid << _SESSION_BITS) | (session & _SESSION_MASK)


def trace_pid(trace_id: int) -> int:
    return trace_id >> _SESSION_BITS


def trace_session(trace_id: int) -> int:
    return trace_id & _SESSION_MASK


class SpanContext(NamedTuple):
    """The causal context one message carries: which request sent it, when.

    ``trace_id == 0`` means "no open request" — the context then only
    propagates the Lamport stamp (pings and deferred-fork releases from a
    thinking diner still advance causal time).
    """

    trace_id: int
    span_id: int
    lamport: int


#: The lamport-only context of a sender with no open request span.
NO_CONTEXT = SpanContext(0, 0, 0)


# ----------------------------------------------------------------------
# Spans
# ----------------------------------------------------------------------
@dataclass(slots=True)
class Span:
    """One node of a request's span tree.

    ``status`` is ``"ok"`` for a cleanly closed span, ``"crashed"`` when
    the diner crashed inside it, and ``"open"`` when the run ended with
    the span still in flight (``end`` then holds the horizon).
    """

    trace_id: int
    span_id: int
    parent_id: Optional[int]
    name: str
    pid: int
    start: float
    end: Optional[float]
    lamport_start: int
    lamport_end: int
    status: str = "ok"
    detail: Optional[str] = None

    @property
    def duration(self) -> float:
        if self.end is None:
            return 0.0
        return self.end - self.start


def span_to_dict(span: Span) -> dict:
    data = {
        "kind": "span",
        "trace_id": span.trace_id,
        "span_id": span.span_id,
        "parent_id": span.parent_id,
        "name": span.name,
        "pid": span.pid,
        "start": span.start,
        "end": span.end,
        "lamport_start": span.lamport_start,
        "lamport_end": span.lamport_end,
        "status": span.status,
    }
    if span.detail is not None:
        data["detail"] = span.detail
    return data


def span_from_dict(data: dict) -> Span:
    return Span(
        trace_id=int(data["trace_id"]),
        span_id=int(data["span_id"]),
        parent_id=data.get("parent_id"),
        name=data["name"],
        pid=int(data["pid"]),
        start=float(data["start"]),
        end=None if data.get("end") is None else float(data["end"]),
        lamport_start=int(data.get("lamport_start", 0)),
        lamport_end=int(data.get("lamport_end", 0)),
        status=data.get("status", "ok"),
        detail=data.get("detail"),
    )


def dump_spans(path, spans: Iterable[Span]) -> int:
    """Write spans as JSONL; returns the number written."""
    count = 0
    with open(path, "w", encoding="utf-8") as stream:
        for span in spans:
            stream.write(json.dumps(span_to_dict(span), sort_keys=True))
            stream.write("\n")
            count += 1
    return count


def load_spans(path) -> List[Span]:
    spans: List[Span] = []
    with open(path, "r", encoding="utf-8") as stream:
        for line in stream:
            line = line.strip()
            if line:
                spans.append(span_from_dict(json.loads(line)))
    return spans


# ----------------------------------------------------------------------
# Assembly
# ----------------------------------------------------------------------
class _OpenRequest:
    """Mutable state of one in-flight request span."""

    __slots__ = (
        "trace_id",
        "pid",
        "start",
        "lamport_start",
        "child",
        "child_start",
        "child_lamport",
        "last_fork_time",
        "last_fork_from",
    )

    def __init__(self, trace_id: int, pid: int, time: float, lamport: int) -> None:
        self.trace_id = trace_id
        self.pid = pid
        self.start = time
        self.lamport_start = lamport
        self.child = SPAN_HUNGRY
        self.child_start = time
        self.child_lamport = lamport
        self.last_fork_time: Optional[float] = None
        self.last_fork_from: Optional[int] = None


class SpanAssembler:
    """Builds request span trees from the normalized event stream.

    Feed it events (online through the per-substrate adapters, offline
    via :func:`spans_from_events`); closed spans accumulate in
    :attr:`spans`.  With ``capacity`` set the span list is a bounded ring
    (the flight recorder's storage) and :attr:`evicted` counts what the
    ring forgot.

    Lamport bookkeeping: every local event ticks its pid's clock; every
    :meth:`send` ticks and stamps; every :meth:`receive` merges the
    carried stamp.  Stamps are therefore relative to the events the
    assembler was shown — a trace-only offline rebuild (no wire log)
    yields coarser clocks than a run traced with message events, which is
    fine: ordering is only ever compared between spans built from the
    same event universe.
    """

    def __init__(self, *, capacity: Optional[int] = None) -> None:
        self.spans: "deque[Span]" = deque(maxlen=capacity)
        self._capacity = capacity
        self._appended = 0
        self._open: Dict[int, _OpenRequest] = {}
        self._clock: Dict[int, int] = {}
        self._session: Dict[int, int] = {}
        self._stamps: Dict[Tuple[int, int], deque] = {}
        self.meals = 0

    # -- clocks --------------------------------------------------------
    def _tick(self, pid: int) -> int:
        clock = self._clock.get(pid, 0) + 1
        self._clock[pid] = clock
        return clock

    def lamport(self, pid: int) -> int:
        """Current Lamport clock of ``pid`` (0 if never seen)."""
        return self._clock.get(pid, 0)

    @property
    def evicted(self) -> int:
        """Spans forgotten by the bounded ring (0 when unbounded)."""
        return self._appended - len(self.spans)

    def _emit(self, span: Span) -> None:
        self.spans.append(span)
        self._appended += 1

    # -- local lifecycle events ----------------------------------------
    def on_phase(self, time: float, pid: int, old_phase: str, new_phase: str) -> None:
        lamport = self._tick(pid)
        if new_phase == HUNGRY:
            session = self._session.get(pid, 0) + 1
            self._session[pid] = session
            self._open[pid] = _OpenRequest(make_trace_id(pid, session), pid, time, lamport)
            return
        request = self._open.get(pid)
        if request is None:
            return
        if new_phase == EATING:
            # Close forks-requested at the last fork arrival, account the
            # residue as forks-held, then open the eating child.
            boundary = request.last_fork_time
            if boundary is None or boundary < request.child_start:
                boundary = time
            detail = (
                None
                if request.last_fork_from is None
                else f"last-fork-from={request.last_fork_from}"
            )
            self._close_child(request, boundary, lamport, detail=detail)
            self._open_child(request, SPAN_FORKS_HELD, boundary, lamport)
            self._close_child(request, time, lamport)
            self._open_child(request, SPAN_EATING, time, lamport)
            self.meals += 1
        elif new_phase == THINKING:
            self._close_child(request, time, lamport)
            self._close_request(request, time, lamport, "ok")

    def on_doorway(self, time: float, pid: int, inside: bool) -> None:
        lamport = self._tick(pid)
        request = self._open.get(pid)
        if request is None or not inside:
            # Doorway exit happens during Action 10 and is subsumed by
            # the eating->thinking phase change that follows it.
            return
        if request.child == SPAN_HUNGRY:
            self._close_child(request, time, lamport)
            self._open_child(request, SPAN_FORKS_REQUESTED, time, lamport)

    def on_crash(self, time: float, pid: int) -> None:
        lamport = self._tick(pid)
        request = self._open.get(pid)
        if request is not None:
            self._close_child(request, time, lamport, status="crashed")
            self._close_request(request, time, lamport, "crashed")

    # -- message events ------------------------------------------------
    def send(self, time: float, src: int) -> SpanContext:
        """Stamp one outgoing message with ``src``'s causal context."""
        lamport = self._tick(src)
        request = self._open.get(src)
        if request is None:
            return SpanContext(0, 0, lamport)
        return SpanContext(request.trace_id, _SID_OF_NAME[request.child], lamport)

    def receive(
        self,
        time: float,
        src: int,
        dst: int,
        kind: str,
        context: Optional[SpanContext] = None,
    ) -> None:
        """Merge one delivery into ``dst``'s clock; track fork arrivals."""
        stamp = context.lamport if context is not None else 0
        local = self._clock.get(dst, 0)
        self._clock[dst] = (stamp if stamp > local else local) + 1
        if kind == "Fork":
            request = self._open.get(dst)
            if request is not None and request.child == SPAN_FORKS_REQUESTED:
                request.last_fork_time = time
                request.last_fork_from = src

    # -- normalized-event dispatch (offline + adapters) ----------------
    def observe(self, event) -> None:
        """Dispatch one :mod:`repro.checks.events` member."""
        from repro.checks.events import (
            CrashEvent,
            DeliverEvent,
            DoorwayEvent,
            DropEvent,
            PhaseEvent,
            SendEvent,
        )

        cls = type(event)
        if cls is PhaseEvent:
            self.on_phase(event.time, event.pid, event.old_phase, event.new_phase)
        elif cls is DoorwayEvent:
            self.on_doorway(event.time, event.pid, event.inside)
        elif cls is CrashEvent:
            self.on_crash(event.time, event.pid)
        elif cls is SendEvent:
            self._queue_stamp(event.src, event.dst, self.send(event.time, event.src))
        elif cls is DeliverEvent:
            self.receive(
                event.time,
                event.src,
                event.dst,
                event.type,
                self._pop_stamp(event.src, event.dst),
            )
        # Drops still consume their channel stamp (FIFO, no reordering).
        elif cls is DropEvent:
            self._pop_stamp(event.src, event.dst)

    # Per-directed-channel stamp queues: channels are FIFO and lossless
    # up to explicit drops, so the n-th departure carries the n-th stamp.
    def _queue_stamp(self, src: int, dst: int, context: SpanContext) -> None:
        queue = self._stamps.get((src, dst))
        if queue is None:
            queue = self._stamps[(src, dst)] = deque()
        queue.append(context)

    def _pop_stamp(self, src: int, dst: int) -> Optional[SpanContext]:
        queue = self._stamps.get((src, dst))
        if not queue:
            return None
        return queue.popleft()

    # -- closing -------------------------------------------------------
    def _open_child(self, request: _OpenRequest, name: str, time: float, lamport: int) -> None:
        request.child = name
        request.child_start = time
        request.child_lamport = lamport

    def _close_child(
        self,
        request: _OpenRequest,
        time: float,
        lamport: int,
        *,
        status: str = "ok",
        detail: Optional[str] = None,
    ) -> None:
        self._emit(
            Span(
                trace_id=request.trace_id,
                span_id=_SID_OF_NAME[request.child],
                parent_id=_SID_REQUEST,
                name=request.child,
                pid=request.pid,
                start=request.child_start,
                end=time,
                lamport_start=request.child_lamport,
                lamport_end=lamport,
                status=status,
                detail=detail,
            )
        )

    def _close_request(self, request: _OpenRequest, time: float, lamport: int, status: str) -> None:
        del self._open[request.pid]
        self._emit(
            Span(
                trace_id=request.trace_id,
                span_id=_SID_REQUEST,
                parent_id=None,
                name=SPAN_REQUEST,
                pid=request.pid,
                start=request.start,
                end=time,
                lamport_start=request.lamport_start,
                lamport_end=lamport,
                status=status,
            )
        )

    def finish(self, time: float) -> List[Span]:
        """Close every in-flight span as ``"open"`` at the horizon.

        Returns the full span list (ring-bounded assemblers return what
        the ring retained), sorted into stitch order.
        """
        for pid in sorted(self._open):
            request = self._open[pid]
            lamport = self._tick(pid)
            self._close_child(request, time, lamport, status="open")
            self._close_request(request, time, lamport, "open")
        return stitch_spans(self.spans)


def spans_from_events(events: Iterable, *, horizon: Optional[float] = None) -> List[Span]:
    """Rebuild the span forest offline from recorded check events.

    ``events`` is any stream of :mod:`repro.checks.events` members —
    typically ``load_events_path`` over ``trace.jsonl`` (and, when the
    run was live, ``wire.jsonl``) merged with ``merge_events``.
    """
    assembler = SpanAssembler()
    last_time = 0.0
    for event in events:
        assembler.observe(event)
        time = getattr(event, "time", None)
        if time is not None and time > last_time:
            last_time = time
    return assembler.finish(horizon if horizon is not None else last_time)


def stitch_spans(*span_lists: Iterable[Span]) -> List[Span]:
    """Merge per-host span lists into one causally coherent trace.

    Hosts of one cluster share an epoch, so wall time is the primary key;
    Lamport stamps break same-instant ties causally, and the
    deterministic ids make the result stable across merge orders.
    """
    merged: List[Span] = []
    for spans in span_lists:
        merged.extend(spans)
    merged.sort(key=lambda s: (s.start, s.lamport_start, s.trace_id, s.span_id))
    return merged


def request_spans(spans: Iterable[Span]) -> List[Span]:
    return [span for span in spans if span.name == SPAN_REQUEST]


def flush_span_metrics(spans: Iterable[Span], registry) -> None:
    """Per-phase latency histograms and request counters from closed spans.

    Substrate-agnostic (the same helper serves the kernel tracer and the
    live host), so the metric names line up in merged expositions:
    ``trace.phase_seconds{phase=...}``, ``trace.request_seconds``, and
    ``trace.requests_total{status=...}``.
    """
    for span in spans:
        if span.name == SPAN_REQUEST:
            registry.counter("trace.requests_total", status=span.status).inc()
            if span.end is not None:
                registry.histogram("trace.request_seconds").observe(span.duration)
        elif span.end is not None:
            registry.histogram("trace.phase_seconds", phase=span.name).observe(
                span.duration
            )


def completed_meals(spans: Iterable[Span]) -> int:
    """Meals represented in a span list: one ``eating`` child per meal.

    Counted at eating entry — exactly when ``meals_eaten`` increments —
    so a crash or horizon mid-meal still counts, and the stitched cluster
    trace's meal count equals the merged hosts' meal counters.
    """
    return sum(1 for span in spans if span.name == SPAN_EATING)


# ----------------------------------------------------------------------
# Online adapters (kernel)
# ----------------------------------------------------------------------
class KernelTracer:
    """Feeds a :class:`SpanAssembler` from a running :class:`DiningTable`.

    Subscribes typed trace listeners for the lifecycle records and a
    network monitor for message stamps — both no-ops for every run that
    does not attach a tracer, which is what keeps the disabled overhead
    inside the kernel benchmark guard.
    """

    def __init__(self, table, *, capacity: Optional[int] = None) -> None:
        from repro.trace.events import Crash, DoorwayChange, PhaseChange

        self._table = table
        self.assembler = SpanAssembler(capacity=capacity)
        trace = table.trace
        trace.add_listener(self._on_phase, types=(PhaseChange,))
        trace.add_listener(self._on_doorway, types=(DoorwayChange,))
        trace.add_listener(self._on_crash, types=(Crash,))
        table.network.add_monitor(self)

    # trace listeners
    def _on_phase(self, record) -> None:
        self.assembler.on_phase(record.time, record.pid, record.old_phase, record.new_phase)

    def _on_doorway(self, record) -> None:
        self.assembler.on_doorway(record.time, record.pid, record.inside)

    def _on_crash(self, record) -> None:
        self.assembler.on_crash(record.time, record.pid)

    # NetworkMonitor interface
    def on_send(self, src: int, dst: int, message, time: float) -> None:
        self.assembler._queue_stamp(src, dst, self.assembler.send(time, src))

    def on_deliver(self, src: int, dst: int, message, time: float) -> None:
        self.assembler.receive(
            time, src, dst, type(message).__name__, self.assembler._pop_stamp(src, dst)
        )

    def on_drop(self, src: int, dst: int, message, time: float) -> None:
        self.assembler._pop_stamp(src, dst)

    def finish(self) -> List[Span]:
        """Close open spans at the table's current horizon."""
        return self.assembler.finish(self._table.sim.now)


def attach_tracer(table, *, capacity: Optional[int] = None) -> KernelTracer:
    """Opt a kernel run into request tracing; call before ``table.run``."""
    return KernelTracer(table, capacity=capacity)


# ----------------------------------------------------------------------
# Rendering: timelines and the critical path
# ----------------------------------------------------------------------
def _group_traces(spans: Iterable[Span]) -> Dict[int, List[Span]]:
    traces: Dict[int, List[Span]] = {}
    for span in spans:
        traces.setdefault(span.trace_id, []).append(span)
    return traces


def _request_of(trace: List[Span]) -> Optional[Span]:
    for span in trace:
        if span.name == SPAN_REQUEST:
            return span
    return None


def slowest_request(spans: Iterable[Span], *, pid: Optional[int] = None) -> Optional[int]:
    """Trace id of the longest request (optionally for one diner)."""
    worst: Optional[Tuple[float, int]] = None
    for trace_id, trace in _group_traces(spans).items():
        request = _request_of(trace)
        if request is None or (pid is not None and request.pid != pid):
            continue
        key = (request.duration, -trace_id)
        if worst is None or key > worst:
            worst = key
            worst_id = trace_id
    return None if worst is None else worst_id


def critical_path(spans: Iterable[Span], trace_id: int) -> List[Span]:
    """The request's phases ordered by cost, dominant first.

    For a single-request tree the critical path *through time* is the
    phase sequence itself; what diagnosis needs is which phase dominated
    the latency, and — when it was fork collection — which neighbor's
    fork arrived last (the ``detail`` of the forks-requested span).
    """
    trace = _group_traces(spans).get(trace_id, [])
    phases = [span for span in trace if span.name in PHASE_SPANS]
    return sorted(phases, key=lambda s: (-s.duration, s.span_id))


def render_timeline(
    spans: Iterable[Span],
    *,
    pid: Optional[int] = None,
    limit: Optional[int] = None,
) -> List[str]:
    """Human-readable per-request timelines, one block per request."""
    traces = _group_traces(spans)
    ordered = sorted(
        (t for t in traces.values() if _request_of(t) is not None),
        key=lambda t: (_request_of(t).start, _request_of(t).trace_id),
    )
    if pid is not None:
        ordered = [t for t in ordered if _request_of(t).pid == pid]
    if limit is not None:
        ordered = ordered[-limit:]
    lines: List[str] = []
    for trace in ordered:
        request = _request_of(trace)
        status = "" if request.status == "ok" else f" [{request.status}]"
        lines.append(
            f"request pid={request.pid} session={trace_session(request.trace_id)} "
            f"trace={request.trace_id:#x} t={request.start:.3f}..{_fmt_end(request)} "
            f"({request.duration:.3f}s){status}"
        )
        for phase in sorted(
            (s for s in trace if s.name in PHASE_SPANS), key=lambda s: (s.start, s.span_id)
        ):
            detail = f"  {phase.detail}" if phase.detail else ""
            flag = "" if phase.status == "ok" else f" [{phase.status}]"
            lines.append(
                f"  {phase.name:<16} {phase.start:>10.3f} .. {_fmt_end(phase):>10} "
                f"{phase.duration:>8.3f}s  L{phase.lamport_start}->{phase.lamport_end}"
                f"{detail}{flag}"
            )
    return lines


def _fmt_end(span: Span) -> str:
    return "?" if span.end is None else f"{span.end:.3f}"


def render_critical_path(spans: Iterable[Span], trace_id: int) -> List[str]:
    """Render the dominant-cost breakdown of one request."""
    path = critical_path(spans, trace_id)
    if not path:
        return [f"trace {trace_id:#x}: no spans recorded"]
    total = sum(span.duration for span in path)
    request = _request_of(_group_traces(spans).get(trace_id, []))
    pid = path[0].pid
    header = f"critical path for pid={pid} trace={trace_id:#x}"
    if request is not None and request.status != "ok":
        header += f" [{request.status}]"
    lines = [header]
    for rank, span in enumerate(path):
        share = 0.0 if total <= 0 else 100.0 * span.duration / total
        marker = "*" if rank == 0 else " "
        detail = f"  ({span.detail})" if span.detail else ""
        lines.append(
            f" {marker} {span.name:<16} {span.duration:>9.3f}s  {share:5.1f}%{detail}"
        )
    return lines
