"""Adversarial fuzz campaigns over the dining substrates.

The proofs of Theorems 1–3 quantify over *all* admissible asynchronous
schedules; a seeded simulation samples exactly one.  This package closes
part of that gap by composing adversarial **schedule mutators** — seeded
latency adversaries, crash-timing search biased toward fork-holding and
doorway-transit states, ◇P₁ suspicion flapping, hungry-session burst
workloads — into a declarative :class:`~repro.faults.plan.FaultPlan`
that runs on either substrate (simulation kernel or live
:class:`~repro.net.host.AsyncHost`) and is judged by the same
:func:`repro.checks.standard_suite` Verdict pipeline as every other
front end.

Layers:

* :mod:`repro.faults.plan` — the JSON-round-trippable plan vocabulary;
* :mod:`repro.faults.engine` — one plan → one judged run (kernel/live);
* :mod:`repro.faults.sampler` — seeded plan derivation for campaigns;
* :mod:`repro.faults.mutants` — the seeded-bug registry mutation
  testing runs campaigns against;
* :mod:`repro.faults.campaign` — budgeted campaigns + mutation scores;
* :mod:`repro.faults.shrink` — delta-debugging plan minimization and
  witness artifacts replayable by ``repro check``;
* :mod:`repro.faults.scenarios` — the ``fuzz_*`` scenario family riding
  the Runner's seed fan-out and result cache.
"""

from repro.faults.campaign import (
    CampaignResult,
    CampaignSpec,
    MutationReport,
    run_campaign,
    run_mutation_harness,
)
from repro.faults.engine import FaultRunResult, JudgeWindows, run_plan, run_plan_kernel, run_plan_live
from repro.faults.mutants import Mutant, all_mutants, get_mutant, mutant_names
from repro.faults.plan import (
    ClientStormSpec,
    CrashSpec,
    FaultPlan,
    FlapSpec,
    LatencySpec,
    WorkloadSpec,
)
from repro.faults.sampler import sample_plan
from repro.faults.shrink import ShrinkResult, shrink_plan, write_witness

__all__ = [
    "CampaignResult",
    "CampaignSpec",
    "CrashSpec",
    "ClientStormSpec",
    "FaultPlan",
    "FaultRunResult",
    "FlapSpec",
    "JudgeWindows",
    "LatencySpec",
    "Mutant",
    "MutationReport",
    "ShrinkResult",
    "WorkloadSpec",
    "all_mutants",
    "get_mutant",
    "mutant_names",
    "run_campaign",
    "run_mutation_harness",
    "run_plan",
    "run_plan_kernel",
    "run_plan_live",
    "sample_plan",
    "shrink_plan",
    "write_witness",
]
