"""The declarative fault-plan vocabulary.

A :class:`FaultPlan` is a complete, self-contained description of one
adversarial run: topology, seed, horizon, a latency adversary, crash
injections (time-scripted or *state-triggered*: biased toward
fork-holding, doorway-transit, or eating states), ◇P₁ suspicion-flap
intensity, and the hunger workload.  Plans are JSON-round-trippable
(``to_json`` / ``from_json``) so a failing plan is itself the repro
artifact: the shrinker persists the minimized plan next to its trace,
and ``repro fuzz --plan`` replays it bit-for-bit.

The plan layer knows nothing about substrates; :mod:`repro.faults.engine`
interprets a plan on the kernel or the live host.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, replace
from typing import Dict, Mapping, Optional, Tuple

from repro.core.workload import AlwaysHungry, BurstyWorkload, PoissonWorkload, Workload
from repro.errors import ConfigurationError
from repro.sim.latency import (
    FixedLatency,
    LatencyModel,
    LogNormalLatency,
    PartialSynchronyLatency,
    StormLatency,
    UniformLatency,
)

#: Crash-trigger states a :class:`CrashSpec` can target.  ``"doorway"``
#: crashes the victim the moment it transits into the doorway,
#: ``"eating"`` at the first bite, ``"fork"`` on receipt of a fork (a
#: fork-holding state) — the three windows in which a crash strands the
#: most shared state at neighbors.
TRIGGER_STATES = ("doorway", "eating", "fork")


# ----------------------------------------------------------------------
# Latency adversaries
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LatencySpec:
    """A named latency adversary plus its parameters.

    ``kind`` selects the :mod:`repro.sim.latency` model: ``fixed``,
    ``uniform``, ``lognormal``, ``gst`` (partial synchrony), or
    ``storm`` (periodic congestion bursts).  :meth:`ceiling` is the
    worst-case post-convergence delay, which the engine folds into its
    judgement windows so eventual properties are never judged tighter
    than the adversary allows.
    """

    kind: str = "fixed"
    params: Tuple[Tuple[str, float], ...] = ()

    @staticmethod
    def of(kind: str, **params: float) -> "LatencySpec":
        return LatencySpec(kind=kind, params=tuple(sorted(params.items())))

    def as_dict(self) -> Dict[str, float]:
        return dict(self.params)

    def build(self) -> LatencyModel:
        p = self.as_dict()
        if self.kind == "fixed":
            return FixedLatency(p.get("delay", 1.0))
        if self.kind == "uniform":
            return UniformLatency(p.get("low", 0.5), p.get("high", 1.5))
        if self.kind == "lognormal":
            return LogNormalLatency(
                median=p.get("median", 1.0),
                sigma=p.get("sigma", 0.5),
                floor=p.get("floor", 0.05),
                ceiling=p.get("ceiling", 6.0),
            )
        if self.kind == "gst":
            return PartialSynchronyLatency(
                gst=p.get("gst", 20.0),
                min_delay=p.get("min_delay", 0.1),
                pre_gst_max=p.get("pre_gst_max", 6.0),
                post_gst_max=p.get("post_gst_max", 1.0),
            )
        if self.kind == "storm":
            return StormLatency(
                period=p.get("period", 20.0),
                storm_len=p.get("storm_len", 5.0),
                calm_low=p.get("calm_low", 0.5),
                calm_high=p.get("calm_high", 1.5),
                storm_low=p.get("storm_low", 3.0),
                storm_high=p.get("storm_high", 6.0),
            )
        raise ConfigurationError(f"unknown latency kind {self.kind!r}")

    def ceiling(self) -> float:
        """Worst-case single-message delay once the system has settled."""
        p = self.as_dict()
        if self.kind == "fixed":
            return p.get("delay", 1.0)
        if self.kind == "uniform":
            return p.get("high", 1.5)
        if self.kind == "lognormal":
            return p.get("ceiling", 6.0)
        if self.kind == "gst":
            return p.get("post_gst_max", 1.0)
        if self.kind == "storm":
            return p.get("storm_high", 6.0)
        raise ConfigurationError(f"unknown latency kind {self.kind!r}")

    def stabilization_time(self) -> float:
        """Time after which :meth:`ceiling` holds (GST for ``gst``, else 0)."""
        return self.as_dict().get("gst", 0.0) if self.kind == "gst" else 0.0


# ----------------------------------------------------------------------
# Crash injections
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CrashSpec:
    """One crash: either at an exact time or on a state trigger.

    * ``at`` — crash at that absolute instant (the classic
      :class:`~repro.sim.crash.CrashPlan` path; the only form the live
      substrate supports).
    * ``when`` ∈ :data:`TRIGGER_STATES` — crash the victim at the first
      matching state change at or after ``after`` (the crash-timing
      search biased toward fork-holding / doorway-transit states).  If
      the trigger never fires, ``deadline`` crashes the victim anyway,
      so the last crash time is always bounded and judgement windows
      stay computable.
    """

    pid: int
    at: Optional[float] = None
    when: Optional[str] = None
    after: float = 0.0
    deadline: Optional[float] = None

    def __post_init__(self) -> None:
        if (self.at is None) == (self.when is None):
            raise ConfigurationError(
                f"crash of {self.pid}: give exactly one of at= or when=, "
                f"got at={self.at!r} when={self.when!r}"
            )
        if self.when is not None:
            if self.when not in TRIGGER_STATES:
                raise ConfigurationError(
                    f"unknown crash trigger {self.when!r}; known: {TRIGGER_STATES}"
                )
            if self.deadline is None:
                raise ConfigurationError(
                    f"triggered crash of {self.pid} needs a deadline"
                )

    def latest_time(self) -> float:
        """Upper bound on when this crash can happen."""
        return self.at if self.at is not None else float(self.deadline)

    def earliest_time(self) -> float:
        """Lower bound on when this crash can happen.

        A trigger can fire as soon as it arms (``after``), long before
        the detector oracle — scripted from the ``deadline`` — suspects
        the victim; quiescence grace must span that whole gap.
        """
        return self.at if self.at is not None else self.after


# ----------------------------------------------------------------------
# Membership churn
# ----------------------------------------------------------------------
#: Verbs a :class:`MembershipSpec` can speak — the exact vocabulary of
#: :class:`repro.graphs.membership.MembershipDelta`.
MEMBERSHIP_VERBS = ("join", "leave", "rejoin", "add_edge", "remove_edge")


@dataclass(frozen=True)
class MembershipSpec:
    """One membership delta, in plan vocabulary.

    ``join`` introduces ``pid`` with latent conflict edges toward each
    entry of ``edges``; ``leave`` deactivates it (forks reclaimed via
    the same ◇P₁ substitution path as a crash); ``rejoin`` brings a
    departed pid back with hygienic per-edge state; ``add_edge`` /
    ``remove_edge`` rewire ``pid``–``peer``.  Sequencing validity (no
    rejoin of a never-left pid, …) is checked when the engine replays
    the specs into a :class:`~repro.graphs.membership.MembershipLog`.
    """

    time: float
    verb: str
    pid: int
    edges: Tuple[int, ...] = ()
    peer: Optional[int] = None

    def __post_init__(self) -> None:
        if self.verb not in MEMBERSHIP_VERBS:
            raise ConfigurationError(
                f"unknown membership verb {self.verb!r}; known: {MEMBERSHIP_VERBS}"
            )
        if self.time < 0:
            raise ConfigurationError(
                f"membership {self.verb} of {self.pid} before t=0: {self.time!r}"
            )
        if self.verb == "join" and not self.edges:
            raise ConfigurationError(f"join of {self.pid} needs at least one edge")
        if self.verb in ("add_edge", "remove_edge") and self.peer is None:
            raise ConfigurationError(f"{self.verb} of {self.pid} needs a peer")

    def to_delta(self):
        """The :class:`~repro.graphs.membership.MembershipDelta` this spells."""
        from repro.graphs.membership import MembershipDelta

        return MembershipDelta(
            time=self.time,
            verb=self.verb,
            pid=self.pid,
            edges=tuple(self.edges),
            peer=self.peer,
        )

    def describe(self) -> str:
        if self.verb == "join":
            return f"join {self.pid}~{list(self.edges)}@{self.time:g}"
        if self.peer is not None:
            return f"{self.verb} {self.pid}-{self.peer}@{self.time:g}"
        return f"{self.verb} {self.pid}@{self.time:g}"


# ----------------------------------------------------------------------
# ◇P₁ suspicion flapping
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FlapSpec:
    """Adversarial ◇P₁ behaviour before convergence.

    ``mistakes_per_edge`` false-suspicion episodes (mean length
    ``mean_mistake_duration``) are scattered over ``[0, convergence)``;
    from ``convergence`` on the detector satisfies eventual strong
    accuracy, and real crashes are detected within ``detection_delay``.
    ``mistakes_per_edge=0`` with ``convergence=0`` is the benign oracle.
    """

    convergence: float = 0.0
    detection_delay: float = 1.0
    mistakes_per_edge: float = 0.0
    mean_mistake_duration: float = 2.0


# ----------------------------------------------------------------------
# Client storms (lease-service path)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ClientStormSpec:
    """Bursts of lease-client sessions driven into a ``LockCore``.

    ``sessions == 0`` disables the storm.  Otherwise sessions arrive in
    bursts of ``burst`` every ``interval`` starting at ``start``; each
    acquires a random local resource with TTL ``ttl`` (plan time units)
    and then either **abandons** with probability ``abandon`` — the
    killed-connection client, whose lease only the TTL reclaims — or
    releases early after ``hold``.  The engine judges the service path
    on top of the standard suite: a lease left unbacked by an eating
    diner fails the synthetic ``lease-backing`` property.
    """

    sessions: int = 0
    burst: int = 8
    interval: float = 2.0
    start: float = 1.0
    ttl: float = 1.0
    hold: float = 0.4
    abandon: float = 0.2

    def __post_init__(self) -> None:
        if self.sessions < 0:
            raise ConfigurationError(f"storm sessions must be >= 0, got {self.sessions}")
        if not self.sessions:
            return
        if self.burst < 1:
            raise ConfigurationError(f"storm burst must be >= 1, got {self.burst}")
        if self.interval <= 0 or self.ttl <= 0:
            raise ConfigurationError(
                f"storm interval/ttl must be positive, got "
                f"{self.interval!r}/{self.ttl!r}"
            )
        if self.hold < 0 or self.start < 0:
            raise ConfigurationError(
                f"storm hold/start must be >= 0, got {self.hold!r}/{self.start!r}"
            )
        if not 0.0 <= self.abandon <= 1.0:
            raise ConfigurationError(
                f"storm abandon must be a probability, got {self.abandon!r}"
            )

    @property
    def active(self) -> bool:
        return self.sessions > 0

    def last_burst_time(self) -> float:
        """When the final burst fires (0.0 for an inactive storm)."""
        if not self.sessions:
            return 0.0
        bursts = -(-self.sessions // self.burst)  # ceil division
        return self.start + (bursts - 1) * self.interval


# ----------------------------------------------------------------------
# Workloads
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WorkloadSpec:
    """Hunger workload: ``always`` (max contention), ``burst``
    (hungry-session bursts separated by idle gaps), ``poisson``, or
    ``lease`` (demand-driven: diners hunger only when a client-storm
    session queues, and eat for the granted lease's TTL)."""

    kind: str = "always"
    params: Tuple[Tuple[str, float], ...] = ()

    @staticmethod
    def of(kind: str, **params: float) -> "WorkloadSpec":
        return WorkloadSpec(kind=kind, params=tuple(sorted(params.items())))

    def as_dict(self) -> Dict[str, float]:
        return dict(self.params)

    def build(self, *, time_scale: float = 1.0) -> Workload:
        p = {k: v * time_scale for k, v in self.params}
        if self.kind == "always":
            return AlwaysHungry(
                eat_time=p.get("eat_time", 1.0 * time_scale),
                think_time=p.get("think_time", 0.01 * time_scale),
            )
        if self.kind == "burst":
            return BurstyWorkload(
                burst=int(self.as_dict().get("burst", 4)),
                burst_think=p.get("burst_think", 0.01 * time_scale),
                idle_time=p.get("idle_time", 8.0 * time_scale),
                eat_time=p.get("eat_time", 1.0 * time_scale),
            )
        if self.kind == "poisson":
            rate = self.as_dict().get("hunger_rate", 0.5)
            return PoissonWorkload(
                hunger_rate=rate / time_scale if time_scale else rate,
                eat_time_range=(
                    p.get("eat_low", 0.5 * time_scale),
                    p.get("eat_high", 1.5 * time_scale),
                ),
            )
        if self.kind == "lease":
            # Deferred: keeps the plan vocabulary import-light; only
            # storm plans pay for the locks subsystem.
            from repro.locks.service import LeaseWorkload

            return LeaseWorkload(idle_eat_time=p.get("idle_eat_time", 0.05 * time_scale))
        raise ConfigurationError(f"unknown workload kind {self.kind!r}")

    def eat_ceiling(self) -> float:
        """Longest possible eating session (shapes judgement windows).

        For ``lease`` this is only the idle fallback; the engine maxes it
        with the storm's TTL, which is what leased meals actually last.
        """
        p = self.as_dict()
        if self.kind == "poisson":
            return p.get("eat_high", 1.5)
        if self.kind == "lease":
            return p.get("idle_eat_time", 0.05)
        return p.get("eat_time", 1.0)


# ----------------------------------------------------------------------
# The plan
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FaultPlan:
    """One complete adversarial run, declaratively.

    ``mutant`` optionally names an entry of the
    :mod:`repro.faults.mutants` registry to run instead of the pristine
    :class:`~repro.core.diner.DinerActor` — the mutation-testing harness
    sets it, ordinary fuzzing leaves it ``None``.
    """

    topology: str = "ring"
    n: int = 5
    seed: int = 0
    horizon: float = 120.0
    latency: LatencySpec = field(default_factory=LatencySpec)
    crashes: Tuple[CrashSpec, ...] = ()
    flaps: FlapSpec = field(default_factory=FlapSpec)
    workload: WorkloadSpec = field(default_factory=WorkloadSpec)
    mutant: Optional[str] = None
    #: Lease-service client storm (inactive by default); see
    #: :class:`ClientStormSpec`.
    storm: ClientStormSpec = field(default_factory=ClientStormSpec)
    #: Membership churn deltas (empty = static topology).  Joined pids
    #: may exceed ``n - 1``; leaves/rejoins may target initial or joined
    #: pids alike.
    membership: Tuple[MembershipSpec, ...] = ()

    def __post_init__(self) -> None:
        if self.n < 2:
            raise ConfigurationError(f"need at least 2 diners, got {self.n}")
        if self.horizon <= 0:
            raise ConfigurationError(f"horizon must be positive, got {self.horizon}")
        seen = set()
        for crash in self.crashes:
            if crash.pid in seen:
                raise ConfigurationError(f"process {crash.pid} crashes twice")
            seen.add(crash.pid)
            if not 0 <= crash.pid < self.n:
                raise ConfigurationError(
                    f"crash plan mentions pid {crash.pid} outside 0..{self.n - 1}"
                )
        # Crash-plan victims and membership verbs must not collide: a
        # crashed process cannot later leave or rejoin (its actor is
        # dead), and churning a crash victim confuses windows.
        for spec in self.membership:
            if spec.pid in seen or (spec.peer is not None and spec.peer in seen):
                raise ConfigurationError(
                    f"membership {spec.verb} touches crash victim "
                    f"{spec.pid if spec.pid in seen else spec.peer}"
                )

    # -- derived ---------------------------------------------------------
    def last_possible_crash(self) -> float:
        """Latest instant any crash of this plan can occur (0.0 if none)."""
        return max((c.latest_time() for c in self.crashes), default=0.0)

    def faulty_pids(self) -> Tuple[int, ...]:
        return tuple(sorted(c.pid for c in self.crashes))

    def eat_ceiling(self) -> float:
        """Longest possible meal, storm TTLs included (window derivation)."""
        ceiling = self.workload.eat_ceiling()
        if self.storm.active:
            ceiling = max(ceiling, self.storm.ttl)
        return ceiling

    def last_membership_time(self) -> float:
        """Latest membership delta instant (0.0 for a static plan)."""
        return max((m.time for m in self.membership), default=0.0)

    def membership_log(self):
        """The validated :class:`~repro.graphs.membership.MembershipLog`.

        Returns ``None`` for a static plan, so callers can pass the
        result straight to ``DiningTable(membership=...)`` without
        flipping the table into (zero-cost but non-identical) dynamic
        assembly.
        """
        if not self.membership:
            return None
        from repro.graphs.membership import MembershipLog

        return MembershipLog(m.to_delta() for m in self.membership)

    def describe(self) -> str:
        crash_bits = ", ".join(
            f"{c.pid}@{c.at:g}" if c.at is not None else f"{c.pid}:{c.when}≥{c.after:g}"
            for c in self.crashes
        )
        mutant = f", mutant={self.mutant}" if self.mutant else ""
        storm = ""
        if self.storm.active:
            storm = (
                f" storm={self.storm.sessions}x{self.storm.burst}"
                f"@{self.storm.interval:g} ttl={self.storm.ttl:g}"
            )
        churn = ""
        if self.membership:
            churn = f" churn=[{'; '.join(m.describe() for m in self.membership)}]"
        return (
            f"{self.topology}-{self.n} seed={self.seed} horizon={self.horizon:g} "
            f"latency={self.latency.kind} workload={self.workload.kind} "
            f"flaps={self.flaps.mistakes_per_edge:g}/edge conv={self.flaps.convergence:g} "
            f"crashes=[{crash_bits}]{mutant}{storm}{churn}"
        )

    # -- serialization ---------------------------------------------------
    def to_json(self) -> dict:
        data = asdict(self)
        data["latency"] = {"kind": self.latency.kind, "params": self.latency.as_dict()}
        data["workload"] = {"kind": self.workload.kind, "params": self.workload.as_dict()}
        data["crashes"] = [asdict(c) for c in self.crashes]
        data["membership"] = [asdict(m) for m in self.membership]
        return data

    @classmethod
    def from_json(cls, data: Mapping) -> "FaultPlan":
        latency = data.get("latency", {})
        workload = data.get("workload", {})
        flaps = data.get("flaps", {})
        storm = data.get("storm") or {}
        return cls(
            topology=data.get("topology", "ring"),
            n=int(data.get("n", 5)),
            seed=int(data.get("seed", 0)),
            horizon=float(data.get("horizon", 120.0)),
            latency=LatencySpec.of(latency.get("kind", "fixed"), **latency.get("params", {})),
            crashes=tuple(
                CrashSpec(
                    pid=int(c["pid"]),
                    at=c.get("at"),
                    when=c.get("when"),
                    after=float(c.get("after", 0.0)),
                    deadline=c.get("deadline"),
                )
                for c in data.get("crashes", ())
            ),
            flaps=FlapSpec(
                convergence=float(flaps.get("convergence", 0.0)),
                detection_delay=float(flaps.get("detection_delay", 1.0)),
                mistakes_per_edge=float(flaps.get("mistakes_per_edge", 0.0)),
                mean_mistake_duration=float(flaps.get("mean_mistake_duration", 2.0)),
            ),
            workload=WorkloadSpec.of(
                workload.get("kind", "always"), **workload.get("params", {})
            ),
            mutant=data.get("mutant"),
            membership=tuple(
                MembershipSpec(
                    time=float(m["time"]),
                    verb=m["verb"],
                    pid=int(m["pid"]),
                    edges=tuple(int(e) for e in (m.get("edges") or ())),
                    peer=int(m["peer"]) if m.get("peer") is not None else None,
                )
                for m in (data.get("membership") or ())
            ),
            storm=ClientStormSpec(
                sessions=int(storm.get("sessions", 0)),
                burst=int(storm.get("burst", 8)),
                interval=float(storm.get("interval", 2.0)),
                start=float(storm.get("start", 1.0)),
                ttl=float(storm.get("ttl", 1.0)),
                hold=float(storm.get("hold", 0.4)),
                abandon=float(storm.get("abandon", 0.2)),
            ),
        )

    def dump(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as stream:
            json.dump(self.to_json(), stream, indent=2, sort_keys=True)
            stream.write("\n")

    @classmethod
    def load(cls, path: str) -> "FaultPlan":
        with open(path, "r", encoding="utf-8") as stream:
            return cls.from_json(json.load(stream))

    def with_(self, **changes) -> "FaultPlan":
        """A modified copy (the shrinker's workhorse)."""
        return replace(self, **changes)
