"""The seeded-bug registry for mutation testing.

Each :class:`Mutant` is a deliberately broken
:class:`~repro.core.diner.DinerActor` subclass — a small, realistic
implementation slip (a dropped reset, a skipped guard, a forgotten
flag) — together with the paper properties its detection is expected to
hinge on.  The mutation-testing harness (:mod:`repro.faults.campaign`)
runs fuzz campaigns against every mutant and reports the kill rate,
which is what makes a clean campaign quantitatively meaningful: "0
violations over N adversarial runs, with a suite sharp enough to kill
k/m seeded bugs".

Every mutant is usable three ways:

* :meth:`Mutant.factory` — a ``diner_factory`` for
  :class:`~repro.core.table.DiningTable` / the fuzz engine;
* :meth:`Mutant.mutator` — an instance-patching hook for
  :func:`repro.verify.explore.explore_dining`'s ``diner_mutator``
  (small-scope exhaustive confirmation of a kill);
* by name, from a :class:`~repro.faults.plan.FaultPlan`'s ``mutant``
  field.
"""

from __future__ import annotations

from dataclasses import dataclass
from types import MethodType
from typing import Callable, Dict, List, Tuple

from repro.checks.dynamic import EDGE_EXCLUSION
from repro.checks.properties import (
    CHANNEL_BOUND,
    DINER_LOCAL,
    FORK_UNIQUENESS,
    OVERTAKING,
    PENDING_PING,
    PROGRESS,
    QUIESCENCE,
    WX_SAFETY,
)
from repro.core.diner import DinerActor
from repro.core.messages import Ack, Fork, ForkRequest
from repro.core.state import DinerState
from repro.errors import ConfigurationError, ForkDuplicationError


# ----------------------------------------------------------------------
# The broken diners
# ----------------------------------------------------------------------
class GreedyEaterDiner(DinerActor):
    """Action 9 without its guard: eats the moment it is inside."""

    def _try_eat(self) -> bool:
        self._set_state(DinerState.EATING)
        self.meals_eaten += 1
        duration = self.workload.eat_duration(self.pid, self.streams)
        self._exit_timer = self.set_timer(duration, self._exit, label=f"exit@{self.pid}")
        if self.on_eat is not None:
            self.on_eat(self)
        return True


class EagerForkGrantDiner(DinerActor):
    """Action 7 without its doorway/priority clause: always grants,
    even mid-meal — the fork leaves while its owner is still eating."""

    def _on_fork_request(self, src, requester_color) -> None:
        link = self.links[src]
        if not link.fork:
            raise ForkDuplicationError(
                f"t={self.now}: fork request from {src} reached {self.pid}, "
                "which does not hold the fork (Lemma 1.1 violated)"
            )
        link.token = True
        self.send(src, Fork(self.pid))
        link.fork = False
        sink = self.on_dirty_fork
        if sink is not None:
            sink((self.pid, src) if self.pid <= src else (src, self.pid))


class DroppedDoorwayResetDiner(DinerActor):
    """Action 5 without its bookkeeping: enters the doorway but forgets
    to clear the ack/replied flags (the per-session scoping Lemma 2.1
    relies on)."""

    def _try_enter_doorway(self) -> bool:
        for neighbor, link in self._links_in_order():
            if not link.ack and not self.module.suspects(neighbor):
                return False
        self.inside = True
        self.trace.doorway_change(self.now, self.pid, True)
        return True


class EagerAckDiner(DinerActor):
    """Action 3 without its ``inside`` defer: acks are granted while the
    doorway is occupied, so a neighbor can start a fresh hungry session
    before the occupant's current one completes — the wait the
    overtaking bound rests on."""

    def _on_ping(self, src) -> None:
        link = self.links[src]
        if link.replied:
            link.deferred = True
        else:
            self.send(src, Ack(self.pid))
            link.replied = self.is_hungry
        sink = self.on_dirty_link
        if sink is not None:
            sink((self.pid, src))


class NoSuspicionSubstitutionDiner(DinerActor):
    """Actions 5 and 9 without the ◇P₁ escape hatch: waits for real acks
    and forks from every neighbor, including crashed ones."""

    def _try_enter_doorway(self) -> bool:
        for neighbor, link in self._links_in_order():
            if not link.ack:
                return False
        self.inside = True
        self.trace.doorway_change(self.now, self.pid, True)
        for _, link in self._links_in_order():
            link.ack = False
            link.replied = False
        return True

    def _try_eat(self) -> bool:
        for neighbor, link in self._links_in_order():
            if not link.fork:
                return False
        self._set_state(DinerState.EATING)
        self.meals_eaten += 1
        duration = self.workload.eat_duration(self.pid, self.streams)
        self._exit_timer = self.set_timer(duration, self._exit, label=f"exit@{self.pid}")
        if self.on_eat is not None:
            self.on_eat(self)
        return True


class ForgetfulReleaseDiner(DinerActor):
    """Action 10 without the deferred-fork release: exits and keeps every
    fork a neighbor asked for while it was eating."""

    def _exit(self) -> None:
        if not self.is_eating:
            return
        self.inside = False
        self.trace.doorway_change(self.now, self.pid, False)
        self._set_state(DinerState.THINKING)
        sink = self.on_dirty_link
        for neighbor, link in self._links_in_order():
            if link.deferred:
                self.send(neighbor, Ack(self.pid))
                link.deferred = False
                if sink is not None:
                    sink((self.pid, neighbor))
        self._schedule_next_hunger()


class StaleAckAcceptDiner(DinerActor):
    """Action 4 without its phase condition: an ack counts whenever it
    arrives — inside the doorway, mid-meal, even while thinking."""

    def _on_ack(self, src) -> None:
        link = self.links[src]
        link.ack = True
        link.pinged = False
        sink = self.on_dirty_link
        if sink is not None:
            sink((self.pid, src))


class TokenReuseDiner(DinerActor):
    """Action 6 without token consumption: re-requests a missing fork on
    every re-evaluation, spending the same token again and again (the
    Section 7 channel bound counts one outstanding request per token).

    The fixpoint loop of :meth:`DinerActor.reevaluate` would spin forever
    on a guard that never disables, so this mutant re-evaluates in single
    passes — each message arrival or detector flip triggers one more
    spurious request instead of infinitely many.
    """

    def reevaluate(self) -> None:
        if self.crashed:
            return
        if self.is_hungry and not self.inside:
            self._request_missing_acks()
            self._try_enter_doorway()
        if self.is_hungry and self.inside:
            self._request_missing_forks()
            self._try_eat()

    def _request_missing_forks(self) -> bool:
        fired = False
        for neighbor, link in self._links_in_order():
            if link.token and not link.fork:
                self.send(neighbor, ForkRequest(self.pid, self.color))
                fired = True
        return fired


class UnreclaimedLeaveDiner(DinerActor):
    """Membership hook slip: a rejoin never rebuilds the shared edge.

    ``neighbor_left`` still substitutes correctly, but the matching
    ``neighbor_rejoined`` bookkeeping is forgotten: the survivor keeps
    treating the returned neighbor as departed — eating without its
    fork — while the fresh incarnation holds a hygienically initialised
    fork of its own.  Both endpoints of a live conflict edge can then
    eat simultaneously, which is exactly the failure the edge-scoped
    exclusion checker exists to catch (with an epoch-stamped witness).
    """

    def neighbor_rejoined(self, neighbor) -> None:
        return


class SessionPingResetDiner(DinerActor):
    """Action 1 with a spurious reset of the ``pinged`` latch: every new
    hungry session pings *all* neighbors again — including crashed ones,
    forever, so traffic toward a crashed neighbor never quiesces."""

    def _become_hungry(self) -> None:
        if not self.is_thinking:
            return
        for _, link in self._links_in_order():
            link.pinged = False
        self._set_state(DinerState.HUNGRY)
        self.hungry_sessions_started += 1


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Mutant:
    """One registered seeded bug."""

    name: str
    description: str
    cls: type
    expected: Tuple[str, ...]
    #: Whether killing this mutant requires a crash in the plan (the bug
    #: only bites on the post-crash code path).
    needs_crash: bool = False
    #: Whether killing this mutant requires membership churn in the plan
    #: (the bug lives in the join/leave/rejoin path).
    needs_churn: bool = False

    def factory(self) -> Callable[..., DinerActor]:
        """A ``diner_factory`` building this mutant for every pid."""

        def make(pid, *args, **kwargs) -> DinerActor:
            return self.cls(pid, *args, **kwargs)

        return make

    def mutator(self) -> Callable[[DinerActor], None]:
        """An instance patcher rebinding the overridden methods — the
        shape :func:`repro.verify.explore.explore_dining` accepts as
        ``diner_mutator``."""
        overrides = {
            name: attr
            for name, attr in vars(self.cls).items()
            if callable(attr) and not name.startswith("__")
        }

        def patch(diner: DinerActor) -> None:
            for name, func in overrides.items():
                setattr(diner, name, MethodType(func, diner))

        return patch


_REGISTRY: Dict[str, Mutant] = {}


def _register(mutant: Mutant) -> None:
    _REGISTRY[mutant.name] = mutant


_register(Mutant(
    name="greedy-eater",
    description="Action 9 guard gone: eats inside the doorway without a single fork",
    cls=GreedyEaterDiner,
    expected=(WX_SAFETY,),
))
_register(Mutant(
    name="eager-fork-grant",
    description="Action 7 grants unconditionally, even while eating",
    cls=EagerForkGrantDiner,
    expected=(WX_SAFETY,),
))
_register(Mutant(
    name="dropped-doorway-reset",
    description="Action 5 forgets to clear ack/replied on doorway entry",
    cls=DroppedDoorwayResetDiner,
    expected=(DINER_LOCAL, OVERTAKING, WX_SAFETY),
))
_register(Mutant(
    name="eager-ack",
    description="Action 3 drops the inside defer: acks flow while the doorway is occupied",
    cls=EagerAckDiner,
    expected=(DINER_LOCAL, OVERTAKING, PROGRESS),
))
_register(Mutant(
    name="no-suspicion-substitution",
    description="Actions 5/9 ignore suspicion: waits on crashed neighbors forever",
    cls=NoSuspicionSubstitutionDiner,
    expected=(PROGRESS,),
    needs_crash=True,
))
_register(Mutant(
    name="forgetful-release",
    description="Action 10 keeps deferred forks on exit",
    cls=ForgetfulReleaseDiner,
    expected=(PROGRESS, OVERTAKING),
))
_register(Mutant(
    name="stale-ack-accept",
    description="Action 4 counts acks in any phase",
    cls=StaleAckAcceptDiner,
    expected=(DINER_LOCAL, OVERTAKING),
))
_register(Mutant(
    name="token-reuse",
    description="Action 6 re-spends tokens: duplicate fork requests in flight",
    cls=TokenReuseDiner,
    expected=(FORK_UNIQUENESS, CHANNEL_BOUND),
))
_register(Mutant(
    name="unreclaimed-leave",
    description="neighbor_rejoined dropped: survivors substitute for a returned neighbor forever",
    cls=UnreclaimedLeaveDiner,
    # The unreclaimed link either lets both endpoints eat at once
    # (edge-scoped exclusion) or duplicates the fork the survivor
    # substituted while the fresh incarnation minted its own.
    expected=(EDGE_EXCLUSION, FORK_UNIQUENESS),
    needs_churn=True,
))
_register(Mutant(
    name="session-ping-reset",
    description="Action 1 clears the pinged latch: re-pings crashed neighbors every session",
    cls=SessionPingResetDiner,
    expected=(PENDING_PING, QUIESCENCE),
    needs_crash=True,
))


def mutant_names() -> List[str]:
    """Registry names, in registration order."""
    return list(_REGISTRY)


def all_mutants() -> List[Mutant]:
    return list(_REGISTRY.values())


def get_mutant(name: str) -> Mutant:
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(_REGISTRY)
        raise ConfigurationError(f"unknown mutant {name!r}; known: {known}") from None
