"""The ``fuzz_*`` scenario family: campaigns as registered scenarios.

Registering the fuzz surfaces with :mod:`repro.scenarios` buys them the
Runner's seed fan-out, process-pool dispatch, and the ``.repro_cache/``
result cache for free — ``repro experiments --only fuzz --seeds 0 1 2
--jobs 4`` replicates a whole campaign sweep, cached per seed like any
other experiment.

Three scenarios:

* ``fuzz_clean`` — the empirical soundness half: sampled adversarial
  plans against the pristine algorithm must produce zero violations.
* ``fuzz_mutation`` — the sensitivity half: the seeded-bug registry,
  one kill-campaign per mutant, one row per mutant.
* ``fuzz_differential`` — the substrate-agreement half: the same plans
  judged (informationally) on kernel and live host must agree on every
  per-property status.
"""

from __future__ import annotations

from typing import Dict, List

from repro.faults.campaign import CampaignSpec, run_campaign, run_mutation_harness
from repro.faults.engine import run_plan_kernel, run_plan_live
from repro.faults.sampler import ARCHETYPES, CHURN_ARCHETYPES, sample_plan
from repro.scenarios import ScenarioSpec, register_scenario

CLEAN_CLAIM = (
    "Theorems 1-3, adversarially: sampled latency/crash/flap/burst schedules "
    "against the pristine algorithm yield zero violations."
)

MUTATION_CLAIM = (
    "The property suite has teeth: every seeded Algorithm 1 bug is killed "
    "by a sampled adversarial schedule."
)

DIFFERENTIAL_CLAIM = (
    "Substrate agnosticism: the same plan judged on the kernel and on the "
    "live loopback host yields identical per-property statuses."
)

CHURN_CLAIM = (
    "Dynamic membership: sampled join/leave/rejoin/edge-flip schedules "
    "against the pristine algorithm satisfy the epoch-aware suite — "
    "joiners eat, leavers' forks are reclaimed, and no edge-scoped "
    "exclusion violation outlives the settle window."
)


@register_scenario(
    "fuzz_clean",
    title="Fuzz — clean campaign over sampled adversaries",
    claim=CLEAN_CLAIM,
    columns=("topology", "n", "runs", "failing_runs", "violations", "ok"),
    group_by=("topology",),
    spec=ScenarioSpec(
        topology=("ring",),
        detector="scripted",
        crashes="sampled (timed + state-triggered)",
        latency="sampled (uniform/storm/gst)",
        workload="sampled (always/burst)",
        horizon=0.0,
        seeds=(0,),
        params={"topology": "ring", "n": 5, "runs": 25},
    ),
    experiment="fuzz",
)
def run_fuzz_clean(
    *,
    topology: str = "ring",
    n: int = 5,
    runs: int = 25,
    seed: int = 0,
) -> List[Dict[str, object]]:
    result = run_campaign(CampaignSpec(topology=topology, n=n, seed=seed, runs=runs))
    return [
        {
            "topology": topology,
            "n": n,
            "runs": result.runs_executed,
            "failing_runs": len(result.failures),
            "violations": result.violation_count(),
            "ok": result.ok,
        }
    ]


@register_scenario(
    "fuzz_mutation",
    title="Fuzz — mutation score of the property suite",
    claim=MUTATION_CLAIM,
    columns=("mutant", "killed", "runs", "killing_index", "properties", "matched"),
    group_by=(),
    spec=ScenarioSpec(
        topology=("ring",),
        detector="scripted",
        crashes="sampled (timed + state-triggered)",
        latency="sampled (uniform/storm/gst)",
        workload="sampled (always/burst)",
        horizon=0.0,
        seeds=(0,),
        params={"topology": "ring", "n": 5, "runs": 10},
    ),
    experiment="fuzz",
)
def run_fuzz_mutation(
    *,
    topology: str = "ring",
    n: int = 5,
    runs: int = 10,
    seed: int = 0,
) -> List[Dict[str, object]]:
    report = run_mutation_harness(
        base=CampaignSpec(topology=topology, n=n, seed=seed, runs=runs)
    )
    return [
        {
            "mutant": o.name,
            "killed": o.killed,
            "runs": o.runs,
            "killing_index": o.killing_index,
            "properties": ", ".join(o.failed_properties),
            "matched": o.matched_expected,
        }
        for o in report.outcomes
    ]


@register_scenario(
    "fuzz_differential",
    title="Fuzz — kernel vs live substrate agreement",
    claim=DIFFERENTIAL_CLAIM,
    columns=("index", "plan", "kernel_ok", "live_ok", "statuses_match"),
    group_by=(),
    spec=ScenarioSpec(
        topology=("ring",),
        detector="heartbeat (live) / scripted (kernel)",
        crashes="sampled (timed + state-triggered)",
        latency="sampled, replayed through inject_latency",
        workload="sampled (always/burst)",
        horizon=0.0,
        seeds=(0,),
        params={"topology": "ring", "n": 4, "runs": 3, "time_scale": 0.01},
    ),
    experiment="fuzz",
)
def run_fuzz_differential(
    *,
    topology: str = "ring",
    n: int = 4,
    runs: int = 3,
    time_scale: float = 0.01,
    seed: int = 0,
) -> List[Dict[str, object]]:
    rows: List[Dict[str, object]] = []
    for index in range(runs):
        plan = sample_plan(
            topology=topology, n=n, seed=seed, index=index, horizon_floor=40.0
        )
        kernel = run_plan_kernel(plan, judge=False)
        live = run_plan_live(plan, judge=False, time_scale=time_scale)
        rows.append(
            {
                "index": index,
                "plan": plan.describe(),
                "kernel_ok": kernel.ok,
                "live_ok": live.ok,
                "statuses_match": kernel.verdict.statuses() == live.verdict.statuses(),
            }
        )
    return rows


@register_scenario(
    "churn_sweep",
    title="Churn — sampled membership schedules under the dynamic suite",
    claim=CHURN_CLAIM,
    columns=(
        "topology",
        "archetype",
        "index",
        "n",
        "deltas",
        "joiners",
        "joiner_meals",
        "resident_meals",
        "failing",
        "ok",
    ),
    group_by=("topology", "archetype"),
    spec=ScenarioSpec(
        topology=("ring", "grid"),
        detector="scripted",
        crashes="none (churn only)",
        latency="sampled (uniform)",
        workload="sampled (always)",
        horizon=0.0,
        seeds=(0,),
        params={"topologies": ("ring", "grid"), "n": 6, "cycles": 2},
    ),
    experiment="churn",
)
def run_churn_sweep(
    *,
    topologies: tuple = ("ring", "grid"),
    n: int = 6,
    cycles: int = 2,
    seed: int = 0,
) -> List[Dict[str, object]]:
    """One row per (topology, churn archetype, cycle) kernel run.

    The sweep walks the sampler's churn indices directly — the same
    plans a fuzz campaign would meet — and reports where the meals went:
    joiners must eat after their join, and residents must keep eating
    across every delta (the leaver's forks were reclaimed, or progress
    would fail and flip ``ok``).
    """
    rows: List[Dict[str, object]] = []
    for topology in topologies:
        for archetype in CHURN_ARCHETYPES:
            base = ARCHETYPES.index(archetype)
            for cycle in range(cycles):
                index = base + cycle * len(ARCHETYPES)
                plan = sample_plan(topology=topology, n=n, seed=seed, index=index)
                result = run_plan_kernel(plan)
                joiners = {
                    spec.pid for spec in plan.membership if spec.verb == "join"
                }
                rows.append(
                    {
                        "topology": topology,
                        "archetype": archetype,
                        "index": index,
                        "n": plan.n,
                        "deltas": len(plan.membership),
                        "joiners": len(joiners),
                        "joiner_meals": sum(
                            count
                            for pid, count in result.meals.items()
                            if pid in joiners
                        ),
                        "resident_meals": sum(
                            count
                            for pid, count in result.meals.items()
                            if pid not in joiners
                        ),
                        "failing": ", ".join(result.failed),
                        "ok": result.ok,
                    }
                )
    return rows
