"""Budgeted fuzz campaigns and the mutation-testing harness.

A campaign is a deterministic walk over
:func:`repro.faults.sampler.sample_plan` indices, bounded by a run count
and optionally a wall-clock budget.  Against the pristine algorithm the
campaign is the empirical side of Theorems 1–3: every sampled adversary
must produce a verdict with zero violations.  Against a
:mod:`repro.faults.mutants` registry entry it is mutation testing: a
mutant is *killed* by the first sampled plan whose verdict fails, and
the fraction of killed mutants is the campaign's mutation score — a
direct measure of how much bug-finding power the property suite plus
the adversary schedule actually has.

Memory discipline: passing runs drop their trace and wire log
immediately (only the verdict and counters stay), so a 200-run campaign
holds at most one run's worth of artifacts — the failing one the
shrinker needs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.errors import ConfigurationError
from repro.faults.engine import FaultRunResult, run_plan
from repro.faults.mutants import Mutant, all_mutants, get_mutant
from repro.faults.plan import FaultPlan
from repro.faults.sampler import ARCHETYPES, sample_plan

#: When a mutant only bites on the post-crash path (``needs_crash``),
#: crash-free sampled indices are skipped without counting against the
#: run budget — but never more than this many indices per counted run,
#: so a pathological sampler cannot spin the harness forever.
MAX_SKIP_FACTOR = 4


# ----------------------------------------------------------------------
# Campaign spec / result
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CampaignSpec:
    """Everything that determines a campaign, hashably.

    ``budget_seconds`` is a wall-clock lid checked *between* runs: the
    campaign never starts a run past the budget but always finishes the
    one it is in.  ``runs`` is the index ceiling either way, so results
    are reproducible by (topology, n, seed) alone — the budget can only
    truncate the walk, never reorder it.
    """

    topology: str = "ring"
    n: int = 5
    seed: int = 0
    runs: int = 20
    budget_seconds: Optional[float] = None
    substrate: str = "kernel"
    mutant: Optional[str] = None
    judge: bool = True
    stop_on_failure: bool = False
    #: Restrict the walk to these sampler archetypes (None = all ten).
    #: Run ``index`` k maps onto the k-th sampler index whose archetype
    #: is allowed, so a restricted campaign is still a pure function of
    #: (topology, n, seed, runs) — the restriction re-parameterizes the
    #: walk, it does not consume budget skipping foreign shapes.
    archetypes: Optional[Tuple[str, ...]] = None

    def __post_init__(self) -> None:
        if self.archetypes is not None:
            unknown = [a for a in self.archetypes if a not in ARCHETYPES]
            if unknown:
                raise ConfigurationError(
                    f"unknown archetype(s) {unknown}; known: {list(ARCHETYPES)}"
                )
            if not self.archetypes:
                raise ConfigurationError("archetype restriction is empty")

    def sampler_index(self, index: int) -> int:
        """The sampler index run ``index`` visits under the restriction."""
        if self.archetypes is None:
            return index
        allowed = [
            position
            for position, name in enumerate(ARCHETYPES)
            if name in self.archetypes
        ]
        cycle, offset = divmod(index, len(allowed))
        return cycle * len(ARCHETYPES) + allowed[offset]

    def plan(self, index: int) -> FaultPlan:
        """The ``index``-th plan of this campaign's walk."""
        return sample_plan(
            topology=self.topology,
            n=self.n,
            seed=self.seed,
            index=self.sampler_index(index),
            mutant=self.mutant,
        )

    def to_json(self) -> dict:
        return {
            "topology": self.topology,
            "n": self.n,
            "seed": self.seed,
            "runs": self.runs,
            "budget_seconds": self.budget_seconds,
            "substrate": self.substrate,
            "mutant": self.mutant,
            "judge": self.judge,
            "stop_on_failure": self.stop_on_failure,
            "archetypes": list(self.archetypes) if self.archetypes else None,
        }


@dataclass
class CampaignResult:
    """What a campaign produced: one :class:`FaultRunResult` per run."""

    spec: CampaignSpec
    results: List[FaultRunResult] = field(default_factory=list)
    elapsed: float = 0.0
    budget_exhausted: bool = False

    @property
    def runs_executed(self) -> int:
        return len(self.results)

    @property
    def failures(self) -> List[FaultRunResult]:
        return [r for r in self.results if r.failed]

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def first_failure(self) -> Optional[FaultRunResult]:
        failures = self.failures
        return failures[0] if failures else None

    def violation_count(self) -> int:
        return sum(len(r.verdict.all_violations()) for r in self.results)

    def fail_counts(self) -> Dict[str, int]:
        """How often each property failed across the campaign."""
        counts: Dict[str, int] = {}
        for result in self.failures:
            for prop in result.failed:
                counts[prop] = counts.get(prop, 0) + 1
        return dict(sorted(counts.items()))

    def describe(self) -> str:
        lines = [
            f"campaign {self.spec.topology}-{self.spec.n} seed={self.spec.seed} "
            f"substrate={self.spec.substrate}"
            + (f" mutant={self.spec.mutant}" if self.spec.mutant else "")
        ]
        lines.append(
            f"  runs: {self.runs_executed}/{self.spec.runs}"
            + (" (budget exhausted)" if self.budget_exhausted else "")
            + f", elapsed {self.elapsed:.1f}s"
        )
        if self.ok:
            lines.append("  violations: 0")
        else:
            lines.append(
                f"  violations: {self.violation_count()} across "
                f"{len(self.failures)} failing run(s)"
            )
            for prop, count in self.fail_counts().items():
                lines.append(f"    {prop}: {count} run(s)")
            first = self.first_failure
            if first is not None:
                index = self.results.index(first)
                lines.append(f"  first failure: run {index}: {first.plan.describe()}")
        return "\n".join(lines)

    def to_json(self) -> dict:
        return {
            "spec": self.spec.to_json(),
            "runs_executed": self.runs_executed,
            "budget_exhausted": self.budget_exhausted,
            "elapsed": self.elapsed,
            "ok": self.ok,
            "fail_counts": self.fail_counts(),
            "results": [r.to_json() for r in self.results],
        }


def run_campaign(spec: CampaignSpec) -> CampaignResult:
    """Walk ``spec``'s sampled plans until runs, budget, or a kill stops it."""
    if spec.runs < 1:
        raise ConfigurationError(f"campaign needs at least 1 run, got {spec.runs}")
    start = time.monotonic()
    out = CampaignResult(spec=spec)
    for index in range(spec.runs):
        if (
            spec.budget_seconds is not None
            and index > 0
            and time.monotonic() - start >= spec.budget_seconds
        ):
            out.budget_exhausted = True
            break
        result = run_plan(spec.plan(index), substrate=spec.substrate, judge=spec.judge)
        if result.ok:
            result.trace = None
            result.wire = []
        out.results.append(result)
        if result.failed and spec.stop_on_failure:
            break
    out.elapsed = time.monotonic() - start
    return out


# ----------------------------------------------------------------------
# Mutation testing
# ----------------------------------------------------------------------
@dataclass
class MutantOutcome:
    """One mutant's fate under the campaign."""

    name: str
    description: str
    expected: Tuple[str, ...]
    killed: bool
    runs: int
    elapsed: float
    failed_properties: Tuple[str, ...] = ()
    matched_expected: bool = False
    killing_index: Optional[int] = None
    killing_result: Optional[FaultRunResult] = None
    shrink: Optional[object] = None  # ShrinkResult, attached by the caller

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "description": self.description,
            "expected": list(self.expected),
            "killed": self.killed,
            "runs": self.runs,
            "elapsed": self.elapsed,
            "failed_properties": list(self.failed_properties),
            "matched_expected": self.matched_expected,
            "killing_index": self.killing_index,
            "killing_plan": (
                self.killing_result.plan.to_json()
                if self.killing_result is not None
                else None
            ),
        }


@dataclass
class MutationReport:
    """The harness result: per-mutant outcomes plus the mutation score."""

    base: CampaignSpec
    outcomes: List[MutantOutcome] = field(default_factory=list)
    elapsed: float = 0.0

    @property
    def total(self) -> int:
        return len(self.outcomes)

    @property
    def killed(self) -> int:
        return sum(1 for o in self.outcomes if o.killed)

    @property
    def survivors(self) -> List[str]:
        return [o.name for o in self.outcomes if not o.killed]

    @property
    def score(self) -> float:
        return self.killed / self.total if self.outcomes else 0.0

    def describe(self) -> str:
        width = max((len(o.name) for o in self.outcomes), default=4)
        lines = [
            f"mutation harness: {self.killed}/{self.total} killed "
            f"(score {self.score:.2f}), elapsed {self.elapsed:.1f}s"
        ]
        for o in self.outcomes:
            if o.killed:
                props = ", ".join(o.failed_properties)
                match = "" if o.matched_expected else "  [unexpected property]"
                lines.append(
                    f"  [KILLED  ] {o.name:<{width}}  run {o.killing_index} "
                    f"({o.runs} tried): {props}{match}"
                )
            else:
                lines.append(
                    f"  [SURVIVED] {o.name:<{width}}  {o.runs} run(s), "
                    f"expected {', '.join(o.expected)}"
                )
        return "\n".join(lines)

    def to_json(self) -> dict:
        return {
            "base": self.base.to_json(),
            "total": self.total,
            "killed": self.killed,
            "score": self.score,
            "survivors": self.survivors,
            "elapsed": self.elapsed,
            "outcomes": [o.to_json() for o in self.outcomes],
        }


def run_mutation_harness(
    mutants: Optional[Iterable[Union[str, Mutant]]] = None,
    *,
    base: Optional[CampaignSpec] = None,
) -> MutationReport:
    """Run one kill-campaign per mutant and score the suite.

    Each mutant walks the same sampled-plan sequence (up to
    ``base.runs`` runs, stopping at the first kill); ``needs_crash``
    mutants skip crash-free indices and ``needs_churn`` mutants skip
    churn-free ones, without spending budget on plans that cannot
    possibly reach their bug.  ``base.budget_seconds``, if
    set, is a *per-mutant* wall lid.  ``base.mutant`` must be unset —
    the harness supplies it.
    """
    base = base or CampaignSpec()
    if base.mutant is not None:
        raise ConfigurationError(
            "run_mutation_harness supplies the mutant; leave base.mutant unset"
        )
    selected: List[Mutant] = [
        get_mutant(m) if isinstance(m, str) else m
        for m in (mutants if mutants is not None else all_mutants())
    ]
    start = time.monotonic()
    report = MutationReport(base=base)
    for mutant in selected:
        m_start = time.monotonic()
        runs = 0
        index = 0
        outcome = MutantOutcome(
            name=mutant.name,
            description=mutant.description,
            expected=mutant.expected,
            killed=False,
            runs=0,
            elapsed=0.0,
        )
        while runs < base.runs and index < base.runs * MAX_SKIP_FACTOR:
            if (
                base.budget_seconds is not None
                and runs > 0
                and time.monotonic() - m_start >= base.budget_seconds
            ):
                break
            plan = sample_plan(
                topology=base.topology,
                n=base.n,
                seed=base.seed,
                index=base.sampler_index(index),
                mutant=mutant.name,
            )
            index += 1
            if mutant.needs_crash and not plan.crashes:
                continue
            if mutant.needs_churn and not plan.membership:
                continue
            result = run_plan(plan, substrate=base.substrate, judge=base.judge)
            runs += 1
            if result.failed:
                outcome.killed = True
                outcome.failed_properties = tuple(result.failed)
                outcome.matched_expected = bool(
                    set(result.failed) & set(mutant.expected)
                )
                outcome.killing_index = index - 1
                outcome.killing_result = result
                break
            result.trace = None
            result.wire = []
        outcome.runs = runs
        outcome.elapsed = time.monotonic() - m_start
        report.outcomes.append(outcome)
    report.elapsed = time.monotonic() - start
    return report
