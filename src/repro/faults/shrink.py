"""Delta-debugging minimization of failing FaultPlans, plus witness
artifacts.

Given a plan whose run fails, :func:`shrink_plan` greedily applies a
ladder of simplifying transformations — fewer diners, fewer crashes, no
suspicion flaps, fixed latency, plain workload, shorter horizon — and
keeps a candidate only if re-running it still fails *one of the same
properties* as the original.  The result is the smallest witness the
ladder can reach: typically a 3-diner ring, one crash or none, fixed
latency, and a horizon a fraction of the original's.

Every accepted candidate is re-run from scratch (same engine, same
seed), so the minimized plan is self-certifying: loading ``plan.json``
and running it reproduces the failure bit-for-bit.
:func:`write_witness` persists the run next to the plan — ``trace.jsonl``
and ``wire.jsonl`` in the exact vocabulary ``repro check`` replays, and
a README with the replay command — so a CI failure ships its own repro.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field, replace
from typing import Callable, Iterator, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.faults.engine import FaultRunResult, run_plan_kernel
from repro.faults.plan import (
    ClientStormSpec,
    FaultPlan,
    FlapSpec,
    LatencySpec,
    WorkloadSpec,
)

#: The shrinker never pushes the horizon below this — eventual properties
#: need room to be judged at all.
MIN_HORIZON = 20.0


@dataclass
class ShrinkResult:
    """Outcome of one shrink: the minimal plan plus its failing run."""

    original: FaultPlan
    plan: FaultPlan
    result: FaultRunResult
    target: Tuple[str, ...]
    runs: int = 0
    rounds: int = 0
    history: List[str] = field(default_factory=list)

    @property
    def reduced(self) -> bool:
        return bool(self.history)

    def describe(self) -> str:
        lines = [
            f"shrink: {self.runs} run(s), {self.rounds} round(s), "
            f"{len(self.history)} reduction(s) kept"
        ]
        lines.append(f"  original: {self.original.describe()}")
        lines.append(f"  minimal:  {self.plan.describe()}")
        lines.append(f"  still failing: {', '.join(self.result.failed)}")
        for step in self.history:
            lines.append(f"    - {step}")
        return "\n".join(lines)

    def to_json(self) -> dict:
        return {
            "original": self.original.to_json(),
            "plan": self.plan.to_json(),
            "target": list(self.target),
            "failed": list(self.result.failed),
            "runs": self.runs,
            "rounds": self.rounds,
            "history": list(self.history),
        }


def _candidates(plan: FaultPlan) -> Iterator[Tuple[str, FaultPlan]]:
    """One round of simplifying transformations, most aggressive first.

    Each candidate changes exactly one aspect; construction-time
    :class:`ConfigurationError` (topology minimum size, crash pid out of
    range after an ``n`` cut) skips the candidate rather than aborting
    the shrink.
    """
    if plan.n > 2:
        n = plan.n - 1
        kept = tuple(c for c in plan.crashes if c.pid < n)
        yield f"n {plan.n} -> {n}", plan.with_(n=n, crashes=kept)
    for i, crash in enumerate(plan.crashes):
        kept = plan.crashes[:i] + plan.crashes[i + 1 :]
        yield f"drop crash of pid {crash.pid}", plan.with_(crashes=kept)
    yield from _membership_candidates(plan)
    if plan.flaps != FlapSpec(detection_delay=plan.flaps.detection_delay):
        yield "zero the suspicion flaps", plan.with_(
            flaps=FlapSpec(detection_delay=plan.flaps.detection_delay)
        )
    fixed = LatencySpec.of("fixed", delay=1.0)
    if plan.latency != fixed:
        yield f"latency {plan.latency.kind} -> fixed(1.0)", plan.with_(latency=fixed)
    storm = plan.storm
    if storm.active:
        yield "drop the client storm", plan.with_(storm=ClientStormSpec())
        if storm.sessions > 4:
            sessions = storm.sessions // 2
            yield f"storm sessions {storm.sessions} -> {sessions}", plan.with_(
                storm=replace(storm, sessions=sessions)
            )
        if storm.abandon:
            yield "storm abandon -> 0", plan.with_(storm=replace(storm, abandon=0.0))
    plain = WorkloadSpec.of("always", eat_time=1.0)
    if plan.workload != plain and not storm.active:
        # (With a storm, the lease workload is part of the repro; the
        # drop-the-storm rung above removes both together when it can.)
        yield f"workload {plan.workload.kind} -> always(1.0)", plan.with_(
            workload=plain
        )
    if plan.horizon > MIN_HORIZON:
        horizon = max(MIN_HORIZON, round(plan.horizon / 2.0, 3))
        yield f"horizon {plan.horizon:g} -> {horizon:g}", plan.with_(horizon=horizon)


def _membership_candidates(plan: FaultPlan) -> Iterator[Tuple[str, FaultPlan]]:
    """Shrink rungs for the membership script.

    Verb-aware rungs cancel matched pairs (a leave with its rejoin, an
    edge removal with its re-add) as single units — dropping only one
    side usually produces an invalid log, which the replay rejects and
    the ladder then never makes progress on churn at all.  The
    drop-half bisection and per-delta drops are verb-agnostic: a verb
    this ladder has never heard of still shrinks generically instead of
    being pinned in the witness forever.
    """
    membership = plan.membership
    if not membership:
        return
    yield "drop the membership script", plan.with_(membership=())
    if len(membership) > 2:
        half = len(membership) // 2
        yield (
            f"membership deltas {len(membership)} -> first {half}",
            plan.with_(membership=membership[:half]),
        )
        yield (
            f"membership deltas {len(membership)} -> last {len(membership) - half}",
            plan.with_(membership=membership[half:]),
        )
    for i, spec in enumerate(membership):
        if spec.verb == "leave":
            for j in range(i + 1, len(membership)):
                other = membership[j]
                if other.verb == "rejoin" and other.pid == spec.pid:
                    kept = tuple(
                        s for k, s in enumerate(membership) if k not in (i, j)
                    )
                    yield f"cancel bounce of pid {spec.pid}", plan.with_(
                        membership=kept
                    )
                    break
        elif spec.verb == "remove_edge":
            for j in range(i + 1, len(membership)):
                other = membership[j]
                if other.verb == "add_edge" and {other.pid, other.peer} == {
                    spec.pid,
                    spec.peer,
                }:
                    kept = tuple(
                        s for k, s in enumerate(membership) if k not in (i, j)
                    )
                    yield f"cancel edge flip {spec.pid}-{spec.peer}", plan.with_(
                        membership=kept
                    )
                    break
    for i, spec in enumerate(membership):
        kept = membership[:i] + membership[i + 1 :]
        yield f"drop membership delta [{spec.describe()}]", plan.with_(
            membership=kept
        )


def shrink_plan(
    plan: FaultPlan,
    *,
    runner: Optional[Callable[[FaultPlan], FaultRunResult]] = None,
    baseline: Optional[FaultRunResult] = None,
    max_runs: int = 64,
) -> ShrinkResult:
    """Greedily minimize ``plan`` while it keeps failing the same way.

    ``runner`` defaults to the kernel engine (deterministic, fast);
    pass a closure for live-substrate shrinking.  ``baseline`` skips the
    initial confirmation run when the caller already holds the failing
    result.  A candidate is accepted iff its failing-property set
    intersects the original's — the witness may lose *secondary*
    failures but never the bug class being chased.
    """
    run = runner if runner is not None else run_plan_kernel
    runs = 0
    if baseline is None:
        baseline = run(plan)
        runs += 1
    if baseline.ok:
        raise ConfigurationError(
            f"plan does not fail; nothing to shrink: {plan.describe()}"
        )
    target = frozenset(baseline.failed)

    current, current_result = plan, baseline
    rounds = 0
    history: List[str] = []
    improved = True
    while improved and runs < max_runs:
        improved = False
        rounds += 1
        for label, candidate in _candidates(current):
            if runs >= max_runs:
                break
            try:
                result = run(candidate)
            except ConfigurationError:
                continue
            runs += 1
            if target & set(result.failed):
                current, current_result = candidate, result
                history.append(label)
                improved = True
                break  # restart the ladder from the top on the new plan
    return ShrinkResult(
        original=plan,
        plan=current,
        result=current_result,
        target=tuple(sorted(target)),
        runs=runs,
        rounds=rounds,
        history=history,
    )


# ----------------------------------------------------------------------
# Witness artifacts
# ----------------------------------------------------------------------
def write_witness(
    result: FaultRunResult,
    directory: str,
    *,
    shrink: Optional[ShrinkResult] = None,
) -> str:
    """Persist a failing run as a self-describing witness directory.

    Writes ``plan.json`` (replayable via ``FaultPlan.load`` /
    ``repro fuzz --plan``), ``trace.jsonl`` + ``wire.jsonl`` (the
    offline streams ``repro check`` replays), ``verdict.json`` (the full
    run result), optionally ``shrink.json``, and a README carrying the
    exact re-judgement command.  Returns ``directory``.
    """
    from repro.trace.serialize import dump_path

    os.makedirs(directory, exist_ok=True)
    plan = result.plan
    plan.dump(os.path.join(directory, "plan.json"))
    artifacts = ["plan.json", "verdict.json"]
    if result.trace is not None:
        dump_path(result.trace, os.path.join(directory, "trace.jsonl"))
        artifacts.append("trace.jsonl")
    if result.wire:
        with open(os.path.join(directory, "wire.jsonl"), "w", encoding="utf-8") as fh:
            for record in result.wire:
                fh.write(json.dumps(record, sort_keys=True) + "\n")
        artifacts.append("wire.jsonl")
    with open(os.path.join(directory, "verdict.json"), "w", encoding="utf-8") as fh:
        json.dump(result.to_json(), fh, indent=2, sort_keys=True)
        fh.write("\n")
    if shrink is not None:
        with open(os.path.join(directory, "shrink.json"), "w", encoding="utf-8") as fh:
            json.dump(shrink.to_json(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        artifacts.append("shrink.json")

    streams = " ".join(a for a in ("trace.jsonl", "wire.jsonl") if a in artifacts)
    windows = result.windows
    flags = [f"--topology {plan.topology}", f"--n {plan.n}", f"--seed {plan.seed}"]
    if windows is not None:
        flags += [
            f"--settle {windows.settle:g}",
            f"--patience {windows.patience:g}",
            f"--after {windows.after:g}",
        ]
        if plan.crashes:
            flags.append(f"--grace {windows.grace:g}")
    flags.append(f"--horizon {plan.horizon:g}")
    command = f"repro check {streams} {' '.join(flags)}"

    lines = [
        "# Fuzz witness",
        "",
        f"Plan: `{plan.describe()}`",
        "",
        f"Failing properties: {', '.join(result.failed) or '(none — passing run?)'}",
        "",
        "Replay the judgement offline (state probes re-skip; stream-borne",
        "properties re-judge):",
        "",
        "```",
        command,
        "```",
        "",
        "Re-run the plan itself (rebuilds the table, re-fails live):",
        "",
        "```",
        "repro fuzz --plan plan.json",
        "```",
        "",
    ]
    if shrink is not None:
        lines += [
            f"Shrunk from `{shrink.original.describe()}` in {shrink.runs} run(s);",
            f"reductions kept: {len(shrink.history)}.",
            "",
        ]
    with open(os.path.join(directory, "README.md"), "w", encoding="utf-8") as fh:
        fh.write("\n".join(lines))
    return directory
