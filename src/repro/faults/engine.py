"""One FaultPlan → one judged run, on either substrate.

The engine interprets a :class:`~repro.faults.plan.FaultPlan`:

* **kernel** — a :class:`~repro.core.table.DiningTable` with the plan's
  latency adversary, workload, scripted ◇P₁ (convergence, detection
  delay, random pre-convergence mistakes), and crash injections.
  Time-scripted crashes ride the ordinary
  :class:`~repro.sim.crash.CrashPlan`; *state-triggered* crashes arm
  trace/network listeners that kill the victim the moment it enters the
  doorway, starts eating, or receives a fork — the windows in which a
  crash strands the most shared state at neighbors.  Every triggered
  victim also appears in the CrashPlan at its ``deadline``, so the
  detector oracles know about it (detection is merely late, which ◇P₁
  permits) and the crash happens by the deadline even if the trigger
  never fires.
* **live** — a loopback :class:`~repro.net.host.AsyncHost` whose new
  ``inject_latency`` hook replays the same latency adversary in scaled
  wall time; crashes use their (scaled) scripted times or deadlines.

Both paths end in the same :func:`repro.checks.standard_suite` Verdict.
Judgement windows are derived from the plan itself
(:meth:`JudgeWindows.for_plan`): eventual properties are never judged
tighter than the adversary allows, so a clean campaign over the
unmutated algorithm passing with 0 violations is a meaningful claim.

Exceptions a mutant raises mid-run (``ForkDuplicationError`` from
Lemma 1.1's runtime assert, kernel event-budget exhaustion from a flood
bug, …) are converted into failing properties rather than propagated, so
the campaign layer sees a uniform Verdict either way.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.checks import CheckConfig, EDGE_EXCLUSION, FAIL, PropertyVerdict, Verdict, Violation
from repro.checks.properties import CHANNEL_BOUND, FIFO, FORK_UNIQUENESS
from repro.core.messages import Fork
from repro.core.table import DiningTable, scripted_detector
from repro.errors import (
    ChannelCapacityError,
    ConfigurationError,
    FifoViolationError,
    ForkDuplicationError,
    InvariantViolation,
    SimulationError,
)
from repro.faults.mutants import get_mutant
from repro.faults.plan import CrashSpec, FaultPlan
from repro.graphs import topologies
from repro.sim.crash import CrashPlan
from repro.sim.events import EventPriority
from repro.sim.monitors import message_layer
from repro.sim.network import NetworkMonitor
from repro.trace.events import DoorwayChange, PhaseChange

#: Synthetic property name for mutant-raised faults that map to no
#: standard property (scheduling storms, crashed-process sends, …).
RUNTIME_ERROR = "runtime-error"

#: Synthetic property judging the lease-service path under a client
#: storm: every lease the storm leaves active must be backed by an
#: eating (or crashed) diner — a leak means a grant escaped Algorithm
#: 1's critical section.
LEASE_BACKING = "lease-backing"

#: How many pieces a kernel run is cut into, so a failing plan stops at
#: the first chunk whose suite holds a violation instead of simulating a
#: flood mutant to the full horizon.
RUN_CHUNKS = 8


# ----------------------------------------------------------------------
# Judgement windows
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class JudgeWindows:
    """Windows binding the eventual properties, derived from the plan.

    All values are in the plan's virtual time units.  The derivation is
    deliberately generous — a window too tight would convict the correct
    algorithm of its adversary's sins; the clean-campaign acceptance run
    (``repro fuzz`` with no mutant) is the empirical check that it never
    does.
    """

    settle: float
    patience: float
    after: float
    grace: float

    @staticmethod
    def for_plan(plan: FaultPlan, *, margin: float = 3.0) -> "JudgeWindows":
        lat = plan.latency.ceiling()
        eat = plan.eat_ceiling()  # storm TTLs included
        # Suspicion output is trustworthy only after detector convergence,
        # latency stabilization (GST), the last possible crash's
        # detection, and the last membership delta (a joiner or rejoiner
        # needs a doorway round-trip before its neighborhood is settled);
        # in-flight stragglers add one ceiling.
        base = max(
            plan.flaps.convergence,
            plan.latency.stabilization_time(),
            plan.last_possible_crash() + plan.flaps.detection_delay,
            plan.last_membership_time(),
        )
        settle = base + eat + 2.0 * lat + margin
        # A hungry diner can transitively wait behind every other diner's
        # meal plus the message round-trips between them, all of which may
        # start before ``base``.
        patience = base + plan.n * (eat + 4.0 * lat) + margin
        after = settle
        # Traffic toward a victim stops once every neighbor's detector
        # fires, and detectors are scripted from CrashPlan deadlines —
        # but the quiescence clock starts at the ACTUAL crash, which for
        # a trigger can be as early as its arming time.  Grace must span
        # from the earliest possible crash instant to trustworthy
        # suspicion (``base``), or legal late detection convicts the
        # correct algorithm.
        earliest = min((c.earliest_time() for c in plan.crashes), default=0.0)
        grace = max(0.0, base - earliest) + eat + 3.0 * lat + margin
        return JudgeWindows(settle=settle, patience=patience, after=after, grace=grace)

    def as_dict(self) -> Dict[str, float]:
        return {
            "settle": self.settle,
            "patience": self.patience,
            "after": self.after,
            "grace": self.grace,
        }


# ----------------------------------------------------------------------
# Run result
# ----------------------------------------------------------------------
@dataclass
class FaultRunResult:
    """Everything one interpreted plan produced.

    ``trace`` and ``wire`` stay attached (in memory) so the shrinker can
    write a witness without re-running; ``to_json`` omits them.
    ``crash_times`` maps pid to the *actual* crash instant — for
    triggered crashes this is the trigger time, not the deadline.
    """

    plan: FaultPlan
    substrate: str
    verdict: Verdict
    windows: Optional[JudgeWindows]
    crash_times: Dict[int, float] = field(default_factory=dict)
    meals: Dict[int, int] = field(default_factory=dict)
    events: int = 0
    stopped_early: bool = False
    error: Optional[str] = None
    trace: object = None
    wire: List[dict] = field(default_factory=list)
    #: LockCore snapshot when the plan carried a client storm.
    storm: Optional[Dict[str, object]] = None

    @property
    def ok(self) -> bool:
        return self.verdict.ok

    @property
    def failed(self) -> List[str]:
        return self.verdict.failed

    def to_json(self) -> dict:
        return {
            "plan": self.plan.to_json(),
            "substrate": self.substrate,
            "windows": self.windows.as_dict() if self.windows else None,
            "crash_times": {str(p): t for p, t in sorted(self.crash_times.items())},
            "meals": {str(p): m for p, m in sorted(self.meals.items())},
            "events": self.events,
            "stopped_early": self.stopped_early,
            "error": self.error,
            "verdict": self.verdict.to_json(),
            "storm": self.storm,
        }


# ----------------------------------------------------------------------
# Wire logging (kernel): the offline-replayable message stream
# ----------------------------------------------------------------------
class _WireLogMonitor(NetworkMonitor):
    """Records every kernel send/deliver/drop as a wire-log dict.

    The dicts speak the exact vocabulary of
    :func:`repro.checks.stream.event_from_wire`, so a witness directory's
    ``wire.jsonl`` makes channel-bound / FIFO / quiescence judgeable by
    ``repro check`` offline.  Sequence numbers are assigned at send; the
    kernel network is FIFO by construction, so deliveries and drops
    retire pending sequence numbers in order.
    """

    def __init__(self) -> None:
        self.records: List[dict] = []
        self._next: Dict[Tuple[int, int], int] = {}
        self._pending: Dict[Tuple[int, int], deque] = {}

    def _record(self, kind, src, dst, message, time, seq) -> None:
        self.records.append(
            {
                "kind": kind,
                "src": src,
                "dst": dst,
                "type": type(message).__name__,
                "layer": message_layer(message),
                "seq": seq,
                "time": time,
            }
        )

    def on_send(self, src, dst, message, time) -> None:
        key = (src, dst)
        seq = self._next.get(key, 0) + 1
        self._next[key] = seq
        self._pending.setdefault(key, deque()).append(seq)
        self._record("send", src, dst, message, time, seq)

    def _retire(self, src, dst) -> Optional[int]:
        pending = self._pending.get((src, dst))
        return pending.popleft() if pending else None

    def on_deliver(self, src, dst, message, time) -> None:
        self._record("deliver", src, dst, message, time, self._retire(src, dst))

    def on_drop(self, src, dst, message, time) -> None:
        self._record("drop", src, dst, message, time, self._retire(src, dst))


# ----------------------------------------------------------------------
# Triggered crashes (kernel)
# ----------------------------------------------------------------------
class _CrashTrigger(NetworkMonitor):
    """Arms one state-triggered crash on a running table.

    Doorway and eating triggers listen to the trace; the fork trigger
    watches deliveries.  The kill is always *scheduled* at the current
    instant with CONTROL priority — never executed synchronously inside
    the triggering event — so the victim finishes the very step that put
    it into the targeted state (it genuinely crashes holding the fork /
    inside the doorway) and the transport never loses the triggering
    delivery.
    """

    def __init__(self, table: DiningTable, spec: CrashSpec) -> None:
        self.table = table
        self.spec = spec
        self.fired = False

    def arm(self) -> None:
        if self.spec.when == "fork":
            self.table.network.add_monitor(self)
        elif self.spec.when == "doorway":
            self.table.trace.add_listener(self._on_doorway, types=(DoorwayChange,))
        elif self.spec.when == "eating":
            self.table.trace.add_listener(self._on_phase, types=(PhaseChange,))
        else:  # pragma: no cover - CrashSpec validation forbids this
            raise ConfigurationError(f"unknown trigger {self.spec.when!r}")

    def _on_doorway(self, record) -> None:
        if record.pid == self.spec.pid and record.inside and record.time >= self.spec.after:
            self._fire()

    def _on_phase(self, record) -> None:
        if (
            record.pid == self.spec.pid
            and record.new_phase == "eating"
            and record.time >= self.spec.after
        ):
            self._fire()

    def on_deliver(self, src, dst, message, time) -> None:
        if dst == self.spec.pid and isinstance(message, Fork) and time >= self.spec.after:
            self._fire()

    def _fire(self) -> None:
        if self.fired:
            return
        self.fired = True
        sim = self.table.sim
        pid = self.spec.pid
        sim.schedule_at(
            sim.now,
            lambda: self.table.network.crash(pid),
            priority=EventPriority.CONTROL,
            label=f"fuzz-trigger-crash {pid}",
        )


# ----------------------------------------------------------------------
# Client storms (lease-service path)
# ----------------------------------------------------------------------
class _KernelStorm:
    """Interpret a :class:`~repro.faults.plan.ClientStormSpec` on a table.

    Sessions are driven straight into a :class:`~repro.locks.service.
    LockCore` — no sockets, the kernel analogue of a ``LockService``
    client fleet.  Bursts fire on CONTROL-priority timers; each grant
    either abandons (the killed-connection client: only the TTL reclaims
    its lease) or releases after the plan's hold time.
    """

    def __init__(self, table: DiningTable, plan: FaultPlan) -> None:
        from repro.locks.service import LeaseWorkload, LockCore, default_resources

        self.table = table
        self.spec = plan.storm
        sim = table.sim
        self.core = LockCore(
            default_resources(table.graph),
            table.diners,
            clock=lambda: sim.now,
            defer=lambda fn: sim.schedule_at(
                sim.now, fn, priority=EventPriority.CONTROL, label="storm-defer"
            ),
        )
        self.core.attach(table.trace)
        if isinstance(table.workload, LeaseWorkload):
            table.workload.bind(self.core)
        self._rng = sim.streams.stream("fuzz/client-storm")
        self._names = sorted(self.core.resources)

    def arm(self) -> None:
        spec = self.spec
        sim = self.table.sim
        session = _storm_session_base()
        remaining = spec.sessions
        when = spec.start
        while remaining:
            count = min(spec.burst, remaining)
            ids = list(range(session, session + count))
            sim.schedule_at(
                when,
                lambda ids=ids: self._burst(ids),
                priority=EventPriority.CONTROL,
                label="storm-burst",
            )
            session += count
            remaining -= count
            when += spec.interval

    def _burst(self, ids) -> None:
        ttl_ms = max(1, int(round(self.spec.ttl * 1000.0)))
        for session in ids:
            resource = self._names[self._rng.randrange(len(self._names))]
            self.core.request(
                session,
                resource,
                ttl_ms,
                lambda message, _s=session: self._reply(_s, message),
            )

    def _reply(self, session: int, message) -> None:
        from repro.locks.messages import LeaseGrant

        if type(message) is not LeaseGrant:
            return  # denials are the core's books; nothing to drive
        if self._rng.random() < self.spec.abandon:
            self.core.abandon(session)
            return
        sim = self.table.sim
        lease_id = message.lease_id
        sim.schedule_at(
            sim.now + self.spec.hold,
            lambda: self.core.release(session, lease_id),
            priority=EventPriority.CONTROL,
            label="storm-release",
        )

    def finalize(self, verdict: Verdict, now: float) -> Verdict:
        """Close the service books and judge the lease-backing property."""
        self.core.shutdown()  # flush still-queued waiters (denied: shutdown)
        return _fold_leaked(verdict, self.core, now)


def _storm_session_base() -> int:
    from repro.locks.messages import SESSION_BASE

    return SESSION_BASE


def _fold_leaked(verdict: Verdict, core, now: float) -> Verdict:
    leaked = core.leaked_leases()
    if not leaked:
        return verdict
    synthetic = PropertyVerdict(
        prop=LEASE_BACKING,
        status=FAIL,
        violations=[
            Violation(
                prop=LEASE_BACKING,
                time=now,
                detail=(
                    f"lease {lease.lease_id} on {lease.resource} "
                    f"(session {lease.session}) active but diner "
                    f"{lease.pid} is not eating"
                ),
            )
            for lease in leaked[:5]
        ],
        counters={"leaked_total": len(leaked)},
    )
    return verdict.with_property(synthetic)


# ----------------------------------------------------------------------
# Exception → property mapping
# ----------------------------------------------------------------------
def _property_of_exception(exc: BaseException) -> str:
    if isinstance(exc, ForkDuplicationError):
        return FORK_UNIQUENESS
    if isinstance(exc, ChannelCapacityError):
        return CHANNEL_BOUND
    if isinstance(exc, FifoViolationError):
        return FIFO
    return RUNTIME_ERROR


def _fold_exception(verdict: Verdict, exc: BaseException, time: float) -> Verdict:
    """Merge a mutant-raised fault into the verdict as a failing property."""
    name = _property_of_exception(exc)
    synthetic = PropertyVerdict(
        prop=name,
        status=FAIL,
        violations=[
            Violation(
                prop=name,
                time=time,
                detail=f"{type(exc).__name__}: {exc}",
            )
        ],
        counters={"raised_total": 1},
    )
    existing = verdict.properties.get(name)
    if existing is not None:
        synthetic = PropertyVerdict.merge([existing, synthetic])
    return verdict.with_property(synthetic)


# ----------------------------------------------------------------------
# Kernel interpretation
# ----------------------------------------------------------------------
def build_table(
    plan: FaultPlan,
    *,
    judge: bool = True,
    diner_factory=None,
    detector=None,
    windows: Optional[JudgeWindows] = None,
) -> DiningTable:
    """The DiningTable a plan describes (exposed for tests).

    ``diner_factory`` substitutes the scheduler under test (the bake-off
    runs the classical baselines through unmodified plans this way; it
    overrides any plan mutant).  ``detector`` substitutes the detector
    factory — crash-oblivious baselines pass ``NullDetector`` so the
    plan's flap script has nothing to script.  ``windows`` pins explicit
    judgement windows instead of :meth:`JudgeWindows.for_plan`'s
    derivation (short bake-off horizons need windows that fit inside
    them).
    """
    graph = topologies.by_name(plan.topology, plan.n, seed=plan.seed)
    crash_plan = CrashPlan.scripted({c.pid: c.latest_time() for c in plan.crashes})
    if judge and windows is None:
        windows = JudgeWindows.for_plan(plan)
    elif not judge:
        windows = None
    config = CheckConfig(
        settle=windows.settle if windows else None,
        patience=windows.patience if windows else None,
        overtaking_after=windows.after if windows else None,
        quiescence_grace=windows.grace if windows and plan.crashes else None,
    )
    mutant = get_mutant(plan.mutant) if plan.mutant else None
    flaps = plan.flaps
    if detector is None:
        detector = scripted_detector(
            convergence_time=flaps.convergence,
            detection_delay=flaps.detection_delay,
            random_mistakes=flaps.mistakes_per_edge > 0,
            mistakes_per_edge=flaps.mistakes_per_edge,
            mean_mistake_duration=flaps.mean_mistake_duration,
        )
    if diner_factory is None:
        diner_factory = mutant.factory() if mutant else None
    return DiningTable(
        graph,
        seed=plan.seed,
        latency=plan.latency.build(),
        workload=plan.workload.build(),
        crash_plan=crash_plan,
        detector=detector,
        diner_factory=diner_factory,
        strict_checks=False,
        check_config=config,
        membership=plan.membership_log(),
    )


def run_plan_kernel(
    plan: FaultPlan,
    *,
    judge: bool = True,
    stop_on_violation: bool = True,
    diner_factory=None,
    detector=None,
    windows: Optional[JudgeWindows] = None,
    monitors=(),
) -> FaultRunResult:
    """Interpret ``plan`` on the discrete-event kernel.

    ``judge=False`` leaves every eventual property informational (the
    differential tests use this: statuses then depend only on what the
    stream *proves*, not on window tuning).  ``stop_on_violation``
    short-circuits the run at the first chunk whose suite holds a
    violation — mutation campaigns spend no budget past the kill.
    ``diner_factory``/``detector``/``windows`` substitute the scheduler,
    detector factory, and judgement windows (see :func:`build_table`) —
    this is how the bake-off replays one plan across the whole zoo.
    ``monitors`` are extra :class:`~repro.sim.network.NetworkMonitor`
    instances attached before the run (the bake-off's per-algorithm
    message-bit instrument rides here).
    """
    if judge and windows is None:
        windows = JudgeWindows.for_plan(plan)
    elif not judge:
        windows = None
    table = build_table(
        plan,
        judge=judge,
        diner_factory=diner_factory,
        detector=detector,
        windows=windows,
    )
    wire = _WireLogMonitor()
    table.network.add_monitor(wire)
    for monitor in monitors:
        table.network.add_monitor(monitor)
    for spec in plan.crashes:
        if spec.when is not None:
            _CrashTrigger(table, spec).arm()
    storm = None
    if plan.storm.active:
        storm = _KernelStorm(table, plan)
        storm.arm()

    stopped_early = False
    error: Optional[BaseException] = None
    for chunk in range(1, RUN_CHUNKS + 1):
        try:
            table.run(until=plan.horizon * chunk / RUN_CHUNKS)
        except (InvariantViolation, SimulationError) as exc:
            error = exc
            break
        if stop_on_violation and table.checks.violations:
            stopped_early = chunk < RUN_CHUNKS
            break

    verdict = table.verdict()
    if error is not None:
        verdict = _fold_exception(verdict, error, table.sim.now)
    if storm is not None:
        verdict = storm.finalize(verdict, table.sim.now)

    return FaultRunResult(
        plan=plan,
        substrate="kernel",
        verdict=verdict,
        windows=windows,
        crash_times={r.pid: r.time for r in table.trace.crashes()},
        meals=table.eat_counts(),
        events=table.sim.processed_events,
        stopped_early=stopped_early or error is not None,
        error=f"{type(error).__name__}: {error}" if error is not None else None,
        trace=table.trace,
        wire=wire.records,
        storm=storm.core.snapshot() if storm is not None else None,
    )


# ----------------------------------------------------------------------
# Live interpretation
# ----------------------------------------------------------------------
def run_plan_live(
    plan: FaultPlan,
    *,
    time_scale: float = 0.02,
    judge: bool = True,
    diner_factory=None,
    detector=None,
    windows: Optional[JudgeWindows] = None,
) -> FaultRunResult:
    """Interpret ``plan`` on a loopback :class:`~repro.net.host.AsyncHost`.

    ``time_scale`` maps plan (virtual) seconds to wall seconds — the
    default squeezes a 120-unit horizon into ~2.4 s of wall clock.  The
    plan's latency adversary is replayed through the host's
    ``inject_latency`` hook (same model, same seed-derived streams,
    delays scaled); crashes use their scripted times, triggers their
    deadlines (state triggers are kernel-only).  ◇P₁ is the host's real
    heartbeat detector, so the plan's flap script does not apply — the
    pre-convergence adversary on this substrate is genuine wall-clock
    jitter.  With ``judge=True`` the settle/patience/overtaking windows
    are bound (scaled) at finalize; quiescence stays informational (its
    grace is consumed online, before windows could be rebound).
    """
    from repro.graphs.membership import MembershipDelta, MembershipLog
    from repro.net.host import AsyncHost, HostConfig, run_host
    from repro.sim.rng import RandomStreams

    if time_scale <= 0:
        raise ConfigurationError(f"time_scale must be positive, got {time_scale!r}")
    graph = topologies.by_name(plan.topology, plan.n, seed=plan.seed)
    if judge and windows is None:
        windows = JudgeWindows.for_plan(plan)
    elif not judge:
        windows = None
    mutant = get_mutant(plan.mutant) if plan.mutant else None

    # Membership deltas ride the host's wall clock, so their plan times
    # scale exactly like crash times do.
    membership = plan.membership_log()
    if membership is not None:
        membership = MembershipLog(
            MembershipDelta(
                time=delta.time * time_scale,
                verb=delta.verb,
                pid=delta.pid,
                edges=delta.edges,
                peer=delta.peer,
            )
            for delta in membership
        )

    model = plan.latency.build()
    streams = RandomStreams(plan.seed).spawn("fuzz-live-latency")

    def inject(src: int, dst: int, message, now: float) -> float:
        virtual_now = now / time_scale
        return model.sample(src, dst, virtual_now, streams) * time_scale

    host = AsyncHost(
        graph,
        config=HostConfig(
            duration=plan.horizon * time_scale,
            seed=plan.seed,
        ),
        crash_times={c.pid: c.latest_time() * time_scale for c in plan.crashes},
        workload=plan.workload.build(time_scale=time_scale),
        inject_latency=inject,
        diner_factory=diner_factory
        if diner_factory is not None
        else (mutant.factory() if mutant else None),
        detector=detector,
        membership=membership,
        run="fuzz",
    )
    storm_core = None
    if plan.storm.active:
        storm_core = _run_host_with_storm(host, plan, time_scale)
    else:
        run_host(host)

    if judge and windows is not None:
        host.checks.checker("wx-safety").settle = windows.settle * time_scale
        host.checks.checker("progress").patience = windows.patience * time_scale
        host.checks.checker("overtaking").after = windows.after * time_scale
        try:
            host.checks.checker(EDGE_EXCLUSION).settle = windows.settle * time_scale
        except KeyError:
            pass  # static plan: no edge-scoped checker in the suite
    verdict = host.verdict()
    if storm_core is not None:
        verdict = _fold_leaked(verdict, storm_core, host.now)
    # ``host.violations`` mixes checker-forwarded witnesses (already in
    # the verdict, possibly as informational counters) with actor faults
    # the host captured outside the checkers (a mutant raising
    # mid-step).  Only the latter must fail the run.
    checker_details = {f"{v.prop}: {v.detail}" for v in host.checks.violations}
    actor_faults = [d for d in host.violations if d not in checker_details]
    if actor_faults:
        synthetic = PropertyVerdict(
            prop=RUNTIME_ERROR,
            status=FAIL,
            violations=[
                Violation(prop=RUNTIME_ERROR, time=host.now, detail=detail)
                for detail in actor_faults[:5]
            ],
            counters={"raised_total": len(actor_faults)},
        )
        verdict = verdict.with_property(synthetic)

    return FaultRunResult(
        plan=plan,
        substrate="live",
        verdict=verdict,
        windows=windows,
        crash_times={r.pid: r.time / time_scale for r in host.trace.crashes()},
        meals={pid: d.meals_eaten for pid, d in host.diners.items()},
        events=host.checks.events_observed,
        trace=host.trace,
        wire=[
            {
                "kind": e.kind,
                "src": e.src,
                "dst": e.dst,
                "type": e.type,
                "layer": e.layer,
                "seq": e.seq,
                "time": e.time,
            }
            for e in host.wire_events
        ],
        storm=storm_core.snapshot() if storm_core is not None else None,
    )


def _run_host_with_storm(host, plan: FaultPlan, time_scale: float):
    """Run a loopback host while a scaled client storm drives a LockCore.

    The storm shares the host's loop: bursts run inside ``host.guarded``
    (so checker/violation capture sees them) and releases ride
    ``loop.call_later`` — the in-process analogue of the socket-borne
    ``LockService`` path, at fuzz speed.  Returns the core for the
    caller's books (snapshot + leak judgement).
    """
    import asyncio

    from repro.locks.messages import LeaseGrant
    from repro.locks.service import LeaseWorkload, LockCore, default_resources

    spec = plan.storm
    core = LockCore(
        default_resources(host.graph),
        host.diners,
        clock=lambda: host.now,
        defer=lambda fn: host.loop.call_soon(host.guarded(fn, "storm-defer")),
    )
    core.attach(host.trace)
    if isinstance(host.workload, LeaseWorkload):
        host.workload.bind(core)
    from repro.sim.rng import RandomStreams

    rng = RandomStreams(plan.seed).stream("fuzz/client-storm")
    names = sorted(core.resources)
    ttl_ms = max(1, int(round(spec.ttl * time_scale * 1000.0)))

    def reply(session: int, message) -> None:
        if type(message) is not LeaseGrant:
            return
        if rng.random() < spec.abandon:
            core.abandon(session)
            return
        lease_id = message.lease_id
        host.loop.call_later(
            spec.hold * time_scale,
            host.guarded(lambda: core.release(session, lease_id), "storm-release"),
        )

    async def drive(runner: "asyncio.Future") -> None:
        await asyncio.sleep(spec.start * time_scale)
        session = _storm_session_base()
        remaining = spec.sessions
        while remaining and not runner.done():
            count = min(spec.burst, remaining)
            for sid in range(session, session + count):
                resource = names[rng.randrange(len(names))]
                host.guarded(
                    lambda _s=sid, _r=resource: core.request(
                        _s, _r, ttl_ms, lambda m, _s=_s: reply(_s, m)
                    ),
                    "storm-request",
                )()
            session += count
            remaining -= count
            if remaining:
                await asyncio.sleep(spec.interval * time_scale)

    async def main() -> None:
        runner = asyncio.ensure_future(host.run())
        try:
            await drive(runner)
        finally:
            await runner

    asyncio.run(main())
    core.shutdown()  # flush still-queued waiters (denied: shutdown)
    return core


def run_plan(plan: FaultPlan, *, substrate: str = "kernel", **kwargs) -> FaultRunResult:
    """Dispatch a plan to its substrate interpreter."""
    if substrate == "kernel":
        return run_plan_kernel(plan, **kwargs)
    if substrate == "live":
        return run_plan_live(plan, **kwargs)
    raise ConfigurationError(f"unknown substrate {substrate!r}")
