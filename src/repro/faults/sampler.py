"""Seeded derivation of adversarial FaultPlans.

A campaign is a walk over ``sample_plan(... index=0, 1, 2, ...)``: every
plan is a pure function of ``(topology, n, seed, index)`` through the
same SHA-256-derived :class:`~repro.sim.rng.RandomStreams` family the
simulator uses, so a campaign replays bit-for-bit from its spec and any
single failing index replays alone.

Plans cycle through adversary *archetypes* rather than sampling one flat
distribution — crash-heavy shapes appear from index 1, so mutation
campaigns whose bugs only bite on the post-crash path (suspicion
substitution, quiescence) meet a killing schedule within a handful of
runs instead of waiting for a lucky draw.
"""

from __future__ import annotations

from typing import Optional

from repro.faults.engine import JudgeWindows
from repro.faults.plan import (
    ClientStormSpec,
    CrashSpec,
    FaultPlan,
    FlapSpec,
    LatencySpec,
    MembershipSpec,
    WorkloadSpec,
)
from repro.sim.rng import RandomStreams

#: Archetype cycle (index % len): a contention baseline, then
#: crash/flap/storm/burst compositions.  Names are documentation; the
#: sampler switches on position.
ARCHETYPES = (
    "contention",          # benign-adversary baseline: jitter only
    "crash-holding-fork",  # fork-receipt-triggered crash + flaps
    "storm-crash",         # congestion storms + timed crash
    "doorway-crash-burst", # doorway-transit crash under bursty hunger
    "gst-flap",            # partial synchrony + heavy pre-GST flapping
    "double-crash-eating", # two victims, one eating-triggered
    "client-storm",        # lease-service bursts: acquire/abandon + crash
    "churn_storm",         # join + leave/rejoin + edge flip in one window
    "flash_crowd",         # several newcomers joining in quick succession
    "rolling_restart",     # staggered leave/rejoin across the residents
)

#: Names of the archetypes that script membership deltas; the campaign
#: layer uses this to steer churn-needing mutants to killing schedules.
CHURN_ARCHETYPES = ("churn_storm", "flash_crowd", "rolling_restart")

#: Rotation pool for ``topology="mixed"``: one campaign walk then covers
#: sparse symmetric rings, meshes, Erdős–Rényi, bounded-degree geometric
#: fields, and hub-heavy scale-free graphs.  The pool index advances by
#: one extra step per full archetype cycle (the cycle length 10 shares a
#: factor with the pool length 5, so a plain ``index % 5`` would pin each
#: archetype to a single topology forever).
TOPOLOGY_POOL = ("ring", "grid", "random", "geometric", "scale_free")


def sample_plan(
    *,
    topology: str = "ring",
    n: int = 5,
    seed: int = 0,
    index: int = 0,
    mutant: Optional[str] = None,
    horizon_floor: float = 60.0,
) -> FaultPlan:
    """The ``index``-th plan of campaign ``(topology, n, seed)``.

    The horizon is stretched to comfortably contain the plan's own
    judgement windows (patience plus slack), so every sampled plan is
    judgeable — eventual properties never pass vacuously because the run
    ended inside their settle window.
    """
    rng = RandomStreams(seed).stream(f"fuzz/plan/{index}")
    shape = ARCHETYPES[index % len(ARCHETYPES)]
    if topology == "mixed":
        # Resolved here (not in the CLI) so a replayed plan.json records
        # the concrete topology while the campaign spec stays "mixed".
        # The extra ``index // len(ARCHETYPES)`` step keeps (archetype,
        # topology) pairings rotating; it is 0 for the first cycle, so
        # the original low-index plans are unchanged.
        topology = TOPOLOGY_POOL[
            (index + index // len(ARCHETYPES)) % len(TOPOLOGY_POOL)
        ]

    latency = LatencySpec.of("uniform", low=0.3, high=round(rng.uniform(1.0, 2.0), 3))
    crashes = ()
    flaps = FlapSpec()
    workload = WorkloadSpec.of("always", eat_time=round(rng.uniform(0.5, 1.5), 3))
    storm = ClientStormSpec()
    membership = ()

    pids = list(range(n))
    rng.shuffle(pids)

    if shape == "crash-holding-fork":
        after = round(rng.uniform(2.0, 12.0), 3)
        crashes = (
            CrashSpec(pid=pids[0], when="fork", after=after, deadline=after + 20.0),
        )
        flaps = FlapSpec(
            convergence=round(rng.uniform(8.0, 20.0), 3),
            detection_delay=round(rng.uniform(1.0, 2.0), 3),
            mistakes_per_edge=round(rng.uniform(0.5, 1.5), 3),
            mean_mistake_duration=round(rng.uniform(1.0, 3.0), 3),
        )
    elif shape == "storm-crash":
        latency = LatencySpec.of(
            "storm",
            period=round(rng.uniform(15.0, 25.0), 3),
            storm_len=round(rng.uniform(3.0, 6.0), 3),
            calm_low=0.3,
            calm_high=1.0,
            storm_low=2.0,
            storm_high=round(rng.uniform(4.0, 6.0), 3),
        )
        crashes = (CrashSpec(pid=pids[0], at=round(rng.uniform(5.0, 20.0), 3)),)
        flaps = FlapSpec(detection_delay=round(rng.uniform(1.0, 2.0), 3))
    elif shape == "doorway-crash-burst":
        workload = WorkloadSpec.of(
            "burst",
            burst=rng.randint(2, 5),
            burst_think=0.01,
            idle_time=round(rng.uniform(4.0, 10.0), 3),
            eat_time=round(rng.uniform(0.5, 1.5), 3),
        )
        after = round(rng.uniform(2.0, 10.0), 3)
        crashes = (
            CrashSpec(pid=pids[0], when="doorway", after=after, deadline=after + 20.0),
        )
        flaps = FlapSpec(
            convergence=round(rng.uniform(5.0, 15.0), 3),
            detection_delay=1.0,
        )
    elif shape == "gst-flap":
        gst = round(rng.uniform(15.0, 30.0), 3)
        latency = LatencySpec.of(
            "gst", gst=gst, min_delay=0.1, pre_gst_max=5.0, post_gst_max=1.0
        )
        flaps = FlapSpec(
            convergence=gst,
            detection_delay=round(rng.uniform(1.0, 2.0), 3),
            mistakes_per_edge=round(rng.uniform(1.0, 2.0), 3),
            mean_mistake_duration=round(rng.uniform(1.0, 3.0), 3),
        )
    elif shape == "double-crash-eating":
        if n >= 4:
            after = round(rng.uniform(2.0, 8.0), 3)
            crashes = (
                CrashSpec(pid=pids[0], when="eating", after=after, deadline=after + 20.0),
                CrashSpec(pid=pids[1], at=round(rng.uniform(10.0, 25.0), 3)),
            )
        else:
            crashes = (CrashSpec(pid=pids[0], at=round(rng.uniform(5.0, 15.0), 3)),)
        flaps = FlapSpec(
            convergence=round(rng.uniform(8.0, 18.0), 3),
            detection_delay=round(rng.uniform(1.0, 2.0), 3),
        )
    elif shape == "client-storm":
        # The lease-service path: demand-driven diners, session bursts
        # that acquire/hold/abandon, and a timed crash so reclamation of
        # a crashed server's leases is exercised too.
        workload = WorkloadSpec.of("lease")
        storm = ClientStormSpec(
            sessions=rng.randint(30, 80),
            burst=rng.randint(3, 10),
            interval=round(rng.uniform(1.5, 3.0), 3),
            start=round(rng.uniform(2.0, 4.0), 3),
            ttl=round(rng.uniform(0.6, 1.5), 3),
            hold=round(rng.uniform(0.1, 0.5), 3),
            abandon=round(rng.uniform(0.1, 0.4), 3),
        )
        crashes = (CrashSpec(pid=pids[0], at=round(rng.uniform(10.0, 25.0), 3)),)
        flaps = FlapSpec(detection_delay=round(rng.uniform(1.0, 2.0), 3))
    elif shape == "churn_storm":
        # One turbulent window: a newcomer joins two residents, a
        # resident bounces (leave + rejoin), and one of the newcomer's
        # edges flips off and back on — every membership verb in a
        # single plan, all against resident pids known to the sampler
        # (so the deltas replay on any topology of ``n`` nodes).
        joiner = n
        anchors = tuple(sorted(pids[:2])) if n >= 2 else (pids[0],)
        bouncer = pids[2 % n]
        join_at = round(rng.uniform(5.0, 12.0), 3)
        leave_at = round(join_at + rng.uniform(5.0, 10.0), 3)
        rejoin_at = round(leave_at + rng.uniform(4.0, 8.0), 3)
        edge_off = round(rejoin_at + rng.uniform(3.0, 6.0), 3)
        edge_on = round(edge_off + rng.uniform(3.0, 6.0), 3)
        membership = (
            MembershipSpec(time=join_at, verb="join", pid=joiner, edges=anchors),
            MembershipSpec(time=leave_at, verb="leave", pid=bouncer),
            MembershipSpec(time=rejoin_at, verb="rejoin", pid=bouncer),
            MembershipSpec(time=edge_off, verb="remove_edge", pid=joiner, peer=anchors[0]),
            MembershipSpec(time=edge_on, verb="add_edge", pid=joiner, peer=anchors[0]),
        )
    elif shape == "flash_crowd":
        # A crowd arrives: three newcomers in quick succession, each
        # wiring to two residents — a sudden scale-out with no leaves.
        crowd = []
        at = round(rng.uniform(4.0, 8.0), 3)
        for extra in range(3):
            anchor = pids[extra % n]
            other = pids[(extra + 1) % n]
            edges = tuple(sorted({anchor, other})) if anchor != other else (anchor,)
            crowd.append(
                MembershipSpec(time=at, verb="join", pid=n + extra, edges=edges)
            )
            at = round(at + rng.uniform(1.5, 4.0), 3)
        membership = tuple(crowd)
    elif shape == "rolling_restart":
        # Staggered maintenance: residents leave and rejoin one at a
        # time, each down-window closing before the next one opens.
        rolled = []
        at = round(rng.uniform(4.0, 8.0), 3)
        for pid in pids[: min(3, max(1, n - 1))]:
            down = round(rng.uniform(3.0, 6.0), 3)
            rolled.append(MembershipSpec(time=at, verb="leave", pid=pid))
            rolled.append(MembershipSpec(time=round(at + down, 3), verb="rejoin", pid=pid))
            at = round(at + down + rng.uniform(2.0, 5.0), 3)
        membership = tuple(rolled)
    # "contention": the defaults above — jitter, full hunger, no faults.

    draft = FaultPlan(
        topology=topology,
        n=n,
        seed=seed * 10_000 + index,
        horizon=horizon_floor,
        latency=latency,
        crashes=crashes,
        flaps=flaps,
        workload=workload,
        mutant=mutant,
        storm=storm,
        membership=membership,
    )
    windows = JudgeWindows.for_plan(draft)
    horizon = max(horizon_floor, round(windows.patience * 1.3 + 10.0, 3))
    if storm.active:
        # Every burst must land, and the last grants must have room to
        # expire (TTL) or release before the books are judged.
        horizon = max(
            horizon, round(storm.last_burst_time() + 3.0 * storm.ttl + 10.0, 3)
        )
    return draft.with_(horizon=horizon)
